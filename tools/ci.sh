#!/usr/bin/env bash
# CI entry point: configure, build (with the project's always-on
# -Wall -Wextra), run the tier-1 ctest suite, smoke-test near-miss
# reuse on a bound sweep, then smoke-test the distributed solve fabric
# with three real prts_cli processes on loopback — including hot-entry
# replication, telemetry scrapes (prometheus exposition from every rank,
# monotone counters, a cross-rank trace), killing a rank mid-run, and an
# open-loop SLO smoke (watch-mode scrape deltas, 5s of Poisson load with
# another mid-run rank kill, watchdog verdict asserted clean). Last, an
# elastic-membership smoke: a 2-rank fleet founded by join (no static
# --peers), a 3rd rank joining under open-loop load (live handoff
# asserted), a SIGKILL'd rank detected dead, and a warm rejoin from its
# background checkpoint (cache entries > 0 on the first scrape).
#
#   tools/ci.sh                 # Release build into ./build
#   BUILD_TYPE=Debug tools/ci.sh
#   BUILD_DIR=/tmp/ci tools/ci.sh
#   SKIP_FABRIC_SMOKE=1 tools/ci.sh   # ctest only
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD="${BUILD_DIR:-$ROOT/build}"
JOBS="$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 4)"

cmake -B "$BUILD" -S "$ROOT" -DCMAKE_BUILD_TYPE="${BUILD_TYPE:-Release}"
cmake --build "$BUILD" -j "$JOBS"
# (cd form rather than ctest --test-dir: that flag needs CTest >= 3.20,
# the project supports CMake 3.16.)
(cd "$BUILD" && ctest --output-on-failure -j "$JOBS")

CLI="$BUILD/prts_cli"

# ---------------------------------------------------------------------------
# Profiler overhead gate: the A/B bench (telemetry on in both arms,
# only Profiler::set_enabled flips) must stay under 5% on the warm
# path, and the instrumented arm must report the allocations-per-hit
# number the hot-path rebuild tracks.
# ---------------------------------------------------------------------------
# The quick A/B lap is a sub-second timing measurement: on a loaded
# single-core CI box the scheduler can inflate one arm by several
# percent, so give the gate three attempts — a *real* overhead
# regression fails all three.
overhead_ok=0
for attempt in 1 2 3; do
  "$BUILD/profile_overhead" --quick --out "$BUILD/BENCH_profile.json"
  overhead=$(grep -o '"overhead_pct":[^,]*' "$BUILD/BENCH_profile.json" |
             cut -d: -f2)
  if awk -v v="${overhead:-100}" 'BEGIN { exit !(v < 5.0) }'; then
    overhead_ok=1
    break
  fi
  echo "profiler overhead ${overhead}% >= 5% (attempt $attempt), retrying" >&2
done
[ "$overhead_ok" = "1" ] ||
  { echo "FAIL: profiler overhead ${overhead}% >= 5% on 3 attempts" >&2
    exit 1; }
allocs_hit=$(grep -o '"allocs_per_warm_hit":[^,]*' "$BUILD/BENCH_profile.json" |
             cut -d: -f2)
awk -v v="${allocs_hit:-0}" 'BEGIN { exit !(v > 0) }' ||
  { echo "FAIL: bench reported zero allocations per warm hit" >&2; exit 1; }
echo "profiler overhead gate OK: ${overhead}% (allocs/warm-hit ${allocs_hit})"

# ---------------------------------------------------------------------------
# Near-miss smoke test: a paced descending period sweep over one
# instance. Steps whose optimum is unchanged must be served from the
# bounds-monotone index — the '# near_miss' stats counter rises and the
# exact-solver invocations stay sublinear in the sweep length.
# ---------------------------------------------------------------------------
NM="$BUILD/nearmiss_smoke"
rm -rf "$NM" && mkdir -p "$NM"
"$CLI" generate --seed 7 --tasks 10 --procs 6 > "$NM/inst.txt"
{
  echo "load inst $NM/inst.txt"
  p=1000000
  for _ in $(seq 1 12); do
    echo "solve inst exact $p inf"
    echo "sync"
    p=$((p / 3))
  done
  echo "stats"
} | "$CLI" serve - > "$NM/out.txt"
near_miss=$(grep '^# near_miss' "$NM/out.txt" | awk '{print $3}')
[ "${near_miss:-0}" -ge 1 ] ||
  { echo "FAIL: near-miss counter did not rise on a bound sweep" >&2; exit 1; }
grep -q '"dominating":' "$NM/out.txt" ||
  { echo "FAIL: stats output lost the per-tier hit breakdown" >&2; exit 1; }
if grep -q $'\terror\t' "$NM/out.txt"; then
  echo "FAIL: error statuses in near-miss smoke replies" >&2
  exit 1
fi
echo "near-miss smoke test OK: near_miss=$near_miss"

# ---------------------------------------------------------------------------
# Fabric smoke test: ranks 0..2 on localhost present one logical cache.
# Asserts (via the line protocol's stats JSON) that cross-shard keys are
# forwarded and solved once on their owner, that *repeat* hits are
# absorbed by rank 0's replica tier (replica_hits rises, no second round
# trip), and that after killing rank 1 mid-run its replicated keys are
# still served cleanly while fresh keys degrade to local solving —
# never a single error status.
# ---------------------------------------------------------------------------
[ "${SKIP_FABRIC_SMOKE:-0}" = "1" ] && exit 0
FAB="$BUILD/fabric_smoke"
rm -rf "$FAB" && mkdir -p "$FAB"

# counter <file> <key>: last value of "key":N in the file (or 0).
counter() {
  local v
  v=$(grep -o "\"$2\":[0-9]*" "$1" 2>/dev/null | tail -1 | cut -d: -f2)
  echo "${v:-0}"
}
# wait_reply_lines <file> <n>: poll until the file has n reply lines.
wait_reply_lines() {
  for _ in $(seq 1 200); do
    [ "$(grep -c $'^[0-9]*\t' "$1" 2>/dev/null || true)" -ge "$2" ] && return 0
    sleep 0.05
  done
  echo "fabric smoke: timed out waiting for $2 replies in $1" >&2
  return 1
}

"$CLI" generate --seed 42 --tasks 8 --procs 4 > "$FAB/inst.txt"

# Ephemeral-ish ports; retry a few bases in case of a collision.
fabric_up=0
for attempt in 1 2 3 4 5; do
  P0=$((21000 + (RANDOM % 13000) * 3))
  P1=$((P0 + 1))
  P2=$((P0 + 2))
  PEERS="127.0.0.1:$P0,127.0.0.1:$P1,127.0.0.1:$P2"
  mkfifo "$FAB/in0" "$FAB/in1"
  # Gossip enabled on every rank: the smoke run exercises digest and
  # prefetch frames for real (assertions stay on the replica counters,
  # which do not depend on gossip timing).
  "$CLI" serve --listen "$P2" --world 3 --rank 2 --peers "$PEERS" \
      --gossip-interval 0.25 --no-input > "$FAB/out2" 2> "$FAB/err2" &
  PID2=$!
  "$CLI" serve "$FAB/in1" --listen "$P1" --world 3 --rank 1 \
      --peers "$PEERS" --gossip-interval 0.25 \
      > "$FAB/out1" 2> "$FAB/err1" &
  PID1=$!
  "$CLI" serve "$FAB/in0" --listen "$P0" --world 3 --rank 0 \
      --peers "$PEERS" --gossip-interval 0.25 --stats \
      > "$FAB/out0" 2> "$FAB/err0" &
  PID0=$!
  exec 8> "$FAB/in0" 9> "$FAB/in1"
  for _ in $(seq 1 40); do
    if grep -q "listening" "$FAB/err0" 2>/dev/null &&
       grep -q "listening" "$FAB/err1" 2>/dev/null &&
       grep -q "listening" "$FAB/err2" 2>/dev/null; then
      fabric_up=1
      break
    fi
    kill -0 "$PID0" 2>/dev/null && kill -0 "$PID1" 2>/dev/null &&
      kill -0 "$PID2" 2>/dev/null || break
    sleep 0.05
  done
  [ "$fabric_up" = "1" ] && break
  echo "fabric smoke: port base $P0 unavailable, retrying" >&2
  exec 8>&- 9>&-
  kill "$PID0" "$PID1" "$PID2" 2>/dev/null || true
  wait "$PID0" "$PID1" "$PID2" 2>/dev/null || true
  rm -f "$FAB/in0" "$FAB/in1"
done
[ "$fabric_up" = "1" ] || { echo "fabric smoke: could not bind ports" >&2; exit 1; }

# Phase 1: 16 distinct keys from rank 0 (~2/3 remote-shard), then the
# same 16 again — repeats of remote keys must now be *replica* hits
# (absorbed on rank 0, no second round trip), then stats.
{
  echo "load inst $FAB/inst.txt"
  for pass in 1 2; do
    for i in $(seq 1 16); do echo "solve inst heur-p inf $((1000 + i))"; done
    echo "sync"
  done
  echo "stats"
} >&8
wait_reply_lines "$FAB/out0" 32
# The '# router' / '# replica' stats lines land just after the replies;
# wait for them too before reading counters.
for _ in $(seq 1 100); do
  grep -q '# replica' "$FAB/out0" && break
  sleep 0.05
done

forwarded=$(counter "$FAB/out0" forwarded)
replica_hits=$(counter "$FAB/out0" replica_hits)
[ "$forwarded" -ge 1 ] || { echo "FAIL: nothing was forwarded" >&2; exit 1; }
[ "$replica_hits" -ge 1 ] ||
  { echo "FAIL: repeats were not absorbed by the replica tier" >&2; exit 1; }

# The owners actually served the first pass from their engines.
echo "stats" >&9
for _ in $(seq 1 100); do
  grep -q '"submitted"' "$FAB/out1" && break
  sleep 0.05
done
owner_submitted=$(( $(counter "$FAB/out1" submitted) ))
[ "$owner_submitted" -ge 1 ] ||
  { echo "FAIL: rank 1 never saw a forwarded solve" >&2; exit 1; }

# ---------------------------------------------------------------------------
# Telemetry smoke: scrape every live rank's prometheus exposition over
# the fabric's kMetricsRequest frame, twice with traffic in between —
# counters must be monotone and every exposition line well-formed — and
# assert rank 0 holds at least one trace whose spans name two ranks
# (the cross-rank tracing guarantee, via the line protocol's `traces`).
# ---------------------------------------------------------------------------
# metric_value <file> <name>: the sample value of a prometheus line.
metric_value() {
  local v
  v=$(grep "^$2 " "$1" 2>/dev/null | tail -1 | awk '{print $2}')
  echo "${v:-0}"
}
for r in 0 1 2; do
  port_var="P$r"
  "$CLI" scrape "127.0.0.1:${!port_var}" > "$FAB/scrape${r}_a.txt" ||
    { echo "FAIL: scrape of rank $r failed" >&2; exit 1; }
  [ -s "$FAB/scrape${r}_a.txt" ] ||
    { echo "FAIL: empty exposition from rank $r" >&2; exit 1; }
done
# Repeat traffic between the scrapes: remote-shard repeats rise as
# replica hits on rank 0, owned keys as engine submissions.
{
  for i in $(seq 1 16); do echo "solve inst heur-p inf $((1000 + i))"; done
  echo "sync"
} >&8
wait_reply_lines "$FAB/out0" 48
for r in 0 1 2; do
  port_var="P$r"
  "$CLI" scrape "127.0.0.1:${!port_var}" > "$FAB/scrape${r}_b.txt" ||
    { echo "FAIL: second scrape of rank $r failed" >&2; exit 1; }
  # Every line is a comment or "name[{labels}] value" — a malformed
  # exposition line would break standard scrapers.
  if grep -vE '^#' "$FAB/scrape${r}_b.txt" |
     grep -vE '^[a-zA-Z_][a-zA-Z0-9_]*(\{[^{}]*\})? [+-]?([0-9.]+([eE][+-]?[0-9]+)?|Inf|NaN)$' |
     grep -q .; then
    echo "FAIL: malformed exposition line from rank $r:" >&2
    grep -vE '^#' "$FAB/scrape${r}_b.txt" |
      grep -vE '^[a-zA-Z_][a-zA-Z0-9_]*(\{[^{}]*\})? [+-]?([0-9.]+([eE][+-]?[0-9]+)?|Inf|NaN)$' |
      head -3 >&2
    exit 1
  fi
  for m in prts_engine_submitted_total prts_router_forwarded_total \
           prts_router_replica_hits_total net_server_frames_total; do
    a=$(metric_value "$FAB/scrape${r}_a.txt" "$m")
    b=$(metric_value "$FAB/scrape${r}_b.txt" "$m")
    [ "$b" -ge "$a" ] ||
      { echo "FAIL: $m went backwards on rank $r ($a -> $b)" >&2; exit 1; }
  done
done
# The repeat pass was absorbed by rank 0's replica tier — its counter
# must have strictly risen between the two scrapes.
rh_a=$(metric_value "$FAB/scrape0_a.txt" prts_router_replica_hits_total)
rh_b=$(metric_value "$FAB/scrape0_b.txt" prts_router_replica_hits_total)
[ "$rh_b" -gt "$rh_a" ] ||
  { echo "FAIL: replica hits did not rise between scrapes ($rh_a -> $rh_b)" >&2; exit 1; }

echo "traces 200" >&8
for _ in $(seq 1 100); do
  grep -q '# trace-entry' "$FAB/out0" && break
  sleep 0.05
done
grep -qE '# trace-entry .*ranks=[0-9]+,[0-9]+' "$FAB/out0" ||
  { echo "FAIL: no cross-rank trace on rank 0" >&2; exit 1; }
echo "telemetry smoke test OK: replica_hits $rh_a -> $rh_b," \
     "cross-rank traces present"

# ---------------------------------------------------------------------------
# Profiler smoke: with all three ranks up and warm from the traffic
# above, the `profile` protocol command on rank 0 must render a
# well-formed rollup (components + mutexes), every rank's scrape must
# export profile_* families, and the always-on allocation accounting
# must have produced a nonzero engine_allocs_per_request gauge.
# ---------------------------------------------------------------------------
echo "profile" >&8
for _ in $(seq 1 100); do
  grep -q '# profile ' "$FAB/out0" && break
  sleep 0.05
done
grep -q '# profile {"enabled":true,"components":\[' "$FAB/out0" ||
  { echo "FAIL: profile command malformed on rank 0" >&2; exit 1; }
grep '# profile ' "$FAB/out0" | grep -q '"name":"submit_path"' ||
  { echo "FAIL: profile rollup lost the submit_path component" >&2; exit 1; }
grep '# profile ' "$FAB/out0" | grep -q '"mutexes":\[' ||
  { echo "FAIL: profile rollup lost the mutex table" >&2; exit 1; }
echo "profile" >&9
for _ in $(seq 1 100); do
  grep -q '# profile ' "$FAB/out1" && break
  sleep 0.05
done
grep -q '# profile {"enabled":true' "$FAB/out1" ||
  { echo "FAIL: profile command malformed on rank 1" >&2; exit 1; }
for r in 0 1 2; do
  grep -q '^profile_' "$FAB/scrape${r}_b.txt" ||
    { echo "FAIL: rank $r exports no profile_* families" >&2; exit 1; }
done
apr=$(metric_value "$FAB/scrape0_b.txt" engine_allocs_per_request)
awk -v v="$apr" 'BEGIN { exit !(v > 0) }' ||
  { echo "FAIL: engine_allocs_per_request is zero on rank 0" >&2; exit 1; }
echo "profiler smoke test OK: allocs_per_request=$apr"

# Phase 2: kill rank 1 mid-run. Its already-replicated keys must still
# be served (replica hits rise, zero errors), and 24 fresh keys must be
# answered cleanly — the ones rank 1 owns via local fallback.
kill "$PID1" && wait "$PID1" 2>/dev/null || true
{
  for i in $(seq 1 16); do echo "solve inst heur-p inf $((1000 + i))"; done
  echo "sync"
  for i in $(seq 1 24); do echo "solve inst heur-p inf $((5000 + i))"; done
  echo "sync"
  echo "stats"
} >&8
wait_reply_lines "$FAB/out0" 88

# ---------------------------------------------------------------------------
# Open-loop SLO smoke: ranks 0 and 2 are still up (rank 1 is dead).
# First a watch-mode scrape of rank 0 — two iterations, counter deltas,
# nonzero exit on any malformed exposition line. Then 5 seconds of
# open-loop Poisson load through the wire pool against ranks 0 and 2,
# with rank 2 killed mid-run: the SLO report must still be emitted and
# pass (generous bounds — the pool fails over, the router degrades to
# local solving), with zero stuck waiters, and afterwards rank 0's
# watchdog must report zero stall episodes.
# ---------------------------------------------------------------------------
"$CLI" scrape "127.0.0.1:$P0" --watch 1 --count 2 > "$FAB/watch0.txt" ||
  { echo "FAIL: watch-mode scrape of rank 0 failed" >&2; exit 1; }
grep -q '# scrape delta' "$FAB/watch0.txt" ||
  { echo "FAIL: watch-mode scrape printed no delta report" >&2; exit 1; }

( sleep 2; kill "$PID2" 2>/dev/null ) &
KILLER=$!
"$CLI" loadgen --targets "127.0.0.1:$P0,127.0.0.1:$P2" \
    --rate 100 --duration 5 --seed 11 --keys 8 \
    --record "$FAB/openloop_trace.txt" \
    --slo "p99<=5s;error_rate<=0.05" --out "$FAB/openloop.json" ||
  { echo "FAIL: open-loop run missed its SLO or left stuck waiters" >&2
    cat "$FAB/openloop.json" 2>/dev/null >&2; exit 1; }
wait "$KILLER" 2>/dev/null || true
[ -s "$FAB/openloop.json" ] ||
  { echo "FAIL: loadgen emitted no SLO report" >&2; exit 1; }
grep -q '"unresolved":0' "$FAB/openloop.json" ||
  { echo "FAIL: open-loop run left stuck waiters" >&2; exit 1; }
grep -q '"slo":{"pass":true' "$FAB/openloop.json" ||
  { echo "FAIL: SLO verdict missing or failing in report" >&2; exit 1; }
[ -s "$FAB/openloop_trace.txt" ] &&
  grep -q '^prts-load-trace v1' "$FAB/openloop_trace.txt" ||
  { echo "FAIL: recorded arrival trace missing or malformed" >&2; exit 1; }
# Pipelining proof: the wire pool runs ONE mux connection per target,
# and under open-loop load plus a mid-run peer death the in-flight
# watermark on a single connection must exceed 1 — lock-step wire
# clients cap it at 1 by construction.
inflight_max=$(counter "$FAB/openloop.json" net_client_inflight_max)
[ "$inflight_max" -ge 2 ] ||
  { echo "FAIL: no pipelining on the wire pool's single connection" \
         "(net_client_inflight_max=$inflight_max)" >&2; exit 1; }

# Rank 0 took the whole storm (forwards to two dead peers included)
# without any component stalling.
echo "stats --json" >&8
for _ in $(seq 1 100); do
  grep -q '"watchdog"' "$FAB/out0" && break
  sleep 0.05
done
grep -q '"watchdog":{"stalls_total":0' "$FAB/out0" ||
  { echo "FAIL: watchdog reported stalls on rank 0" >&2; exit 1; }
# The mid-run rank kills left rank 0 with in-flight forwards to dead
# peers: every one must have failed over (forward_failures rises, and
# the zero-unresolved check above proves no waiter got stuck).
[ "$(counter "$FAB/out0" forward_failures)" -ge 1 ] ||
  { echo "FAIL: rank kills produced no failed-over forwards" >&2; exit 1; }
echo "open-loop smoke test OK: $(grep -o '"offered_rate":[0-9.]*' \
    "$FAB/openloop.json"), $(grep -o '"answered":[0-9]*' "$FAB/openloop.json")," \
    "inflight_max=$inflight_max"

# ---------------------------------------------------------------------------
# Alert smoke: every serve carries the default rule
# "watchdog_stalls_total_delta>0;hold=5". Freeze the last live rank
# with SIGSTOP for longer than the 2s stall threshold — on resume its
# watchdog books a stall episode (the periodic gossip component's
# missed-beat gap), the next flight-recorder tick sees the delta and
# the rule fires (`scrape --alerts` exits 3). With the rank healthy
# again the rule must then resolve within the 5-tick hold (exit 0).
# Deliberately last, after rank 0's stall-free verdict above: a frozen
# peer also stretches *other* ranks' gossip exchanges past the stall
# bar, so this fault must not precede any watchdog-clean assertion.
# ---------------------------------------------------------------------------
kill -STOP "$PID0"
sleep 3.2
kill -CONT "$PID0"
alert_fired=0
for _ in $(seq 1 60); do
  rc=0
  "$CLI" scrape "127.0.0.1:$P0" --alerts > "$FAB/alerts0.txt" 2>/dev/null ||
    rc=$?
  [ "$rc" -eq 3 ] && { alert_fired=1; break; }
  [ "$rc" -eq 0 ] ||
    { echo "FAIL: alert scrape of rank 0 failed (rc=$rc)" >&2; exit 1; }
  sleep 0.25
done
[ "$alert_fired" = "1" ] ||
  { echo "FAIL: frozen rank 0 never fired the watchdog stall alert" >&2
    cat "$FAB/alerts0.txt" >&2; exit 1; }
grep -q '^alert_watchdog_stalls' "$FAB/alerts0.txt" ||
  { echo "FAIL: firing scrape does not name the watchdog rule" >&2; exit 1; }
alert_resolved=0
for _ in $(seq 1 60); do
  rc=0
  "$CLI" scrape "127.0.0.1:$P0" --alerts > "$FAB/alerts0.txt" 2>/dev/null ||
    rc=$?
  [ "$rc" -eq 0 ] && { alert_resolved=1; break; }
  [ "$rc" -eq 3 ] ||
    { echo "FAIL: alert scrape of rank 0 failed (rc=$rc)" >&2; exit 1; }
  sleep 0.5
done
[ "$alert_resolved" = "1" ] ||
  { echo "FAIL: watchdog stall alert never resolved after revive" >&2
    cat "$FAB/alerts0.txt" >&2; exit 1; }
echo "alert smoke test OK: stall rule fired and resolved after revive"

exec 8>&- 9>&-
wait "$PID0" || { echo "FAIL: rank 0 exited non-zero" >&2; exit 1; }
kill "$PID2" 2>/dev/null || true
wait "$PID2" 2>/dev/null || true

replica_hits_after=$(counter "$FAB/out0" replica_hits)
[ "$replica_hits_after" -gt "$replica_hits" ] ||
  { echo "FAIL: killed rank's replicated keys were not served" >&2; exit 1; }
[ "$(counter "$FAB/out0" local_fallbacks)" -ge 1 ] ||
  { echo "FAIL: peer death did not degrade to local solving" >&2; exit 1; }
if grep -q $'\terror\t' "$FAB/out0"; then
  echo "FAIL: error statuses in rank 0 replies" >&2
  exit 1
fi
replies=$(grep -c $'^[0-9]*\t' "$FAB/out0" || true)
[ "$replies" -eq 88 ] || { echo "FAIL: expected 88 replies, got $replies" >&2; exit 1; }

echo "fabric smoke test OK: forwarded=$forwarded" \
     "replica_hits=$replica_hits_after" \
     "local_fallbacks=$(counter "$FAB/out0" local_fallbacks)" \
     "prefetched=$(counter "$FAB/out0" prefetched)"

# ---------------------------------------------------------------------------
# Elastic membership smoke: real prts_cli processes, no static --peers.
# Rank 0 founds the fleet, rank 1 joins it; under 6 s of open-loop load
# a 3rd rank joins (rank 0's membership converges to 3 and the joiner
# receives handoff entries for its ring slice), then rank 1 is
# SIGKILL'd — the load run must still pass its SLO with zero stuck
# waiters and the survivors must book the death. Finally rank 1 rejoins
# *warm* from the background checkpoint its dead incarnation left
# behind: its very first scrape shows prts_cache_entries > 0, before
# any request has landed.
# ---------------------------------------------------------------------------
ELA="$BUILD/elastic_smoke"
rm -rf "$ELA" && mkdir -p "$ELA"

# wait_metric <host:port> <name> <op> <want>: poll the target's scrape
# until `value op want` holds (awk numeric semantics; missing -> 0).
wait_metric() {
  local v
  for _ in $(seq 1 150); do
    v=$("$CLI" scrape "$1" 2>/dev/null | grep "^$2 " | tail -1 |
        awk '{print $2}')
    if awk -v v="${v:-0}" -v w="$4" "BEGIN { exit !(v $3 w) }"; then
      return 0
    fi
    sleep 0.1
  done
  echo "elastic smoke: timed out waiting for $2 $3 $4 on $1" \
       "(last: ${v:-none})" >&2
  return 1
}

# Fast-failure-detection knobs shared by every elastic rank.
ELASTIC_KNOBS="--elastic --heartbeat-interval 0.1 --suspect-after 0.8 \
  --dead-after 1.6"

elastic_up=0
for attempt in 1 2 3 4 5; do
  # A base below the fabric smoke's 21000+ range, so a lingering
  # TIME_WAIT from phase 2 can never collide.
  E0=$((15000 + (RANDOM % 1500) * 3))
  E1=$((E0 + 1))
  E2=$((E0 + 2))
  # shellcheck disable=SC2086
  "$CLI" serve --listen "$E0" --rank 0 $ELASTIC_KNOBS \
      --checkpoint "$ELA/ckpt0.bin" --checkpoint-interval 0.5 \
      --no-input > "$ELA/out0" 2> "$ELA/err0" &
  EPID0=$!
  # shellcheck disable=SC2086
  "$CLI" serve --listen "$E1" --rank 1 $ELASTIC_KNOBS \
      --join "127.0.0.1:$E0" \
      --checkpoint "$ELA/ckpt1.bin" --checkpoint-interval 0.5 \
      --no-input > "$ELA/out1" 2> "$ELA/err1" &
  EPID1=$!
  for _ in $(seq 1 40); do
    if grep -q "listening" "$ELA/err0" 2>/dev/null &&
       grep -q "listening" "$ELA/err1" 2>/dev/null; then
      elastic_up=1
      break
    fi
    kill -0 "$EPID0" 2>/dev/null && kill -0 "$EPID1" 2>/dev/null || break
    sleep 0.05
  done
  [ "$elastic_up" = "1" ] && break
  echo "elastic smoke: port base $E0 unavailable, retrying" >&2
  kill "$EPID0" "$EPID1" 2>/dev/null || true
  wait "$EPID0" "$EPID1" 2>/dev/null || true
done
[ "$elastic_up" = "1" ] ||
  { echo "elastic smoke: could not bind ports" >&2; exit 1; }

# The join propagates: both ranks converge on a 2-member view.
wait_metric "127.0.0.1:$E0" prts_membership_members == 2 ||
  { echo "FAIL: rank 1's join never reached rank 0" >&2; exit 1; }
wait_metric "127.0.0.1:$E1" prts_membership_members == 2 ||
  { echo "FAIL: rank 1 never learned the full member list" >&2; exit 1; }

# Open-loop load against both founders while the fleet reshapes. 24
# distinct keys: enough that the mid-run joiner's ring slice contains
# cached entries to hand off (each key lands on the joiner w.p. ~1/3).
"$CLI" loadgen --targets "127.0.0.1:$E0,127.0.0.1:$E1" \
    --rate 80 --duration 6 --seed 17 --keys 24 \
    --slo "p99<=5s;error_rate<=0.05" --out "$ELA/openloop.json" \
    > "$ELA/loadgen.txt" 2>&1 &
LOADPID=$!

sleep 1.5
# shellcheck disable=SC2086
"$CLI" serve --listen "$E2" --rank 2 $ELASTIC_KNOBS \
    --join "127.0.0.1:$E0" --no-input > "$ELA/out2" 2> "$ELA/err2" &
EPID2=$!
wait_metric "127.0.0.1:$E0" prts_membership_members == 3 ||
  { echo "FAIL: mid-run join never converged on rank 0" >&2; exit 1; }
# The live handoff actually streamed: the joiner received cache entries
# for the ring slice it now owns, while the load kept flowing.
wait_metric "127.0.0.1:$E2" prts_membership_handoff_entries_received_total \
    ">=" 1 ||
  { echo "FAIL: joiner received no handoff entries" >&2; exit 1; }

sleep 1
# disown first: the shell would otherwise print an asynchronous
# "Killed" job notice into the CI log.
disown "$EPID1"
kill -9 "$EPID1"

wait "$LOADPID" ||
  { echo "FAIL: elastic open-loop run missed its SLO" >&2
    cat "$ELA/openloop.json" 2>/dev/null >&2; exit 1; }
grep -q '"unresolved":0' "$ELA/openloop.json" ||
  { echo "FAIL: elastic open-loop run left stuck waiters" >&2; exit 1; }
grep -q '"slo":{"pass":true' "$ELA/openloop.json" ||
  { echo "FAIL: SLO verdict missing or failing in elastic report" >&2
    exit 1; }

# Silence -> suspect -> dead: the survivors drop the killed rank and
# book the death.
wait_metric "127.0.0.1:$E0" prts_membership_members == 2 ||
  { echo "FAIL: killed rank 1 was never declared dead" >&2; exit 1; }
wait_metric "127.0.0.1:$E0" prts_membership_deaths_total ">=" 1 ||
  { echo "FAIL: rank 0 booked no membership death" >&2; exit 1; }

# Warm rejoin: the dead incarnation's background checkpoint must exist
# (interval 0.5 s, atomic rename — a SIGKILL never leaves it torn) and
# must bring the cache back before the first request.
[ -s "$ELA/ckpt1.bin" ] ||
  { echo "FAIL: rank 1 left no background checkpoint" >&2; exit 1; }
# shellcheck disable=SC2086
"$CLI" serve --listen "$E1" --rank 1 $ELASTIC_KNOBS \
    --join "127.0.0.1:$E0" --warm-start "$ELA/ckpt1.bin" \
    --no-input > "$ELA/out1b" 2> "$ELA/err1b" &
EPID1=$!
for _ in $(seq 1 40); do
  grep -q "listening" "$ELA/err1b" 2>/dev/null && break
  sleep 0.05
done
warm_entries=$(grep -o 'warm-start: [0-9]*' "$ELA/err1b" | awk '{print $2}')
[ "${warm_entries:-0}" -ge 1 ] ||
  { echo "FAIL: warm rejoin loaded no checkpoint entries" >&2; exit 1; }
wait_metric "127.0.0.1:$E1" prts_cache_entries ">=" 1 ||
  { echo "FAIL: rejoined rank 1 scrapes an empty cache" >&2; exit 1; }
wait_metric "127.0.0.1:$E0" prts_membership_members == 3 ||
  { echo "FAIL: warm rejoin never converged on rank 0" >&2; exit 1; }

kill "$EPID0" "$EPID1" "$EPID2" 2>/dev/null || true
wait "$EPID0" ||
  { echo "FAIL: elastic rank 0 exited non-zero" >&2; exit 1; }
wait "$EPID1" "$EPID2" 2>/dev/null || true
echo "elastic smoke test OK: join under load, handoff streamed," \
     "death detected, warm rejoin with $warm_entries entries"
