#!/usr/bin/env sh
# Tier-1 verify: configure, build, run every registered test. This is
# the exact line ROADMAP.md pins; CI and local smoke runs should call
# this script so the command can evolve in one place.
set -eu

cd "$(dirname "$0")/.."
cmake -B build -S .
cmake --build build -j
cd build
ctest --output-on-failure -j
