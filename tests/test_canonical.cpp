// Canonicalization invariants the solve service's cache keys rest on:
// serialize -> canonicalize round trips, hash stability, and hash
// equality for stage-relabeled / processor-permuted isomorphic
// instances.
#include "service/canonical.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "eval/evaluation.hpp"
#include "model/serialize.hpp"

namespace prts::service {
namespace {

Instance small_het_instance() {
  std::vector<Task> tasks{{10.0, 2.0}, {4.0, 1.0}, {20.0, 0.0}};
  std::vector<Processor> procs{{3.0, 1e-8}, {1.0, 2e-8}, {2.0, 1e-8}};
  return Instance{TaskChain(std::move(tasks)),
                  Platform(std::move(procs), 1.0, 1e-5, 2)};
}

TEST(CanonicalNumber, ShortestRoundTripForms) {
  EXPECT_EQ(canonical_number(1.0), "1");
  EXPECT_EQ(canonical_number(0.25), "0.25");
  EXPECT_EQ(canonical_number(-0.0), "0");
  EXPECT_EQ(canonical_number(1e-8), "1e-08");
  EXPECT_EQ(canonical_number(std::numeric_limits<double>::infinity()),
            "inf");
}

TEST(CanonicalHashing, HexRoundTrip) {
  const CanonicalHash hash = fingerprint("hello");
  const auto parsed = hash_from_hex(to_hex(hash));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(*parsed, hash);
  EXPECT_FALSE(hash_from_hex("xyz").has_value());
  EXPECT_FALSE(hash_from_hex(std::string(32, 'g')).has_value());
}

TEST(CanonicalHashing, DistinguishesContentAndLength) {
  EXPECT_NE(fingerprint("a"), fingerprint("b"));
  EXPECT_NE(fingerprint("ab"), fingerprint("a"));
  EXPECT_EQ(fingerprint("ab"), fingerprint("ab"));
}

TEST(Canonicalize, SortsProcessorsAndRecordsInversePermutations) {
  const Instance instance = small_het_instance();
  const CanonicalInstance canonical = canonicalize(instance);

  const Platform& sorted = canonical.instance.platform;
  ASSERT_EQ(sorted.processor_count(), 3u);
  // Sorted by (speed, failure rate): speeds 1, 2, 3.
  EXPECT_EQ(sorted.speed(0), 1.0);
  EXPECT_EQ(sorted.speed(1), 2.0);
  EXPECT_EQ(sorted.speed(2), 3.0);

  for (std::size_t c = 0; c < 3; ++c) {
    EXPECT_EQ(canonical.to_canonical[canonical.to_original[c]], c);
    const Processor& original =
        instance.platform.processor(canonical.to_original[c]);
    EXPECT_EQ(original.speed, sorted.speed(c));
    EXPECT_EQ(original.failure_rate, sorted.failure_rate(c));
  }
}

TEST(Canonicalize, TextRoundTripsAndIsAFixedPoint) {
  const CanonicalInstance canonical = canonicalize(small_het_instance());
  // The canonical text parses back to an instance whose canonical form
  // is byte-identical (canonicalization is idempotent).
  ParseResult parsed = instance_from_text(canonical.text);
  ASSERT_TRUE(parsed) << parsed.error;
  const CanonicalInstance again = canonicalize(*parsed.instance);
  EXPECT_EQ(again.text, canonical.text);
  EXPECT_EQ(again.instance_hash, canonical.instance_hash);
}

TEST(Canonicalize, HashIsDeterministicWithinARun) {
  const Instance instance = small_het_instance();
  EXPECT_EQ(canonicalize(instance).instance_hash,
            canonicalize(instance).instance_hash);
}

TEST(Canonicalize, GoldenHashPinsCrossRunStability) {
  // Pinned output of the fixed 128-bit fingerprint for one concrete
  // instance: fails if the hash function or the canonical text format
  // changes, which would silently invalidate warm-start cache files.
  const CanonicalInstance canonical = canonicalize(small_het_instance());
  EXPECT_EQ(to_hex(canonical.instance_hash),
            "8ac2c71a6aae4058b362b3703a32503d");
}

TEST(Canonicalize, ProcessorPermutedInstancesCollide) {
  const Instance instance = small_het_instance();
  // Every permutation of the processor list canonicalizes identically.
  std::vector<std::size_t> perm{0, 1, 2};
  const CanonicalHash reference = canonicalize(instance).instance_hash;
  do {
    std::vector<Processor> procs;
    for (const std::size_t u : perm) {
      procs.push_back(instance.platform.processor(u));
    }
    const Instance permuted{
        instance.chain,
        Platform(std::move(procs), instance.platform.bandwidth(),
                 instance.platform.link_failure_rate(),
                 instance.platform.max_replication())};
    const CanonicalInstance canonical = canonicalize(permuted);
    EXPECT_EQ(canonical.instance_hash, reference);
    EXPECT_EQ(canonical.text, canonicalize(instance).text);
  } while (std::next_permutation(perm.begin(), perm.end()));
}

TEST(Canonicalize, StageRelabeledInstancesCollide) {
  // The same chain written plain, labeled 0..n-1, and labeled with
  // arbitrary scrambled ids: one canonical hash.
  const std::string plain =
      "prts-instance v1\ntasks 3\n10 2\n4 1\n20 0\n"
      "platform 2 1 1e-05 2\n1 1e-08\n1 1e-08\n";
  const std::string relabeled =
      "prts-instance v1\ntasks 3\n"
      "task 700 20 0\ntask 13 4 1\ntask 5 10 2\n"
      "platform 2 1 1e-05 2\n1 1e-08\n1 1e-08\n";
  ParseResult a = instance_from_text(plain);
  ParseResult b = instance_from_text(relabeled);
  ASSERT_TRUE(a) << a.error;
  ASSERT_TRUE(b) << b.error;
  EXPECT_EQ(canonicalize(*a.instance).instance_hash,
            canonicalize(*b.instance).instance_hash);
}

TEST(Canonicalize, DifferentInstancesDoNotCollide) {
  const Instance instance = small_het_instance();
  Instance changed = instance;
  std::vector<Task> tasks(instance.chain.tasks().begin(),
                          instance.chain.tasks().end());
  tasks[1].work += 1.0;
  changed.chain = TaskChain(std::move(tasks));
  EXPECT_NE(canonicalize(changed).instance_hash,
            canonicalize(instance).instance_hash);
}

TEST(RequestKeys, SolverAndBoundsSeparateRequests) {
  const CanonicalInstance canonical = canonicalize(small_het_instance());
  const solver::Bounds loose;
  solver::Bounds tight;
  tight.period_bound = 10.0;

  EXPECT_EQ(request_key(canonical, "exact", loose),
            request_key(canonical, "exact", loose));
  EXPECT_NE(request_key(canonical, "exact", loose),
            request_key(canonical, "heur-p", loose));
  EXPECT_NE(request_key(canonical, "exact", loose),
            request_key(canonical, "exact", tight));

  // The batch key folds bounds away but keeps the solver.
  EXPECT_EQ(batch_key(canonical, "exact"), batch_key(canonical, "exact"));
  EXPECT_NE(batch_key(canonical, "exact"), batch_key(canonical, "heur-p"));
}

TEST(LabelTranslation, MapsCanonicalSolutionsBackToRequestLabels) {
  const Instance instance = small_het_instance();
  const CanonicalInstance canonical = canonicalize(instance);

  // A mapping in canonical indices: interval 0 -> fastest two procs.
  Mapping canonical_mapping(IntervalPartition::single(3),
                            {{1, 2}});
  const MappingMetrics metrics =
      evaluate(canonical.instance.chain, canonical.instance.platform,
               canonical_mapping);
  const solver::Solution translated = to_original_labels(
      solver::Solution{canonical_mapping, metrics}, canonical);

  EXPECT_EQ(translated.mapping.validate(instance.platform), std::nullopt);
  EXPECT_EQ(translated.metrics, metrics);
  // The translated replicas are the original indices of canonical 1, 2.
  std::vector<std::size_t> expected{canonical.to_original[1],
                                    canonical.to_original[2]};
  std::sort(expected.begin(), expected.end());
  const auto procs = translated.mapping.processors(0);
  ASSERT_EQ(procs.size(), 2u);
  EXPECT_EQ(procs[0], expected[0]);
  EXPECT_EQ(procs[1], expected[1]);
}

}  // namespace
}  // namespace prts::service
