#include "core/period_dp.hpp"

#include <gtest/gtest.h>

#include <limits>

#include "core/reliability_dp.hpp"
#include "eval/evaluation.hpp"
#include "test_oracle.hpp"
#include "test_util.hpp"

namespace prts {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

TEST(PeriodDp, UnboundedMatchesAlgorithm1) {
  Rng rng(1);
  for (int trial = 0; trial < 10; ++trial) {
    const TaskChain chain = testutil::small_chain(rng, 6);
    const Platform platform = testutil::small_hom_platform(5, 2);
    const auto bounded = optimize_reliability_period(chain, platform, kInf);
    const auto free = optimize_reliability(chain, platform);
    ASSERT_TRUE(bounded.has_value());
    EXPECT_NEAR(bounded->reliability.log(), free.reliability.log(), 1e-10);
  }
}

TEST(PeriodDp, InfeasibleBoundReturnsNullopt) {
  const TaskChain chain({{10.0, 0.0}});
  const Platform platform = Platform::homogeneous(2, 1.0, 0.01, 1.0, 0.0, 2);
  EXPECT_FALSE(
      optimize_reliability_period(chain, platform, 5.0).has_value());
}

TEST(PeriodDp, SolutionRespectsBound) {
  Rng rng(2);
  for (int trial = 0; trial < 20; ++trial) {
    const TaskChain chain = testutil::small_chain(rng, 6);
    const Platform platform = testutil::small_hom_platform(6, 2);
    const double bound = rng.uniform_real(5.0, 60.0);
    const auto solution =
        optimize_reliability_period(chain, platform, bound);
    if (!solution) continue;
    const MappingMetrics metrics =
        evaluate(chain, platform, solution->mapping);
    EXPECT_LE(metrics.worst_period, bound + 1e-9);
    EXPECT_NEAR(solution->reliability.log(),
                metrics.reliability.log(), 1e-10);
  }
}

class PeriodDpOptimality : public ::testing::TestWithParam<int> {};

TEST_P(PeriodDpOptimality, MatchesExhaustiveSearchUnderBound) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) + 300);
  const auto n = static_cast<std::size_t>(rng.uniform_int(2, 6));
  const auto p = static_cast<std::size_t>(rng.uniform_int(1, 6));
  const TaskChain chain = testutil::small_chain(rng, n);
  const Platform platform = testutil::small_hom_platform(p, 2);
  const double bound = rng.uniform_real(5.0, 50.0);
  const auto solution = optimize_reliability_period(chain, platform, bound);
  const auto oracle =
      testutil::brute_force_best_log_reliability(chain, platform, bound);
  ASSERT_EQ(solution.has_value(), oracle.has_value());
  if (solution) {
    EXPECT_NEAR(solution->reliability.log(), *oracle, 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PeriodDpOptimality, ::testing::Range(0, 40));

TEST(PeriodDp, TighterBoundNeverMoreReliable) {
  Rng rng(3);
  const TaskChain chain = testutil::small_chain(rng, 6);
  const Platform platform = testutil::small_hom_platform(5, 2);
  double previous = -kInf;
  for (double bound = 10.0; bound <= 80.0; bound += 5.0) {
    const auto solution =
        optimize_reliability_period(chain, platform, bound);
    if (!solution) continue;
    EXPECT_GE(solution->reliability.log(), previous - 1e-12);
    previous = solution->reliability.log();
  }
}

TEST(PeriodMinimization, AchievesTheBinarySearchOptimum) {
  Rng rng(4);
  for (int trial = 0; trial < 10; ++trial) {
    const TaskChain chain = testutil::small_chain(rng, 6);
    const Platform platform = testutil::small_hom_platform(5, 2);
    // Ask for a mildly degraded reliability target.
    const auto unconstrained = optimize_reliability(chain, platform);
    const auto target = LogReliability::from_log(
        unconstrained.reliability.log() * 1.5);  // lower reliability
    const auto solution =
        optimize_period_reliability(chain, platform, target);
    ASSERT_TRUE(solution.has_value());
    EXPECT_GE(solution->reliability.log(), target.log() - 1e-12);
    // Optimality: no feasible mapping with strictly smaller period; step
    // just below the achieved period and verify infeasibility.
    const auto tighter = optimize_reliability_period(
        chain, platform, solution->period * (1.0 - 1e-9));
    if (tighter) {
      EXPECT_LT(tighter->reliability.log(), target.log());
    }
  }
}

TEST(PeriodMinimization, UnreachableReliabilityGivesNullopt) {
  const TaskChain chain({{10.0, 0.0}});
  const Platform platform = Platform::homogeneous(1, 1.0, 0.1, 1.0, 0.0, 1);
  // Demand more reliability than the best possible mapping provides.
  const auto best = optimize_reliability(chain, platform);
  const auto impossible =
      LogReliability::from_log(best.reliability.log() / 2.0);
  EXPECT_FALSE(
      optimize_period_reliability(chain, platform, impossible).has_value());
}

TEST(PeriodMinimization, PeriodMatchesMappingEvaluation) {
  Rng rng(5);
  const TaskChain chain = testutil::small_chain(rng, 6);
  const Platform platform = testutil::small_hom_platform(5, 2);
  const auto best = optimize_reliability(chain, platform);
  const auto solution = optimize_period_reliability(
      chain, platform,
      LogReliability::from_log(best.reliability.log() * 2.0));
  ASSERT_TRUE(solution.has_value());
  const MappingMetrics metrics =
      evaluate(chain, platform, solution->mapping);
  EXPECT_NEAR(metrics.worst_period, solution->period, 1e-9);
}

}  // namespace
}  // namespace prts
