#include "core/baseline.hpp"

#include <gtest/gtest.h>

#include "core/reliability_dp.hpp"
#include "test_util.hpp"

namespace prts {
namespace {

TEST(OneToOne, InfeasibleWhenFewerProcessorsThanTasks) {
  Rng rng(1);
  const TaskChain chain = testutil::small_chain(rng, 6);
  const Platform platform = testutil::small_hom_platform(4, 2);
  EXPECT_FALSE(one_to_one_mapping(chain, platform).has_value());
}

TEST(OneToOne, SingletonIntervals) {
  Rng rng(2);
  const TaskChain chain = testutil::small_chain(rng, 4);
  const Platform platform = testutil::small_hom_platform(8, 2);
  const auto baseline = one_to_one_mapping(chain, platform);
  ASSERT_TRUE(baseline.has_value());
  EXPECT_EQ(baseline->mapping.interval_count(), 4u);
  for (std::size_t j = 0; j < 4; ++j) {
    EXPECT_EQ(baseline->mapping.partition().interval(j).size(), 1u);
  }
  ASSERT_FALSE(baseline->mapping.validate(platform).has_value());
}

TEST(OneToOne, IntervalMappingNeverWorseInReliability) {
  // Interval mappings generalize one-to-one mappings (Section 1), so the
  // Algorithm 1 optimum is at least as reliable.
  Rng rng(3);
  for (int trial = 0; trial < 15; ++trial) {
    const TaskChain chain = testutil::small_chain(rng, 5);
    const Platform platform = testutil::small_hom_platform(7, 2);
    const auto baseline = one_to_one_mapping(chain, platform);
    ASSERT_TRUE(baseline.has_value());
    const auto optimal = optimize_reliability(chain, platform);
    EXPECT_GE(optimal.reliability.log(),
              baseline->metrics.reliability.log() - 1e-12);
  }
}

TEST(OneToOne, PeriodNeverWorseThanIntervalOptimum) {
  // The flip side: one-to-one gives the smallest possible computation
  // period contributions (single tasks), so its period lower-bounds any
  // coarser partition's computation period on homogeneous platforms.
  Rng rng(4);
  const TaskChain chain = testutil::small_chain(rng, 5);
  const Platform platform = testutil::small_hom_platform(7, 2);
  const auto baseline = one_to_one_mapping(chain, platform);
  ASSERT_TRUE(baseline.has_value());
  const auto coarse = optimize_reliability(chain, platform);
  const MappingMetrics coarse_metrics =
      evaluate(chain, platform, coarse.mapping);
  double max_task_time = 0.0;
  double max_comm = 0.0;
  for (std::size_t i = 0; i < chain.size(); ++i) {
    max_task_time =
        std::max(max_task_time, chain.work(i) / platform.speed(0));
    max_comm = std::max(max_comm, platform.comm_time(chain.out_size(i)));
  }
  EXPECT_NEAR(baseline->metrics.worst_period,
              std::max(max_task_time, max_comm), 1e-9);
  EXPECT_LE(baseline->metrics.worst_period,
            coarse_metrics.worst_period + 1e-9);
}

TEST(OneToOne, RespectsPeriodBoundOption) {
  Rng rng(5);
  const TaskChain chain = testutil::small_chain(rng, 4);
  const Platform platform = testutil::small_hom_platform(8, 2);
  AllocOptions options;
  options.period_bound = 1e-9;
  EXPECT_FALSE(one_to_one_mapping(chain, platform, options).has_value());
}

}  // namespace
}  // namespace prts
