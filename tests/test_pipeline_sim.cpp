#include "sim/pipeline_sim.hpp"

#include <gtest/gtest.h>

#include <array>
#include <cmath>

#include "eval/evaluation.hpp"
#include "test_util.hpp"

namespace prts::sim {
namespace {

/// 3 tasks, works 4/6/2, outputs 2/4/0, singleton intervals, unreplicated.
struct Fixture {
  TaskChain chain{std::vector<Task>{{4.0, 2.0}, {6.0, 4.0}, {2.0, 0.0}}};
  Platform platform = Platform::homogeneous(3, 1.0, 0.0, 1.0, 0.0, 2);
  Mapping mapping{IntervalPartition::singletons(3), {{0}, {1}, {2}}};
};

TEST(PipelineSim, FaultFreeSingleDatasetLatencyMatchesEq5NoRouting) {
  const Fixture fx;
  SimulationConfig config;
  config.dataset_count = 1;
  config.input_period = 1000.0;
  config.inject_failures = false;
  config.use_routing = false;  // Eq. (5) counts each transfer once
  const SimulationResult result =
      simulate_pipeline(fx.chain, fx.platform, fx.mapping, config);
  EXPECT_EQ(result.successes, 1u);
  const MappingMetrics metrics = evaluate(fx.chain, fx.platform, fx.mapping);
  EXPECT_NEAR(result.latency.mean(), metrics.worst_latency, 1e-9);
}

TEST(PipelineSim, RoutingDoublesTransferHops) {
  const Fixture fx;
  SimulationConfig config;
  config.dataset_count = 1;
  config.input_period = 1000.0;
  config.inject_failures = false;
  config.use_routing = true;
  const SimulationResult result =
      simulate_pipeline(fx.chain, fx.platform, fx.mapping, config);
  const MappingMetrics metrics = evaluate(fx.chain, fx.platform, fx.mapping);
  // Each inter-interval transfer crosses two links: +o1/b +o2/b = +6.
  EXPECT_NEAR(result.latency.mean(), metrics.worst_latency + 6.0, 1e-9);
}

TEST(PipelineSim, SteadyStateThroughputMatchesPeriodBound) {
  const Fixture fx;
  const MappingMetrics metrics = evaluate(fx.chain, fx.platform, fx.mapping);
  SimulationConfig config;
  config.dataset_count = 50;
  config.input_period = metrics.worst_period;
  config.inject_failures = false;
  config.use_routing = false;
  const SimulationResult result =
      simulate_pipeline(fx.chain, fx.platform, fx.mapping, config);
  EXPECT_EQ(result.successes, 50u);
  // Completions settle at the input period.
  EXPECT_NEAR(result.inter_completion.max(), metrics.worst_period, 1e-9);
  // And the last dataset's latency equals the first's: no queue build-up.
  EXPECT_NEAR(result.latency.min(), result.latency.max(), 1e-9);
}

TEST(PipelineSim, OverdrivenInputSaturatesAtBottleneck) {
  const Fixture fx;
  SimulationConfig config;
  config.dataset_count = 200;
  config.input_period = 0.1;  // far faster than the bottleneck (6.0)
  config.inject_failures = false;
  config.use_routing = false;
  const SimulationResult result =
      simulate_pipeline(fx.chain, fx.platform, fx.mapping, config);
  EXPECT_EQ(result.successes, 200u);
  // Inter-completion times converge to the bottleneck stage time.
  EXPECT_NEAR(result.inter_completion.mean(), 6.0, 0.2);
  // Latency grows with queueing: the last dataset waits far longer.
  EXPECT_GT(result.latency.max(), 10.0 * result.latency.min());
}

TEST(PipelineSim, DeadlineAccounting) {
  const Fixture fx;
  const MappingMetrics metrics = evaluate(fx.chain, fx.platform, fx.mapping);
  SimulationConfig config;
  config.dataset_count = 20;
  config.input_period = metrics.worst_period;
  config.inject_failures = false;
  config.use_routing = false;
  config.latency_deadline = metrics.worst_latency + 1e-6;
  SimulationResult result =
      simulate_pipeline(fx.chain, fx.platform, fx.mapping, config);
  EXPECT_EQ(result.deadline_misses, 0u);
  // A deadline below the achievable latency is missed by everyone.
  config.latency_deadline = metrics.worst_latency * 0.5;
  result = simulate_pipeline(fx.chain, fx.platform, fx.mapping, config);
  EXPECT_EQ(result.deadline_misses, 20u);
}

TEST(PipelineSim, DeterministicForFixedSeed) {
  Rng rng(5);
  const TaskChain chain = testutil::small_chain(rng, 4);
  const Platform platform = testutil::small_hom_platform(5, 2, 0.02, 0.03);
  const Mapping mapping = testutil::random_mapping(rng, chain, platform);
  SimulationConfig config;
  config.dataset_count = 300;
  config.input_period = 30.0;
  config.seed = 77;
  const SimulationResult a =
      simulate_pipeline(chain, platform, mapping, config);
  const SimulationResult b =
      simulate_pipeline(chain, platform, mapping, config);
  EXPECT_EQ(a.successes, b.successes);
  EXPECT_DOUBLE_EQ(a.latency.mean(), b.latency.mean());
  EXPECT_DOUBLE_EQ(a.makespan, b.makespan);
}

TEST(PipelineSim, SuccessRateTracksAnalyticReliability) {
  // Aggressive failure rates so the rate is measurably below 1.
  Rng rng(6);
  const TaskChain chain = testutil::small_chain(rng, 4);
  const Platform platform = testutil::small_hom_platform(6, 2, 0.02, 0.03);
  const Mapping mapping = testutil::random_mapping(rng, chain, platform);
  SimulationConfig config;
  config.dataset_count = 4000;
  config.input_period = 100.0;  // keep datasets timing-independent
  config.seed = 11;
  config.use_routing = true;
  const SimulationResult result =
      simulate_pipeline(chain, platform, mapping, config);
  const double analytic =
      mapping_reliability(chain, platform, mapping).reliability();
  const auto ci = wilson_interval(result.successes, result.datasets, 3.3);
  EXPECT_TRUE(ci.contains(analytic))
      << "analytic " << analytic << " not in [" << ci.lo << ", " << ci.hi
      << "]";
}

TEST(PipelineSim, ReplicationMasksFailures) {
  Rng rng(7);
  const TaskChain chain = testutil::small_chain(rng, 3);
  const Platform platform = testutil::small_hom_platform(6, 2, 0.05, 0.0);
  const Mapping single(IntervalPartition::single(3), {{0}});
  const Mapping replicated(IntervalPartition::single(3), {{0, 1}});
  SimulationConfig config;
  config.dataset_count = 3000;
  config.input_period = 100.0;
  config.seed = 13;
  const auto lone = simulate_pipeline(chain, platform, single, config);
  const auto dup = simulate_pipeline(chain, platform, replicated, config);
  EXPECT_GT(dup.success_rate(), lone.success_rate());
}

TEST(PipelineSim, ZeroDatasets) {
  const Fixture fx;
  SimulationConfig config;
  config.dataset_count = 0;
  const SimulationResult result =
      simulate_pipeline(fx.chain, fx.platform, fx.mapping, config);
  EXPECT_EQ(result.datasets, 0u);
  EXPECT_EQ(result.successes, 0u);
}

TEST(PipelineSim, WholeChainOnOneProcessor) {
  const Fixture fx;
  const Mapping mapping(IntervalPartition::single(3), {{0}});
  SimulationConfig config;
  config.dataset_count = 5;
  config.input_period = 12.0;  // = total work
  config.inject_failures = false;
  const SimulationResult result =
      simulate_pipeline(fx.chain, fx.platform, mapping, config);
  EXPECT_EQ(result.successes, 5u);
  EXPECT_NEAR(result.latency.mean(), 12.0, 1e-9);  // no comm inside
}

}  // namespace
}  // namespace prts::sim
