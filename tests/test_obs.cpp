// The observability layer: histogram quantiles against a sorted
// reference on randomized samples, bucket-boundary placement, lock-free
// recording and snapshot-and-reset under concurrency, tracer ring /
// slow-ring semantics, and the cross-rank tracing guarantees over the
// in-process fabric harness — a forwarded solve yields ONE trace whose
// spans name both ranks, and the trace survives failover after a rank
// kill.
#include "fabric_harness.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <map>
#include <memory>
#include <random>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "net/frame_client.hpp"
#include "obs/alerts.hpp"
#include "obs/exposition.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/metrics.hpp"
#include "obs/profiler.hpp"
#include "obs/trace.hpp"
#include "obs/watchdog.hpp"
#include "service/protocol.hpp"

namespace prts::service {
namespace {

using testing::FabricHarness;

// ---------------------------------------------------------- histogram

/// Nearest-rank reference quantile, the same rank formula the histogram
/// uses — the two must land in the same bucket.
double reference_quantile(std::vector<double> sorted, double q) {
  std::sort(sorted.begin(), sorted.end());
  const auto rank = static_cast<std::size_t>(std::max(
      1.0, std::ceil(q * static_cast<double>(sorted.size()))));
  return sorted[rank - 1];
}

TEST(ObsHistogram, QuantilesTrackSortedReferenceOnRandomSamples) {
  std::mt19937 rng(42);
  // Log-uniform over the histogram's finite range: every decade gets
  // traffic, so the test exercises many buckets, not one.
  std::uniform_real_distribution<double> exponent(std::log(2e-6),
                                                  std::log(50.0));
  obs::Histogram hist;
  std::vector<double> samples;
  for (int i = 0; i < 20000; ++i) {
    const double value = std::exp(exponent(rng));
    samples.push_back(value);
    hist.record(value);
  }
  const obs::Histogram::Snapshot snap = hist.snapshot();
  ASSERT_EQ(snap.count, samples.size());
  for (const double q : {0.5, 0.9, 0.99, 0.999}) {
    const double truth = reference_quantile(samples, q);
    const double estimate = snap.quantile(q);
    // Estimate and truth share a bucket, so their ratio is bounded by
    // the bucket width 10^0.1 ~ 1.2589 (plus float slack).
    EXPECT_GT(estimate, truth / 1.27) << "q=" << q;
    EXPECT_LT(estimate, truth * 1.27) << "q=" << q;
  }
}

TEST(ObsHistogram, BucketBoundaryValuesLandInclusively) {
  // Bucket i covers (upper_bound(i-1), upper_bound(i)]: the bound value
  // itself belongs to the bucket it names.
  for (const std::size_t i : {std::size_t{0}, std::size_t{10},
                              std::size_t{39}, std::size_t{79}}) {
    const double bound = obs::Histogram::upper_bound(i);
    EXPECT_EQ(obs::Histogram::bucket_index(bound), i) << "bound " << bound;
    EXPECT_EQ(obs::Histogram::bucket_index(bound * 1.0001), i + 1);
  }
  // Below the first bound, zero and negative all land in bucket 0.
  EXPECT_EQ(obs::Histogram::bucket_index(2e-7), 0u);
  EXPECT_EQ(obs::Histogram::bucket_index(0.0), 0u);
  EXPECT_EQ(obs::Histogram::bucket_index(-1.0), 0u);
  // Above the last finite bound: the overflow bucket.
  EXPECT_EQ(obs::Histogram::bucket_index(1000.0),
            obs::Histogram::kFiniteBuckets);

  obs::Histogram hist;
  hist.record(1000.0);
  // The overflow bucket reports the largest finite bound rather than
  // inventing a value beyond the histogram's range.
  EXPECT_DOUBLE_EQ(
      hist.snapshot().quantile(0.5),
      obs::Histogram::upper_bound(obs::Histogram::kFiniteBuckets - 1));
}

TEST(ObsHistogram, ConcurrentRecordingLosesNothing) {
  obs::Histogram hist;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&hist, t] {
      for (int i = 0; i < kPerThread; ++i) {
        hist.record(1e-5 * (1 + t));
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  const obs::Histogram::Snapshot snap = hist.snapshot();
  EXPECT_EQ(snap.count,
            static_cast<std::uint64_t>(kThreads) * kPerThread);
  double expected_sum = 0.0;
  for (int t = 0; t < kThreads; ++t) expected_sum += kPerThread * 1e-5 * (1 + t);
  EXPECT_NEAR(snap.sum, expected_sum, expected_sum * 1e-9);
}

TEST(ObsHistogram, SnapshotAndResetPartitionsConcurrentTraffic) {
  obs::Histogram hist;
  constexpr int kThreads = 4;
  constexpr int kPerThread = 50000;
  std::atomic<bool> done{false};
  std::uint64_t scraped = 0;
  // A scraper racing the recorders: every record must land in exactly
  // one snapshot — nothing lost, nothing double-counted.
  std::thread scraper([&] {
    while (!done.load()) {
      scraped += hist.snapshot_and_reset().count;
    }
  });
  std::vector<std::thread> recorders;
  for (int t = 0; t < kThreads; ++t) {
    recorders.emplace_back([&hist] {
      for (int i = 0; i < kPerThread; ++i) hist.record(1e-4);
    });
  }
  for (std::thread& thread : recorders) thread.join();
  done.store(true);
  scraper.join();
  scraped += hist.snapshot_and_reset().count;
  EXPECT_EQ(scraped, static_cast<std::uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(hist.snapshot().count, 0u);
}

// ----------------------------------------------------------- registry

TEST(ObsRegistry, ExpositionCarriesEveryRegisteredMetric) {
  obs::Registry registry;
  registry.counter("requests_total").add(3);
  registry.gauge("queue_depth").set(7.0);
  registry.histogram("latency_seconds").record(0.002);

  std::ostringstream prom;
  registry.write_prometheus(prom);
  const std::string text = prom.str();
  EXPECT_NE(text.find("requests_total 3"), std::string::npos);
  EXPECT_NE(text.find("queue_depth 7"), std::string::npos);
  EXPECT_NE(text.find("latency_seconds_count 1"), std::string::npos);
  EXPECT_NE(text.find("latency_seconds_bucket{le=\"+Inf\"} 1"),
            std::string::npos);
  EXPECT_NE(text.find("latency_seconds_p99"), std::string::npos);
  // Every line is either a comment or "name[{labels}] value".
  std::istringstream lines(text);
  std::string line;
  while (std::getline(lines, line)) {
    ASSERT_FALSE(line.empty());
    if (line[0] == '#') continue;
    const std::size_t space = line.rfind(' ');
    ASSERT_NE(space, std::string::npos) << line;
    EXPECT_TRUE(std::isalpha(static_cast<unsigned char>(line[0])) ||
                line[0] == '_')
        << line;
  }

  std::ostringstream json;
  registry.write_json(json);
  EXPECT_EQ(json.str().front(), '{');
  EXPECT_EQ(json.str().back(), '}');
  EXPECT_NE(json.str().find("\"counters\""), std::string::npos);
  EXPECT_NE(json.str().find("\"histograms\""), std::string::npos);
}

TEST(ObsRegistry, ReferencesAreStableAndCountersReset) {
  obs::Registry registry;
  obs::Counter& counter = registry.counter("hits_total");
  EXPECT_EQ(&counter, &registry.counter("hits_total"));
  counter.add(5);
  EXPECT_EQ(counter.exchange(), 5u);
  EXPECT_EQ(counter.value(), 0u);
}

// ------------------------------------------------------------- tracer

bool has_span(const obs::Trace& trace, const std::string& name, int rank) {
  for (const obs::Span& span : trace.spans) {
    if (span.name == name && span.rank == rank) return true;
  }
  return false;
}

TEST(ObsTracer, StartRecordFinishRoundTrip) {
  obs::Tracer tracer;
  const std::uint64_t id = tracer.start("heur-p:abc");
  ASSERT_NE(id, 0u);
  tracer.record(id, "solver_run", 0, 0.001, 0.5);
  tracer.finish(id, 0.6);
  obs::Trace trace;
  ASSERT_TRUE(tracer.find(id, trace));
  EXPECT_EQ(trace.label, "heur-p:abc");
  EXPECT_TRUE(trace.finished);
  EXPECT_DOUBLE_EQ(trace.total_seconds, 0.6);
  ASSERT_EQ(trace.spans.size(), 1u);
  EXPECT_TRUE(has_span(trace, "solver_run", 0));
  // Upsert finish keeps the max: a later re-finish with a larger total
  // (the router amending after failover) wins, a smaller one does not.
  tracer.finish(id, 0.4);
  tracer.find(id, trace);
  EXPECT_DOUBLE_EQ(trace.total_seconds, 0.6);
  tracer.finish(id, 0.9);
  tracer.find(id, trace);
  EXPECT_DOUBLE_EQ(trace.total_seconds, 0.9);
}

TEST(ObsTracer, RingEvictsOldestAndIgnoresUnknownIds) {
  obs::TracerConfig config;
  config.capacity = 4;
  obs::Tracer tracer(config);
  std::vector<std::uint64_t> ids;
  for (int i = 0; i < 10; ++i) ids.push_back(tracer.start("t"));
  obs::Trace trace;
  EXPECT_FALSE(tracer.find(ids[0], trace));  // evicted
  EXPECT_TRUE(tracer.find(ids.back(), trace));
  EXPECT_LE(tracer.recent(32).size(), 4u);
  // Recording against an evicted id is a silent no-op, not a crash.
  tracer.record(ids[0], "late", 0, 0.0, 0.1);
  tracer.finish(ids[0], 0.1);
}

TEST(ObsTracer, SlowTracesAreCopiedAndLoggedOnce) {
  std::ostringstream log;
  obs::TracerConfig config;
  config.slow_threshold_seconds = 0.01;
  config.slow_log = &log;
  obs::Tracer tracer(config);

  const std::uint64_t fast = tracer.start("fast");
  tracer.finish(fast, 0.001);
  EXPECT_EQ(tracer.slow_count(), 0u);

  const std::uint64_t slow = tracer.start("slow");
  tracer.record(slow, "solver_run", 0, 0.0, 0.02);
  tracer.finish(slow, 0.02);
  EXPECT_EQ(tracer.slow_count(), 1u);
  ASSERT_EQ(tracer.slow(8).size(), 1u);
  EXPECT_EQ(tracer.slow(8)[0].id, slow);
  EXPECT_NE(log.str().find("[slow-trace]"), std::string::npos);
  EXPECT_NE(log.str().find(obs::id_to_hex(slow)), std::string::npos);
  // A second finish (the failover amend path) does not double-log.
  tracer.finish(slow, 0.03);
  EXPECT_EQ(tracer.slow_count(), 1u);
}

TEST(ObsTracer, ExternalIdsAreAdoptedAndHexRoundTrips) {
  obs::Tracer tracer;
  tracer.start_with_id(0xdeadbeef12345678ull, "adopted");
  obs::Trace trace;
  ASSERT_TRUE(tracer.find(0xdeadbeef12345678ull, trace));
  EXPECT_EQ(trace.label, "adopted");

  EXPECT_EQ(obs::id_from_hex(obs::id_to_hex(0xdeadbeef12345678ull)),
            0xdeadbeef12345678ull);
  EXPECT_EQ(obs::id_to_hex(0xdeadbeef12345678ull).size(), 16u);
  EXPECT_EQ(obs::id_from_hex("nonsense"), 0u);
  EXPECT_EQ(obs::id_from_hex(""), 0u);
}

// -------------------------------------------------- engine integration

Instance hom_instance() {
  std::vector<Task> tasks{{10.0, 2.0}, {4.0, 1.0}, {20.0, 1.0}, {6.0, 0.0}};
  return Instance{TaskChain(std::move(tasks)),
                  Platform::homogeneous(5, 1.0, 1e-8, 1.0, 1e-5, 2)};
}

TEST(EngineTelemetry, SolveAndCacheHitEachGetTheirOwnTrace) {
  obs::Telemetry telemetry;
  ServiceConfig config;
  config.threads = 2;
  config.telemetry = &telemetry;
  SolveService engine(config);
  const SolveRequest request{hom_instance(), "heur-p", {}};

  const SolveReply cold = engine.submit(request).get();
  ASSERT_EQ(cold.status, ReplyStatus::kSolved);
  ASSERT_NE(cold.trace_id, 0u);
  obs::Trace cold_trace;
  ASSERT_TRUE(telemetry.tracer.find(cold.trace_id, cold_trace));
  EXPECT_TRUE(cold_trace.finished);
  EXPECT_TRUE(has_span(cold_trace, "batch_wait", 0));
  EXPECT_TRUE(has_span(cold_trace, "solver_run", 0));
  EXPECT_GT(cold_trace.total_seconds, 0.0);

  const SolveReply warm = engine.submit(request).get();
  ASSERT_TRUE(warm.cache_hit);
  ASSERT_NE(warm.trace_id, 0u);
  EXPECT_NE(warm.trace_id, cold.trace_id);
  obs::Trace warm_trace;
  ASSERT_TRUE(telemetry.tracer.find(warm.trace_id, warm_trace));
  EXPECT_TRUE(has_span(warm_trace, "cache_lookup", 0));

  EXPECT_EQ(telemetry.metrics.counter("engine_requests_total").value(), 2u);
  EXPECT_EQ(telemetry.metrics.histogram("engine_request_latency_seconds")
                .snapshot()
                .count,
            2u);
}

TEST(ProtocolTelemetry, ServeCommandsExposeMetricsAndTraces) {
  obs::Telemetry telemetry;
  ServiceConfig config;
  config.threads = 2;
  config.telemetry = &telemetry;
  SolveService engine(config);

  std::istringstream script(
      "instance a\n"
      "prts-instance v1\n"
      "tasks 2\n"
      "10 1\n"
      "5 0\n"
      "platform 3 1 1e-05 2\n"
      "1 1e-08\n"
      "1 1e-08\n"
      "1 1e-08\n"
      "end\n"
      "solve a heur-p inf inf\n"
      "sync\n"
      "stats --json\n"
      "metrics\n"
      "traces\n");
  std::ostringstream out;
  const ServeResult result = run_serve(script, out, engine);
  EXPECT_EQ(result.protocol_errors, 0u);
  const std::string text = out.str();
  EXPECT_NE(text.find("# stats-json {\"engine\""), std::string::npos);
  EXPECT_NE(text.find("\"telemetry\""), std::string::npos);
  EXPECT_NE(text.find("# metrics begin"), std::string::npos);
  EXPECT_NE(text.find("prts_engine_submitted_total 1"), std::string::npos);
  EXPECT_NE(text.find("engine_requests_total 1"), std::string::npos);
  EXPECT_NE(text.find("# metrics end"), std::string::npos);
  EXPECT_NE(text.find("# trace-entry id="), std::string::npos);

  // Round-trip: the id printed by `traces` resolves via `trace <id>`.
  const std::size_t pos = text.find("# trace-entry id=");
  const std::string id_hex = text.substr(pos + 17, 16);
  std::istringstream follow_up("trace " + id_hex + "\ntrace 0123\n");
  std::ostringstream detail;
  run_serve(follow_up, detail, engine);
  EXPECT_NE(detail.str().find("# trace id=" + id_hex), std::string::npos);
  EXPECT_NE(detail.str().find("# span rank=0 name="), std::string::npos);
  EXPECT_NE(detail.str().find("not-found"), std::string::npos);
}

TEST(ProtocolTelemetry, TraceCommandsErrorWhenTelemetryOff) {
  ServiceConfig config;
  config.threads = 1;
  SolveService engine(config);
  std::istringstream script("traces\ntrace 0011223344556677\nslowlog\n");
  std::ostringstream out;
  const ServeResult result = run_serve(script, out, engine);
  EXPECT_EQ(result.protocol_errors, 3u);
  EXPECT_NE(out.str().find("telemetry disabled"), std::string::npos);
}

// -------------------------------------------------- histogram merging

TEST(ObsHistogram, MergeAcrossRanksEqualsUnionHistogram) {
  // Three "ranks" record disjoint sample streams; merging their
  // snapshots must be indistinguishable from one rank having seen the
  // union — same counts, sum, and every quantile.
  std::mt19937 rng(7);
  std::uniform_real_distribution<double> exponent(std::log(1e-5),
                                                  std::log(10.0));
  obs::Histogram union_hist;
  std::vector<obs::Histogram> ranks(3);
  for (int i = 0; i < 30000; ++i) {
    const double value = std::exp(exponent(rng));
    union_hist.record(value);
    ranks[i % 3].record(value);
  }
  obs::Histogram::Snapshot merged = ranks[0].snapshot();
  merged.merge(ranks[1].snapshot());
  merged.merge(ranks[2].snapshot());
  const obs::Histogram::Snapshot truth = union_hist.snapshot();
  EXPECT_EQ(merged.count, truth.count);
  EXPECT_NEAR(merged.sum, truth.sum, truth.sum * 1e-12);
  for (const double q : {0.5, 0.9, 0.99, 0.999}) {
    EXPECT_DOUBLE_EQ(merged.quantile(q), truth.quantile(q)) << "q=" << q;
  }
}

// ----------------------------------------------------- flight recorder

TEST(ObsFlightRecorder, TickDeltasDescribeOnlyThatWindow) {
  obs::Registry registry;
  obs::FlightRecorder recorder(&registry);
  registry.counter("requests_total").add(5);
  registry.counter("idle_total").add(2);
  recorder.tick_now();

  registry.counter("requests_total").add(3);
  registry.gauge("queue_depth").set(9.0);
  registry.histogram("latency_seconds").record(0.001);
  registry.histogram("latency_seconds").record(0.004);
  recorder.tick_now();

  const std::vector<obs::FlightRecorder::Tick> ticks = recorder.recent();
  ASSERT_EQ(ticks.size(), 2u);
  // Tick 0 baselines against zero: the pre-existing counts are its
  // window.
  EXPECT_EQ(ticks[0].counter_deltas.at("requests_total"), 5u);
  // Tick 1 sees only what moved since tick 0 — and idle_total, which
  // did not move, is dropped from the delta map entirely.
  EXPECT_EQ(ticks[1].counter_deltas.at("requests_total"), 3u);
  EXPECT_EQ(ticks[1].counter_deltas.count("idle_total"), 0u);
  EXPECT_DOUBLE_EQ(ticks[1].gauges.at("queue_depth"), 9.0);
  const auto& window = ticks[1].histograms.at("latency_seconds");
  EXPECT_EQ(window.count, 2u);
  EXPECT_NEAR(window.mean, 0.0025, 0.0025);
  EXPECT_GT(window.p99, window.p50 * 0.99);
  // The registry itself stayed cumulative: nothing was reset.
  EXPECT_EQ(registry.counter("requests_total").value(), 8u);
  EXPECT_EQ(registry.histogram("latency_seconds").snapshot().count, 2u);
}

TEST(ObsFlightRecorder, RingWrapsKeepingTheNewestTicks) {
  obs::Registry registry;
  obs::FlightRecorder recorder(&registry);
  obs::FlightRecorderConfig config;
  config.capacity = 4;
  recorder.configure(config);
  for (int i = 0; i < 10; ++i) {
    registry.counter("ticker_total").add(1);
    recorder.tick_now();
  }
  EXPECT_EQ(recorder.total_ticks(), 10u);
  const std::vector<obs::FlightRecorder::Tick> all = recorder.recent();
  ASSERT_EQ(all.size(), 4u);
  // Oldest-first, and the survivors are exactly the last four seqs.
  for (std::size_t i = 0; i < all.size(); ++i) {
    EXPECT_EQ(all[i].seq, 6u + i);
    EXPECT_EQ(all[i].counter_deltas.at("ticker_total"), 1u);
  }
  const std::vector<obs::FlightRecorder::Tick> two = recorder.recent(2);
  ASSERT_EQ(two.size(), 2u);
  EXPECT_EQ(two[0].seq, 8u);
  EXPECT_EQ(two[1].seq, 9u);
}

// ------------------------------------------------------------ watchdog

TEST(ObsWatchdog, OnDemandComponentStallsOnlyUnderLoad) {
  obs::Registry registry;
  obs::Watchdog watchdog(&registry);
  obs::WatchdogConfig config;
  config.stall_threshold_seconds = 0.05;
  config.poll_interval_seconds = 10.0;  // monitor thread effectively off
  watchdog.start(config);
  watchdog.stop();  // keep the config, drive check() by hand

  obs::Heartbeat& engine = watchdog.component("engine");
  std::this_thread::sleep_for(std::chrono::milliseconds(80));
  // Idle and silent: innocent.
  EXPECT_TRUE(watchdog.check().empty());
  EXPECT_EQ(watchdog.stalls_total(), 0u);

  // Busy and silent: wedged — and one episode counts once, however
  // often the monitor polls it.
  engine.set_load(3);
  std::vector<obs::Stall> stalls = watchdog.check();
  ASSERT_EQ(stalls.size(), 1u);
  EXPECT_EQ(stalls[0].component, "engine");
  EXPECT_EQ(stalls[0].load, 3);
  watchdog.check();
  watchdog.check();
  EXPECT_EQ(watchdog.stalls_total(), 1u);

  // Progress clears it; a later silence is a NEW episode.
  engine.beat();
  EXPECT_TRUE(watchdog.check().empty());
  std::this_thread::sleep_for(std::chrono::milliseconds(80));
  EXPECT_EQ(watchdog.check().size(), 1u);
  EXPECT_EQ(watchdog.stalls_total(), 2u);

  // The registry mirrors follow.
  EXPECT_EQ(registry.counter("watchdog_stalls_total").value(), 2u);
  std::ostringstream json;
  watchdog.write_json(json);
  EXPECT_NE(json.str().find("\"stalls_total\":2"), std::string::npos);
  EXPECT_NE(json.str().find("\"component\":\"engine\""), std::string::npos);
}

TEST(ObsWatchdog, PeriodicComponentStallsEvenWhenIdle) {
  obs::Watchdog watchdog;
  obs::WatchdogConfig config;
  config.stall_threshold_seconds = 0.01;
  config.periodic_factor = 2.0;  // stalls at 2 * 0.03 = 0.06s of silence
  config.poll_interval_seconds = 10.0;
  watchdog.start(config);
  watchdog.stop();

  obs::Heartbeat& gossip = watchdog.component("router_gossip", 0.03);
  EXPECT_TRUE(watchdog.check().empty());
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  // Load is zero, but a periodic component has no excuse for silence.
  const std::vector<obs::Stall> stalls = watchdog.check();
  ASSERT_EQ(stalls.size(), 1u);
  EXPECT_EQ(stalls[0].component, "router_gossip");
  gossip.beat();
  EXPECT_TRUE(watchdog.check().empty());

  // Re-registration refreshes the same slot rather than leaking a
  // second stale "router_gossip".
  EXPECT_EQ(&watchdog.component("router_gossip", 0.03), &gossip);
}

// ----------------------------------------------- timeseries over serve

TEST(ProtocolTelemetry, TimeseriesReturnsTheRecordedWindow) {
  obs::Telemetry telemetry;
  ServiceConfig config;
  config.threads = 2;
  config.telemetry = &telemetry;
  SolveService engine(config);

  std::istringstream warm(
      "instance a\n"
      "prts-instance v1\n"
      "tasks 2\n"
      "10 1\n"
      "5 0\n"
      "platform 3 1 1e-05 2\n"
      "1 1e-08\n"
      "1 1e-08\n"
      "1 1e-08\n"
      "end\n"
      "solve a heur-p inf inf\n"
      "sync\n");
  std::ostringstream warm_out;
  ASSERT_EQ(run_serve(warm, warm_out, engine).protocol_errors, 0u);
  telemetry.recorder.tick_now();
  telemetry.recorder.tick_now();

  std::istringstream script("timeseries\ntimeseries 1\ntimeseries bogus\n");
  std::ostringstream out;
  const ServeResult result = run_serve(script, out, engine);
  EXPECT_EQ(result.protocol_errors, 1u);  // the bogus limit
  const std::string text = out.str();
  EXPECT_NE(text.find("# timeseries ticks=2 window=2"), std::string::npos);
  EXPECT_NE(text.find("# timeseries ticks=2 window=1"), std::string::npos);
  // The solve landed in tick 0's window.
  EXPECT_NE(text.find("# tick seq=0"), std::string::npos);
  EXPECT_NE(text.find("engine_requests_total"), std::string::npos);
  EXPECT_NE(text.find("# timeseries end"), std::string::npos);

  // Watchdog verdict rides along in stats --json.
  std::istringstream stats_script("stats --json\n");
  std::ostringstream stats_out;
  run_serve(stats_script, stats_out, engine);
  EXPECT_NE(stats_out.str().find("\"watchdog\":{\"stalls_total\":0"),
            std::string::npos);
}

TEST(ProtocolTelemetry, TimeseriesErrorsWhenTelemetryOff) {
  ServiceConfig config;
  config.threads = 1;
  SolveService engine(config);
  std::istringstream script("timeseries\n");
  std::ostringstream out;
  EXPECT_EQ(run_serve(script, out, engine).protocol_errors, 1u);
  EXPECT_NE(out.str().find("telemetry disabled"), std::string::npos);
}

// --------------------------------------------------- fabric telemetry

FabricHarness::Options fast_options(std::size_t world) {
  FabricHarness::Options options;
  options.world = world;
  options.service.threads = 2;
  options.router.client.connect_timeout_seconds = 1.0;
  options.router.client.reply_timeout_seconds = 10.0;
  options.router.client.backoff_initial_seconds = 0.05;
  return options;
}

SolveRequest remote_request(FabricHarness& harness, const Instance& instance,
                            std::size_t owner, double salt = 0.0) {
  return SolveRequest{instance, "heur-p",
                      harness.bounds_on_rank(instance, "heur-p", owner, salt)};
}

TEST(FabricTelemetry, ForwardedSolveYieldsOneTraceNamingBothRanks) {
  FabricHarness harness(fast_options(2));
  const Instance instance = hom_instance();
  const SolveRequest request = remote_request(harness, instance, /*owner=*/1);

  const SolveReply reply = harness.router(0).submit(request).get();
  ASSERT_EQ(reply.status, ReplyStatus::kSolved);
  ASSERT_NE(reply.trace_id, 0u);

  // ONE trace id, per-hop spans from both ranks, on the origin.
  obs::Trace origin;
  ASSERT_TRUE(harness.telemetry(0).tracer.find(reply.trace_id, origin));
  EXPECT_TRUE(origin.finished);
  std::set<int> ranks;
  for (const obs::Span& span : origin.spans) ranks.insert(span.rank);
  EXPECT_TRUE(ranks.count(0)) << "origin spans missing";
  EXPECT_TRUE(ranks.count(1)) << "owner spans not merged";
  EXPECT_TRUE(has_span(origin, "wire_round_trip", 0));
  EXPECT_TRUE(has_span(origin, "solver_run", 1));
  // Remote spans are shifted into the origin's timeline: none may start
  // before the wire exchange did.
  double wire_start = 0.0;
  for (const obs::Span& span : origin.spans) {
    if (span.name == "wire_round_trip") wire_start = span.start_seconds;
  }
  for (const obs::Span& span : origin.spans) {
    if (span.rank == 1) {
      EXPECT_GE(span.start_seconds, wire_start);
    }
  }

  // The same id resolves on the owner too (`trace <id>` on either rank).
  obs::Trace owner;
  ASSERT_TRUE(harness.telemetry(1).tracer.find(reply.trace_id, owner));
  EXPECT_TRUE(owner.finished);
  EXPECT_TRUE(has_span(owner, "solver_run", 1));

  // The per-peer client counters registered under the origin's metrics.
  EXPECT_GE(harness.telemetry(0)
                .metrics.counter("net_client_rank1_calls_total")
                .value(),
            1u);
}

TEST(FabricTelemetry, TraceSurvivesFailoverAfterRankKill) {
  FabricHarness harness(fast_options(2));
  const Instance instance = hom_instance();
  const SolveRequest request = remote_request(harness, instance, /*owner=*/1);
  harness.kill(1);

  const SolveReply reply = harness.router(0).submit(request).get();
  ASSERT_EQ(reply.status, ReplyStatus::kSolved);
  ASSERT_NE(reply.trace_id, 0u);
  EXPECT_EQ(harness.router(0).stats().local_fallbacks, 1u);

  obs::Trace trace;
  ASSERT_TRUE(harness.telemetry(0).tracer.find(reply.trace_id, trace));
  EXPECT_TRUE(trace.finished);
  // The whole story in one trace: the dead wire exchange, then the
  // local rescue solve.
  EXPECT_TRUE(has_span(trace, "forward_failover", 0));
  EXPECT_TRUE(has_span(trace, "solver_run", 0));
  for (const obs::Span& span : trace.spans) EXPECT_EQ(span.rank, 0);
}

TEST(FabricTelemetry, MetricsFrameScrapesAnyRank) {
  FabricHarness harness(fast_options(2));
  const Instance instance = hom_instance();
  ASSERT_EQ(harness.router(0)
                .submit(remote_request(harness, instance, 1))
                .get()
                .status,
            ReplyStatus::kSolved);

  for (std::size_t r = 0; r < harness.world(); ++r) {
    net::FrameClient client("127.0.0.1", harness.port(r));
    net::Frame request;
    request.type = net::FrameType::kMetricsRequest;
    const auto reply = client.call(request);
    ASSERT_TRUE(reply.has_value()) << "rank " << r;
    ASSERT_EQ(reply->type, net::FrameType::kMetricsReply);
    EXPECT_NE(reply->payload.find("prts_engine_submitted_total"),
              std::string::npos);
    EXPECT_NE(reply->payload.find("prts_router_forwarded_total"),
              std::string::npos);
  }
}

// ------------------------------------------------------------ profiler

TEST(ObsProfiler, DualClockSeparatesComputeFromBlocking) {
  // Busy span: wall and thread-CPU both advance, and CPU never exceeds
  // wall beyond clock granularity. Spin until the thread has ACCRUED
  // the CPU time the assertion wants (not a fixed wall window): on a
  // loaded machine the scheduler can starve this thread to a sliver of
  // a fixed window's CPU.
  const obs::ScopedSample busy;
  const double cpu_start = obs::thread_cpu_seconds();
  volatile double sink = 0.0;
  const auto spin_deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  const auto spin_floor =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(60);
  while (std::chrono::steady_clock::now() < spin_floor ||
         (obs::thread_cpu_seconds() - cpu_start < 0.03 &&
          std::chrono::steady_clock::now() < spin_deadline)) {
    for (int i = 0; i < 1000; ++i) sink = sink + static_cast<double>(i);
  }
  const obs::WorkSample busy_work = busy.finish();
  EXPECT_GT(busy_work.wall_seconds, 0.04);
  EXPECT_GT(busy_work.cpu_seconds, 0.02);
  EXPECT_LE(busy_work.cpu_seconds, busy_work.wall_seconds + 0.005);

  // Sleeping span: wall advances, CPU barely moves — the whole region
  // reads as blocked time.
  const obs::ScopedSample idle;
  std::this_thread::sleep_for(std::chrono::milliseconds(60));
  const obs::WorkSample idle_work = idle.finish();
  EXPECT_GT(idle_work.wall_seconds, 0.05);
  EXPECT_LT(idle_work.cpu_seconds, 0.02);
  EXPECT_GT(idle_work.blocked_seconds(), 0.03);
}

TEST(ObsProfiler, AllocationAccountingIsPerThread) {
  // A scope on this thread sees exactly its own allocations, even while
  // another thread churns the heap concurrently.
  std::atomic<bool> stop{false};
  std::thread noisy([&stop] {
    while (!stop.load()) {
      std::vector<std::string> junk;
      for (int i = 0; i < 64; ++i) junk.emplace_back(128, 'x');
    }
  });

  constexpr std::size_t kAllocs = 100;
  constexpr std::size_t kBytes = 256;
  std::vector<std::unique_ptr<char[]>> mine;
  mine.reserve(kAllocs);  // pre-size: the loop below allocates only blocks
  const obs::AllocScope scope;
  for (std::size_t i = 0; i < kAllocs; ++i) {
    mine.push_back(std::make_unique<char[]>(kBytes));
  }
  const obs::AllocCounts delta = scope.delta();
  stop.store(true);
  noisy.join();

  EXPECT_GE(delta.count, kAllocs);
  EXPECT_LT(delta.count, kAllocs + 16) << "foreign-thread allocs leaked in";
  EXPECT_GE(delta.bytes, kAllocs * kBytes);
}

TEST(ObsProfiler, ProfiledMutexCountsContentionAndWaitTime) {
  obs::Registry registry;
  const obs::ProfiledMutex::Probe probe =
      obs::ProfiledMutex::make_probe(registry, "test");
  obs::ProfiledMutex mutex;
  mutex.attach(&probe);

  mutex.lock();  // uncontended: fast path
  std::thread waiter([&mutex] {
    mutex.lock();  // contended: blocks until the holder lets go
    mutex.unlock();
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(80));
  mutex.unlock();
  waiter.join();

  EXPECT_EQ(probe.acquisitions->value(), 2u);
  EXPECT_EQ(probe.contended->value(), 1u);
  EXPECT_EQ(probe.wait->snapshot().count, 1u);

  // The profiler's rollup decodes the same story from the registry.
  const obs::Profiler profiler(&registry);
  const std::vector<obs::Profiler::MutexStats> mutexes = profiler.mutexes();
  ASSERT_EQ(mutexes.size(), 1u);
  EXPECT_EQ(mutexes[0].name, "test");
  EXPECT_EQ(mutexes[0].acquisitions, 2u);
  EXPECT_EQ(mutexes[0].contended, 1u);
  EXPECT_GT(mutexes[0].wait_seconds, 0.05);
}

TEST(ObsProfiler, ComponentsAggregateIntoRegistryAndJson) {
  obs::Registry registry;
  obs::Profiler profiler(&registry);
  obs::WorkSample sample;
  sample.wall_seconds = 0.010;
  sample.cpu_seconds = 0.004;
  sample.alloc_count = 7;
  sample.alloc_bytes = 512;
  profiler.record("solver_run", sample);
  profiler.record("solver_run", sample);
  profiler.record("wire_round_trip", sample);

  const std::vector<obs::Profiler::ComponentStats> all = profiler.stats();
  ASSERT_EQ(all.size(), 2u);  // name-sorted
  EXPECT_EQ(all[0].name, "solver_run");
  EXPECT_EQ(all[0].samples, 2u);
  EXPECT_NEAR(all[0].wall_seconds, 0.020, 1e-4);
  EXPECT_NEAR(all[0].blocked_seconds, 0.012, 1e-4);
  EXPECT_EQ(all[0].alloc_count, 14u);
  EXPECT_EQ(all[0].alloc_bytes, 1024u);

  const std::vector<obs::Profiler::ComponentStats> filtered =
      profiler.stats("wire_round_trip");
  ASSERT_EQ(filtered.size(), 1u);
  EXPECT_EQ(filtered[0].name, "wire_round_trip");

  std::ostringstream json;
  profiler.write_json(json);
  EXPECT_EQ(json.str().rfind("{\"enabled\":true,\"components\":[", 0), 0u);
  EXPECT_NE(json.str().find("\"name\":\"solver_run\",\"samples\":2"),
            std::string::npos);
}

// -------------------------------------------------------------- alerts

obs::FlightRecorder::Tick gauge_tick(std::uint64_t seq, double queue_depth) {
  obs::FlightRecorder::Tick tick;
  tick.seq = seq;
  tick.uptime_seconds = static_cast<double>(seq);
  tick.interval_seconds = 1.0;
  tick.gauges["engine_queue_depth"] = queue_depth;
  return tick;
}

TEST(ObsAlerts, ParsesGrammarAndRejectsGarbage) {
  obs::AlertRule rule;
  std::string error;
  ASSERT_TRUE(obs::parse_alert_rule(
      "engine_request_latency_seconds_p99>50ms;for=3;hold=7", rule, &error))
      << error;
  EXPECT_EQ(rule.metric, "engine_request_latency_seconds_p99");
  EXPECT_EQ(rule.op, ">");
  EXPECT_NEAR(rule.bound, 0.05, 1e-12);
  EXPECT_EQ(rule.for_ticks, 3);
  EXPECT_EQ(rule.hold_ticks, 7);

  ASSERT_TRUE(obs::parse_alert_rule("error_rate>=0.01", rule));
  EXPECT_EQ(rule.op, ">=");
  EXPECT_EQ(rule.for_ticks, 1);  // defaults
  EXPECT_EQ(rule.hold_ticks, 3);

  for (const char* bad :
       {"", "nonsense", ">5", "queue>", "q>1;for=x", "q>1;for=0",
        "q>1;bogus=2"}) {
    EXPECT_FALSE(obs::parse_alert_rule(bad, rule, &error)) << bad;
    EXPECT_FALSE(error.empty()) << bad;
  }
}

TEST(ObsAlerts, ForAndHoldDebounceDeterministically) {
  obs::Registry registry;
  obs::AlertEngine alerts(&registry);
  std::string error;
  ASSERT_TRUE(
      alerts.add_rule("engine_queue_depth>100;for=2;hold=2", &error))
      << error;

  alerts.evaluate(gauge_tick(0, 150));  // breach 1 of 2: armed, not firing
  EXPECT_EQ(alerts.firing_count(), 0u);
  alerts.evaluate(gauge_tick(1, 150));  // breach 2 of 2: fires
  EXPECT_EQ(alerts.firing_count(), 1u);
  EXPECT_EQ(registry.gauge("alerts_firing").value(), 1.0);
  alerts.evaluate(gauge_tick(2, 150));  // still breaching: no re-fire
  EXPECT_EQ(alerts.firing_count(), 1u);
  alerts.evaluate(gauge_tick(3, 50));  // clean 1 of 2: holds
  EXPECT_EQ(alerts.firing_count(), 1u);
  alerts.evaluate(gauge_tick(4, 50));  // clean 2 of 2: resolves
  EXPECT_EQ(alerts.firing_count(), 0u);
  EXPECT_EQ(registry.gauge("alerts_firing").value(), 0.0);

  const std::vector<obs::AlertEngine::RuleState> states = alerts.states();
  ASSERT_EQ(states.size(), 1u);
  EXPECT_FALSE(states[0].firing);
  EXPECT_EQ(states[0].fired_total, 1u);
  EXPECT_EQ(states[0].resolved_total, 1u);
  EXPECT_EQ(states[0].ticks_evaluated, 5u);

  std::ostringstream json;
  alerts.write_json(json);
  EXPECT_EQ(json.str().rfind("{\"firing\":0,\"rules\":[", 0), 0u);
  EXPECT_NE(json.str().find("\"fired\":1"), std::string::npos);
}

TEST(ObsAlerts, CounterDeltaRuleSeesOnlyTheTickWindow) {
  obs::AlertEngine alerts(nullptr);
  ASSERT_TRUE(alerts.add_rule("watchdog_stalls_total_delta>0;hold=2"));

  obs::FlightRecorder::Tick stall = gauge_tick(0, 0);
  stall.counter_deltas["watchdog_stalls_total"] = 1;
  alerts.evaluate(stall);  // for=1 default: fires on the first breach
  EXPECT_EQ(alerts.firing_count(), 1u);

  // The counter never moves again: absent delta reads as zero, and two
  // clean ticks resolve the alert.
  alerts.evaluate(gauge_tick(1, 0));
  EXPECT_EQ(alerts.firing_count(), 1u);
  alerts.evaluate(gauge_tick(2, 0));
  EXPECT_EQ(alerts.firing_count(), 0u);
  ASSERT_EQ(alerts.states().size(), 1u);
  EXPECT_EQ(alerts.states()[0].fired_total, 1u);
  EXPECT_EQ(alerts.states()[0].resolved_total, 1u);
}

// ---------------------------------------------------------- exposition

TEST(ObsExposition, ParsesSampleLinesAndRejectsMalformed) {
  std::string name;
  double value = 0.0;
  EXPECT_TRUE(obs::parse_exposition_line("engine_requests_total 42", name,
                                         value));
  EXPECT_EQ(name, "engine_requests_total");
  EXPECT_EQ(value, 42.0);
  EXPECT_TRUE(obs::parse_exposition_line("hist_bucket{le=\"0.1\"} 7", name,
                                         value));
  EXPECT_EQ(name, "hist_bucket{le=\"0.1\"}");
  for (const char* bad : {"", "1bad 2", "name", "name x", "name 1 2x"}) {
    EXPECT_FALSE(obs::parse_exposition_line(bad, name, value)) << bad;
  }
}

TEST(ObsExposition, TrackerDistinguishesRestartFromBackwards) {
  obs::ScrapeDeltaTracker tracker;
  const std::map<std::string, double> baseline{
      {"a_total", 10}, {"process_start_time_seconds", 111}, {"depth", 5}};
  const obs::ScrapeDeltaTracker::Result first = tracker.feed(baseline);
  EXPECT_TRUE(first.first);
  EXPECT_TRUE(first.deltas.empty());

  // Healthy advance: one counter delta, gauges ignored.
  const obs::ScrapeDeltaTracker::Result advance = tracker.feed(
      {{"a_total", 15}, {"process_start_time_seconds", 111}, {"depth", 9}});
  EXPECT_FALSE(advance.first);
  EXPECT_FALSE(advance.restart);
  EXPECT_TRUE(advance.backwards.empty());
  ASSERT_EQ(advance.deltas.size(), 1u);
  EXPECT_EQ(advance.deltas[0].name, "a_total");
  EXPECT_EQ(advance.deltas[0].value, 5.0);

  // Counters reset AND a fresh start time: a restart, deltas rebase
  // from zero — not an error.
  const obs::ScrapeDeltaTracker::Result restart = tracker.feed(
      {{"a_total", 3}, {"process_start_time_seconds", 222}});
  EXPECT_TRUE(restart.restart);
  EXPECT_TRUE(restart.backwards.empty());
  ASSERT_EQ(restart.deltas.size(), 1u);
  EXPECT_EQ(restart.deltas[0].value, 3.0);

  // A counter that shrinks under an unchanged start time is a genuine
  // monotonicity violation.
  const obs::ScrapeDeltaTracker::Result corrupt = tracker.feed(
      {{"a_total", 1}, {"process_start_time_seconds", 222}});
  EXPECT_FALSE(corrupt.restart);
  ASSERT_EQ(corrupt.backwards.size(), 1u);
  EXPECT_EQ(corrupt.backwards[0], "a_total");
}

// ------------------------------------------- protocol: profile / alerts

TEST(ProtocolTelemetry, ProfileAndAlertsCommandsRenderState) {
  obs::Telemetry telemetry;
  ASSERT_TRUE(telemetry.alerts.add_rule("engine_queue_depth>1e9"));
  ServiceConfig config;
  config.threads = 2;
  config.telemetry = &telemetry;
  SolveService engine(config);
  const SolveRequest request{hom_instance(), "heur-p", {}};
  ASSERT_EQ(engine.submit(request).get().status, ReplyStatus::kSolved);

  std::istringstream script(
      "profile\nprofile solver_run\nalerts\nstats --json\n");
  std::ostringstream out;
  EXPECT_EQ(run_serve(script, out, engine).protocol_errors, 0u);
  const std::string text = out.str();
  EXPECT_NE(text.find("# profile {\"enabled\":true"), std::string::npos);
  EXPECT_NE(text.find("\"name\":\"solver_run\""), std::string::npos);
  EXPECT_NE(text.find("\"name\":\"engine_queue\""), std::string::npos);
  EXPECT_NE(text.find("# alerts {\"firing\":0"), std::string::npos);
  EXPECT_NE(text.find("engine_queue_depth>1e9"), std::string::npos);
  EXPECT_NE(text.find("\"profile\":{\"enabled\":true"), std::string::npos);
  EXPECT_NE(text.find("\"alerts\":{\"firing\":0"), std::string::npos);

  // The filtered view narrows to the named component only.
  const std::size_t filtered_pos = text.find("# profile ", 11);
  ASSERT_NE(filtered_pos, std::string::npos);
  const std::string filtered =
      text.substr(filtered_pos, text.find('\n', filtered_pos) - filtered_pos);
  EXPECT_NE(filtered.find("solver_run"), std::string::npos);
  EXPECT_EQ(filtered.find("cache_lookup"), std::string::npos);

  // The submit path's allocation accounting surfaced per request.
  EXPECT_GT(telemetry.metrics.gauge("engine_allocs_per_request").value(),
            0.0);
}

TEST(ProtocolTelemetry, ProfileAndAlertsErrorWhenTelemetryOff) {
  ServiceConfig config;
  config.threads = 1;
  SolveService engine(config);
  std::istringstream script("profile\nalerts\n");
  std::ostringstream out;
  EXPECT_EQ(run_serve(script, out, engine).protocol_errors, 2u);
  EXPECT_NE(out.str().find("profile: telemetry disabled"),
            std::string::npos);
  EXPECT_NE(out.str().find("alerts: telemetry disabled"), std::string::npos);
}

}  // namespace
}  // namespace prts::service
