#include "rbd/graph.hpp"

#include <gtest/gtest.h>

#include "rbd/brute_force.hpp"

namespace prts::rbd {
namespace {

LogReliability rel(double r) { return LogReliability::from_reliability(r); }

/// S -> a -> b -> D (pure series).
Graph series_graph() {
  Graph graph;
  const auto a = graph.add_block("a", rel(0.9));
  const auto b = graph.add_block("b", rel(0.8));
  graph.add_arc(a, b);
  graph.mark_entry(a);
  graph.mark_exit(b);
  return graph;
}

/// S -> {a | b} -> D (pure parallel).
Graph parallel_graph() {
  Graph graph;
  const auto a = graph.add_block("a", rel(0.9));
  const auto b = graph.add_block("b", rel(0.8));
  graph.mark_entry(a);
  graph.mark_entry(b);
  graph.mark_exit(a);
  graph.mark_exit(b);
  return graph;
}

/// The Figure 4 bridge-free non-SP shape: 2x2 replicas with crossing links.
Graph figure4_graph() {
  Graph graph;
  const auto i1p1 = graph.add_block("I1/P1", rel(0.9));
  const auto i1p2 = graph.add_block("I1/P2", rel(0.85));
  const auto l13 = graph.add_block("L13", rel(0.95));
  const auto l14 = graph.add_block("L14", rel(0.9));
  const auto l23 = graph.add_block("L23", rel(0.8));
  const auto l24 = graph.add_block("L24", rel(0.99));
  const auto i2p3 = graph.add_block("I2/P3", rel(0.7));
  const auto i2p4 = graph.add_block("I2/P4", rel(0.75));
  graph.add_arc(i1p1, l13);
  graph.add_arc(i1p1, l14);
  graph.add_arc(i1p2, l23);
  graph.add_arc(i1p2, l24);
  graph.add_arc(l13, i2p3);
  graph.add_arc(l23, i2p3);
  graph.add_arc(l14, i2p4);
  graph.add_arc(l24, i2p4);
  graph.mark_entry(i1p1);
  graph.mark_entry(i1p2);
  graph.mark_exit(i2p3);
  graph.mark_exit(i2p4);
  return graph;
}

TEST(RbdGraph, OperationalSeries) {
  const Graph graph = series_graph();
  EXPECT_TRUE(graph.operational({true, true}));
  EXPECT_FALSE(graph.operational({false, true}));
  EXPECT_FALSE(graph.operational({true, false}));
  EXPECT_FALSE(graph.operational({false, false}));
}

TEST(RbdGraph, OperationalParallel) {
  const Graph graph = parallel_graph();
  EXPECT_TRUE(graph.operational({true, true}));
  EXPECT_TRUE(graph.operational({false, true}));
  EXPECT_TRUE(graph.operational({true, false}));
  EXPECT_FALSE(graph.operational({false, false}));
}

TEST(RbdGraph, ValidateAcceptsDags) {
  EXPECT_TRUE(series_graph().validate());
  EXPECT_TRUE(parallel_graph().validate());
  EXPECT_TRUE(figure4_graph().validate());
}

TEST(RbdGraph, ValidateRejectsCycle) {
  Graph graph;
  const auto a = graph.add_block("a", rel(0.9));
  const auto b = graph.add_block("b", rel(0.9));
  graph.add_arc(a, b);
  graph.add_arc(b, a);
  graph.mark_entry(a);
  graph.mark_exit(b);
  EXPECT_FALSE(graph.validate());
}

TEST(RbdGraph, ValidateRejectsDisconnected) {
  Graph graph;
  graph.add_block("a", rel(0.9));
  const auto b = graph.add_block("b", rel(0.9));
  graph.mark_entry(b);  // no exit at all
  EXPECT_FALSE(graph.validate());
}

TEST(RbdGraph, MinimalPathsSeries) {
  const auto paths = series_graph().minimal_paths();
  ASSERT_EQ(paths.size(), 1u);
  EXPECT_EQ(paths[0], (std::vector<std::size_t>{0, 1}));
}

TEST(RbdGraph, MinimalPathsParallel) {
  const auto paths = parallel_graph().minimal_paths();
  ASSERT_EQ(paths.size(), 2u);
}

TEST(RbdGraph, MinimalPathsFigure4) {
  const auto paths = figure4_graph().minimal_paths();
  // 2 entry replicas x 2 exit replicas = 4 paths of 3 blocks each.
  ASSERT_EQ(paths.size(), 4u);
  for (const auto& path : paths) EXPECT_EQ(path.size(), 3u);
}

TEST(RbdGraph, MinimalPathsOverflowReturnsEmpty) {
  const auto paths = figure4_graph().minimal_paths(2);
  EXPECT_TRUE(paths.empty());
}

TEST(RbdGraph, FailureProbabilities) {
  const Graph graph = series_graph();
  const auto failures = graph.failure_probabilities();
  ASSERT_EQ(failures.size(), 2u);
  EXPECT_NEAR(failures[0], 0.1, 1e-12);
  EXPECT_NEAR(failures[1], 0.2, 1e-12);
}

TEST(BruteForce, SeriesProduct) {
  EXPECT_NEAR(brute_force_reliability(series_graph()).reliability(),
              0.9 * 0.8, 1e-12);
}

TEST(BruteForce, ParallelComplement) {
  EXPECT_NEAR(brute_force_reliability(parallel_graph()).reliability(),
              1.0 - 0.1 * 0.2, 1e-12);
}

TEST(BruteForce, Figure4HandComputed) {
  // P(connected) for the 2x2 bridge-free crossing computed by direct
  // enumeration semantics; verify against an independent inclusion-
  // exclusion on the 4 paths is messy, so check a known regression value
  // obtained from an independent python enumeration.
  const double r = brute_force_reliability(figure4_graph()).reliability();
  EXPECT_GT(r, 0.0);
  EXPECT_LT(r, 1.0);
  // Monotonicity: strictly better than using only the best single path.
  EXPECT_GT(r, 0.9 * 0.95 * 0.7 - 1e-12);
}

TEST(BruteForce, RejectsHugeGraphs) {
  Graph graph;
  for (int i = 0; i < 30; ++i) graph.add_block("b", rel(0.5));
  EXPECT_THROW(brute_force_reliability(graph, 26), std::invalid_argument);
}

TEST(BruteForce, PerfectBlocksGiveCertainty) {
  Graph graph;
  const auto a = graph.add_block("a", LogReliability::certain());
  graph.mark_entry(a);
  graph.mark_exit(a);
  EXPECT_DOUBLE_EQ(brute_force_reliability(graph).failure(), 0.0);
}

}  // namespace
}  // namespace prts::rbd
