#include "rbd/mincut.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "common/rng.hpp"
#include "rbd/brute_force.hpp"
#include "rbd/builder.hpp"
#include "test_util.hpp"

namespace prts::rbd {
namespace {

LogReliability rel(double r) { return LogReliability::from_reliability(r); }

Graph series_graph() {
  Graph graph;
  const auto a = graph.add_block("a", rel(0.9));
  const auto b = graph.add_block("b", rel(0.8));
  graph.add_arc(a, b);
  graph.mark_entry(a);
  graph.mark_exit(b);
  return graph;
}

Graph parallel_graph() {
  Graph graph;
  const auto a = graph.add_block("a", rel(0.9));
  const auto b = graph.add_block("b", rel(0.8));
  graph.mark_entry(a);
  graph.mark_entry(b);
  graph.mark_exit(a);
  graph.mark_exit(b);
  return graph;
}

TEST(MinimalCuts, SeriesHasSingletonCuts) {
  const auto cuts = minimal_cut_sets(series_graph());
  ASSERT_EQ(cuts.size(), 2u);
  EXPECT_EQ(cuts[0], (std::vector<std::size_t>{0}));
  EXPECT_EQ(cuts[1], (std::vector<std::size_t>{1}));
}

TEST(MinimalCuts, ParallelHasOneFullCut) {
  const auto cuts = minimal_cut_sets(parallel_graph());
  ASSERT_EQ(cuts.size(), 1u);
  EXPECT_EQ(cuts[0], (std::vector<std::size_t>{0, 1}));
}

TEST(MinimalCuts, EveryCutDisconnects) {
  Rng rng(3);
  const TaskChain chain = testutil::small_chain(rng, 4);
  const Platform platform = testutil::small_hom_platform(5, 2);
  const Mapping mapping = testutil::random_mapping(rng, chain, platform);
  const Graph graph = build_no_routing_graph(chain, platform, mapping);
  for (const auto& cut : minimal_cut_sets(graph)) {
    std::vector<bool> working(graph.block_count(), true);
    for (std::size_t block : cut) working[block] = false;
    EXPECT_FALSE(graph.operational(working));
    // Minimality: restoring any single block reconnects.
    for (std::size_t block : cut) {
      working[block] = true;
      EXPECT_TRUE(graph.operational(working));
      working[block] = false;
    }
  }
}

TEST(MinCutApprox, ExactOnSeries) {
  // With singleton cuts the approximation is exact.
  EXPECT_NEAR(mincut_reliability_approximation(series_graph()).reliability(),
              0.72, 1e-12);
}

TEST(MinCutApprox, ExactOnParallel) {
  EXPECT_NEAR(
      mincut_reliability_approximation(parallel_graph()).reliability(),
      1.0 - 0.02, 1e-12);
}

class MinCutLowerBound : public ::testing::TestWithParam<int> {};

TEST_P(MinCutLowerBound, ApproximationNeverExceedsExact) {
  // Esary-Proschan: the min-cut serial-parallel RBD is a lower bound on
  // the true reliability of a coherent system with independent blocks.
  Rng rng(static_cast<std::uint64_t>(GetParam()) + 77);
  const TaskChain chain = testutil::small_chain(rng, 5);
  const Platform platform = testutil::small_hom_platform(6, 2, 0.05, 0.08);
  const Mapping mapping = testutil::random_mapping(rng, chain, platform);
  const Graph graph = build_no_routing_graph(chain, platform, mapping);
  if (graph.block_count() > 24) GTEST_SKIP() << "oracle too slow";
  const double exact = brute_force_reliability(graph).reliability();
  const double approx =
      mincut_reliability_approximation(graph).reliability();
  EXPECT_LE(approx, exact + 1e-12);

  // Tightness: the bound converges to the exact value as failure
  // probabilities shrink (first-order cut terms dominate). Re-check the
  // same structure with rates scaled down 100x.
  const Platform reliable_platform =
      testutil::small_hom_platform(6, 2, 0.0005, 0.0008);
  const Graph reliable_graph =
      build_no_routing_graph(chain, reliable_platform, mapping);
  const double exact_f =
      brute_force_reliability(reliable_graph).failure();
  const double approx_f =
      mincut_reliability_approximation(reliable_graph).failure();
  EXPECT_GE(approx_f, exact_f - 1e-12);
  EXPECT_LT(approx_f, exact_f * 1.05 + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, MinCutLowerBound, ::testing::Range(0, 20));

}  // namespace
}  // namespace prts::rbd
