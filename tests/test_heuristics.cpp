#include "core/heuristics.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <limits>

#include "test_util.hpp"

namespace prts {
namespace {

TEST(HeurL, SingleIntervalIsWholeChain) {
  const TaskChain chain({{1, 3}, {1, 1}, {1, 2}, {1, 0}});
  const auto part = heur_l_partition(chain, 1);
  ASSERT_EQ(part.interval_count(), 1u);
}

TEST(HeurL, CutsAtSmallestCommunications) {
  // Output sizes 3,1,2 -> for 2 intervals cut after task 1 (cost 1);
  // for 3 intervals cut after tasks 1 and 2 (costs 1 and 2).
  const TaskChain chain({{1, 3}, {1, 1}, {1, 2}, {1, 0}});
  const auto two = heur_l_partition(chain, 2);
  ASSERT_EQ(two.interval_count(), 2u);
  EXPECT_EQ(two.interval(0).last, 1u);
  const auto three = heur_l_partition(chain, 3);
  ASSERT_EQ(three.interval_count(), 3u);
  EXPECT_EQ(three.interval(0).last, 1u);
  EXPECT_EQ(three.interval(1).last, 2u);
}

TEST(HeurL, FullSplitIsSingletons) {
  const TaskChain chain({{1, 3}, {1, 1}, {1, 2}, {1, 0}});
  const auto part = heur_l_partition(chain, 4);
  ASSERT_EQ(part.interval_count(), 4u);
  for (std::size_t j = 0; j < 4; ++j) EXPECT_EQ(part.interval(j).size(), 1u);
}

TEST(HeurL, MinimizesCutCostAmongAllPartitions) {
  Rng rng(11);
  for (int trial = 0; trial < 20; ++trial) {
    const TaskChain chain = testutil::small_chain(rng, 7);
    const auto i = static_cast<std::size_t>(rng.uniform_int(2, 6));
    const auto part = heur_l_partition(chain, i);
    double heur_cost = 0.0;
    for (std::size_t j = 0; j + 1 < part.interval_count(); ++j) {
      heur_cost += part.out_size(chain, j);
    }
    // Oracle: the i-1 smallest output sizes among tasks 0..n-2.
    std::vector<double> outs;
    for (std::size_t t = 0; t + 1 < chain.size(); ++t) {
      outs.push_back(chain.out_size(t));
    }
    std::sort(outs.begin(), outs.end());
    double oracle = 0.0;
    for (std::size_t c = 0; c + 1 < i; ++c) oracle += outs[c];
    EXPECT_NEAR(heur_cost, oracle, 1e-12);
  }
}

TEST(HeurL, RejectsBadIntervalCount) {
  const TaskChain chain({{1, 0}});
  EXPECT_THROW(heur_l_partition(chain, 0), std::invalid_argument);
  EXPECT_THROW(heur_l_partition(chain, 2), std::invalid_argument);
}

TEST(HeurP, SingleInterval) {
  Rng rng(12);
  const TaskChain chain = testutil::small_chain(rng, 5);
  const auto part = heur_p_partition(chain, 1);
  EXPECT_EQ(part.interval_count(), 1u);
}

TEST(HeurP, BalancesLoads) {
  // Works 4,4,4,4 with tiny comms: 2 intervals must split 2+2.
  const TaskChain chain({{4, 1}, {4, 1}, {4, 1}, {4, 0}});
  const auto part = heur_p_partition(chain, 2);
  ASSERT_EQ(part.interval_count(), 2u);
  EXPECT_EQ(part.interval(0).last, 1u);
}

TEST(HeurP, AchievesOptimalPeriodAmongPartitions) {
  Rng rng(13);
  for (int trial = 0; trial < 20; ++trial) {
    const TaskChain chain = testutil::small_chain(rng, 7);
    const auto i = static_cast<std::size_t>(rng.uniform_int(1, 7));
    const auto part = heur_p_partition(chain, i);
    ASSERT_EQ(part.interval_count(), i);
    auto period_of = [&](const IntervalPartition& p) {
      double period = 0.0;
      for (std::size_t j = 0; j < p.interval_count(); ++j) {
        period = std::max({period, p.work(chain, j), p.out_size(chain, j)});
      }
      return period;
    };
    const double heur_period = period_of(part);
    // Oracle: enumerate all partitions into exactly i intervals.
    double best = std::numeric_limits<double>::infinity();
    std::vector<std::size_t> lasts;
    auto recurse = [&](auto&& self, std::size_t first) -> void {
      if (lasts.size() + 1 == i) {
        lasts.push_back(chain.size() - 1);
        if (lasts.size() == 1 || lasts[lasts.size() - 2] < chain.size() - 1) {
          best = std::min(
              best, period_of(IntervalPartition::from_boundaries(
                        lasts, chain.size())));
        }
        lasts.pop_back();
        return;
      }
      for (std::size_t last = first; last + 1 < chain.size(); ++last) {
        lasts.push_back(last);
        self(self, last + 1);
        lasts.pop_back();
      }
    };
    recurse(recurse, 0);
    EXPECT_NEAR(heur_period, best, 1e-12) << "i=" << i;
  }
}

TEST(HeurP, ScalesWithSpeedAndBandwidth) {
  // With a fast processor the computation term shrinks and the cut should
  // move to balance communications instead.
  const TaskChain chain({{100, 10}, {1, 1}, {1, 0}});
  const auto slow = heur_p_partition(chain, 2, 1.0, 1.0);
  // Slow processors: split the heavy first task away.
  EXPECT_EQ(slow.interval(0).last, 0u);
  const auto fast = heur_p_partition(chain, 2, 1000.0, 1.0);
  // Fast processors: computation is negligible, avoid the cost-10 cut.
  EXPECT_EQ(fast.interval(0).last, 1u);
}

TEST(Candidates, OnePerFeasibleIntervalCount) {
  Rng rng(14);
  const TaskChain chain = testutil::small_chain(rng, 6);
  const Platform platform = testutil::small_hom_platform(4, 2);
  const auto candidates =
      heuristic_candidates(chain, platform, HeuristicKind::kHeurP);
  EXPECT_EQ(candidates.size(), 4u);  // i = 1..min(6,4)
  for (const auto& candidate : candidates) {
    EXPECT_FALSE(candidate.mapping.validate(platform).has_value());
  }
}

TEST(RunHeuristic, RespectsBounds) {
  Rng rng(15);
  for (int trial = 0; trial < 20; ++trial) {
    const TaskChain chain = testutil::small_chain(rng, 6);
    const Platform platform = testutil::small_het_platform(rng, 5, 2);
    HeuristicOptions options;
    options.period_bound = rng.uniform_real(5.0, 40.0);
    options.latency_bound = rng.uniform_real(20.0, 120.0);
    for (HeuristicKind kind :
         {HeuristicKind::kHeurL, HeuristicKind::kHeurP}) {
      const auto solution = run_heuristic(chain, platform, kind, options);
      if (!solution) continue;
      EXPECT_LE(solution->metrics.worst_period,
                options.period_bound + 1e-9);
      EXPECT_LE(solution->metrics.worst_latency,
                options.latency_bound + 1e-9);
    }
  }
}

TEST(RunHeuristic, UnboundedAlwaysSolvesWhenPlatformLargeEnough) {
  Rng rng(16);
  const TaskChain chain = testutil::small_chain(rng, 5);
  const Platform platform = testutil::small_hom_platform(5, 2);
  for (HeuristicKind kind : {HeuristicKind::kHeurL, HeuristicKind::kHeurP}) {
    EXPECT_TRUE(run_heuristic(chain, platform, kind).has_value());
  }
}

TEST(RunHeuristic, PicksMostReliableCandidate) {
  Rng rng(17);
  const TaskChain chain = testutil::small_chain(rng, 6);
  const Platform platform = testutil::small_hom_platform(6, 2);
  const auto solution =
      run_heuristic(chain, platform, HeuristicKind::kHeurP);
  const auto candidates =
      heuristic_candidates(chain, platform, HeuristicKind::kHeurP);
  ASSERT_TRUE(solution.has_value());
  for (const auto& candidate : candidates) {
    EXPECT_GE(solution->metrics.reliability.log(),
              candidate.metrics.reliability.log() - 1e-12);
  }
}

TEST(RunHeuristic, ExpectedMetricsFlagUsesExpectedValues) {
  Rng rng(18);
  const TaskChain chain = testutil::small_chain(rng, 6);
  const Platform platform = testutil::small_het_platform(rng, 6, 3);
  // Find a bound separating expected from worst-case latency.
  const auto unbounded =
      run_heuristic(chain, platform, HeuristicKind::kHeurP);
  ASSERT_TRUE(unbounded.has_value());
  const double mid = 0.5 * (unbounded->metrics.expected_latency +
                            unbounded->metrics.worst_latency);
  HeuristicOptions expected_options;
  expected_options.latency_bound = mid;
  expected_options.use_expected_metrics = true;
  const auto via_expected = run_heuristic(
      chain, platform, HeuristicKind::kHeurP, expected_options);
  // With expected metrics the same candidate may pass; with worst-case it
  // must not (if expected < mid < worst strictly).
  if (unbounded->metrics.expected_latency < mid &&
      mid < unbounded->metrics.worst_latency) {
    ASSERT_TRUE(via_expected.has_value());
    EXPECT_LE(via_expected->metrics.expected_latency, mid + 1e-9);
  }
}

}  // namespace
}  // namespace prts
