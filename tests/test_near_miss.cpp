// Incremental re-solve: the bounds-monotone near-miss index and
// warm-started solver sessions. The load-bearing guarantees:
//   * warm-started exact/ILP/heuristic/local-search answers are
//     bit-identical to cold solves across randomized bound ladders
//     (the WarmStart contract), even against a lying floor;
//   * a dominating near-miss hit is byte-identical to the originally
//     cached entry and costs zero solver invocations;
//   * a whole bound-ladder sweep produces byte-identical output with
//     near-miss reuse on and off, with several-fold fewer invocations;
//   * the index survives TSV and PRTS1 persistence and rides the wire.
#include <chrono>
#include <cmath>
#include <sstream>
#include <vector>

#include <gtest/gtest.h>

#include "model/generator.hpp"
#include "service/cache.hpp"
#include "service/engine.hpp"
#include "service/wire.hpp"
#include "solver/adapters.hpp"
#include "solver/registry.hpp"

namespace prts::service {
namespace {

Instance hom_instance() {
  std::vector<Task> tasks{{10.0, 2.0}, {4.0, 1.0}, {20.0, 1.0}, {6.0, 0.0}};
  return Instance{TaskChain(std::move(tasks)),
                  Platform::homogeneous(5, 1.0, 1e-8, 1.0, 1e-5, 2)};
}

Instance random_hom_instance(std::uint64_t seed, std::size_t tasks,
                             std::size_t procs) {
  Rng rng(seed);
  ChainConfig config;
  config.task_count = tasks;
  return Instance{random_chain(rng, config),
                  Platform::homogeneous(procs, 1.0, 1e-6, 1.0, 1e-5, 3)};
}

ServiceConfig near_miss_config(bool enabled) {
  ServiceConfig config;
  config.threads = 2;
  config.near_miss = enabled;
  return config;
}

/// Ascending bound ladder bracketing the interesting region: from below
/// the tightest feasible period up past the unconstrained optimum.
std::vector<double> period_ladder(const Instance& instance,
                                  std::size_t steps) {
  const auto engine = solver::SolverRegistry::builtin().find("exact");
  const auto free_opt = engine->solve(instance, {});
  const double top = free_opt->metrics.worst_period * 2.0;
  std::vector<double> ladder;
  for (std::size_t i = 0; i < steps; ++i) {
    ladder.push_back(top * (0.15 + 0.85 * static_cast<double>(i) /
                                       static_cast<double>(steps - 1)));
  }
  return ladder;
}

// ---------------------------------------------------- WarmStart contract

/// Warm vs cold over a randomized ascending ladder: each step's warm
/// start is the previous feasible answer (feasible for every looser
/// step by bounds monotonicity). Any divergence is a contract breach.
void expect_warm_equals_cold(const std::string& solver_name) {
  const auto engine = solver::SolverRegistry::builtin().find(solver_name);
  ASSERT_TRUE(engine) << solver_name;
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    const Instance instance = random_hom_instance(seed, 8, 5);
    std::optional<solver::Solution> incumbent;
    for (const double period : period_ladder(instance, 10)) {
      solver::Bounds bounds;
      bounds.period_bound = period;
      const auto cold = engine->solve(instance, bounds);
      solver::WarmStart warm;
      if (incumbent) {
        warm.incumbent = incumbent;
        warm.reliability_floor_log =
            incumbent->metrics.reliability.log();
      }
      const auto warmed = engine->solve(instance, bounds, warm);
      ASSERT_EQ(cold.has_value(), warmed.has_value())
          << solver_name << " seed " << seed << " period " << period;
      if (cold) {
        EXPECT_EQ(cold->mapping, warmed->mapping)
            << solver_name << " seed " << seed << " period " << period;
        EXPECT_EQ(cold->metrics, warmed->metrics)
            << solver_name << " seed " << seed << " period " << period;
        incumbent = cold;
      }
    }
  }
}

TEST(WarmStartContract, ExactWarmVsColdBitIdentical) {
  expect_warm_equals_cold("exact");
}

TEST(WarmStartContract, IlpWarmVsColdBitIdentical) {
  expect_warm_equals_cold("ilp");
}

TEST(WarmStartContract, HeuristicsWarmVsColdBitIdentical) {
  expect_warm_equals_cold("heur-l");
  expect_warm_equals_cold("heur-p");
}

TEST(WarmStartContract, LocalSearchWarmVsColdBitIdentical) {
  expect_warm_equals_cold("heur-l+ls");
  expect_warm_equals_cold("heur-p+ls");
}

TEST(WarmStartContract, PreparedSessionsHonorTheContractToo) {
  const Instance instance = random_hom_instance(7, 8, 5);
  for (const char* name : {"exact", "heur-p"}) {
    const auto engine = solver::SolverRegistry::builtin().find(name);
    const auto session = engine->prepare(instance);
    std::optional<solver::Solution> incumbent;
    for (const double period : period_ladder(instance, 8)) {
      solver::Bounds bounds;
      bounds.period_bound = period;
      const auto cold = session->solve(bounds);
      solver::WarmStart warm;
      if (incumbent) {
        warm.incumbent = incumbent;
        warm.reliability_floor_log = incumbent->metrics.reliability.log();
      }
      const auto warmed = session->solve(bounds, warm);
      ASSERT_EQ(cold.has_value(), warmed.has_value()) << name;
      if (cold) {
        EXPECT_EQ(cold->mapping, warmed->mapping) << name;
        EXPECT_EQ(cold->metrics, warmed->metrics) << name;
        incumbent = cold;
      }
    }
  }
}

TEST(WarmStartContract, LyingFloorFallsBackInsteadOfChangingTheAnswer) {
  // A floor above the true optimum would prune everything; the
  // adapters must detect the empty cut result and re-run unpruned.
  const Instance instance = hom_instance();
  for (const char* name : {"exact", "ilp", "heur-p"}) {
    const auto engine = solver::SolverRegistry::builtin().find(name);
    const auto cold = engine->solve(instance, {});
    ASSERT_TRUE(cold) << name;
    solver::WarmStart lying;
    lying.incumbent = cold;
    lying.reliability_floor_log = cold->metrics.reliability.log() + 1.0;
    const auto warmed = engine->solve(instance, {}, lying);
    ASSERT_TRUE(warmed) << name;
    EXPECT_EQ(cold->mapping, warmed->mapping) << name;
    EXPECT_EQ(cold->metrics, warmed->metrics) << name;
  }
}

// ------------------------------------------------- service near-miss path

TEST(NearMissService, DominatingHitIsByteIdenticalToCachedEntry) {
  SolveService service(near_miss_config(true));
  const Instance instance = hom_instance();

  SolveRequest loose{instance, "exact", {}};
  loose.bounds.period_bound = 100.0;
  const SolveReply first = service.submit(loose).get();
  ASSERT_EQ(first.status, ReplyStatus::kSolved);
  EXPECT_FALSE(first.cache_hit);

  // Tighter period that the cached solution still satisfies: served
  // from the bounds index, bit-identical, no second solve.
  SolveRequest tight = loose;
  tight.bounds.period_bound = first.solution->metrics.worst_period + 1.0;
  ASSERT_LT(tight.bounds.period_bound, loose.bounds.period_bound);
  const SolveReply near = service.submit(tight).get();
  ASSERT_EQ(near.status, ReplyStatus::kSolved);
  EXPECT_TRUE(near.cache_hit);
  EXPECT_TRUE(near.near_miss);
  EXPECT_EQ(near.solution->mapping, first.solution->mapping);
  EXPECT_EQ(near.solution->metrics, first.solution->metrics);

  const EngineStats stats = service.stats();
  EXPECT_EQ(stats.dominating_hits, 1u);
  EXPECT_EQ(stats.solver_invocations, 1u);

  // The dominating answer was promoted under its own key: an identical
  // repeat is now an *exact* hit.
  const SolveReply repeat = service.submit(tight).get();
  EXPECT_TRUE(repeat.cache_hit);
  EXPECT_FALSE(repeat.near_miss);
  EXPECT_EQ(service.stats().cache_hits, 1u);
}

TEST(NearMissService, LooserInfeasibilityAnswersTighterRequests) {
  SolveService service(near_miss_config(true));
  const Instance instance = hom_instance();

  SolveRequest infeasible{instance, "exact", {}};
  infeasible.bounds.period_bound = 1e-3;  // below any interval's work
  const SolveReply first = service.submit(infeasible).get();
  ASSERT_EQ(first.status, ReplyStatus::kInfeasible);

  SolveRequest tighter = infeasible;
  tighter.bounds.period_bound = 1e-4;
  const SolveReply second = service.submit(tighter).get();
  EXPECT_EQ(second.status, ReplyStatus::kInfeasible);
  EXPECT_TRUE(second.near_miss);
  EXPECT_EQ(service.stats().solver_invocations, 1u);
}

TEST(NearMissService, NonMonotoneSolversNeverGetDominatingHits) {
  // dp-period reconstructs under the period bound: correct per query
  // but not argmax-over-fixed-candidates, so near-miss must only ever
  // warm-start it, never answer for it.
  SolveService service(near_miss_config(true));
  const Instance instance = hom_instance();
  SolveRequest loose{instance, "dp-period", {}};
  loose.bounds.period_bound = 100.0;
  const SolveReply first = service.submit(loose).get();
  ASSERT_EQ(first.status, ReplyStatus::kSolved);

  SolveRequest tight = loose;
  tight.bounds.period_bound = first.solution->metrics.worst_period + 1.0;
  const SolveReply second = service.submit(tight).get();
  ASSERT_EQ(second.status, ReplyStatus::kSolved);
  EXPECT_FALSE(second.near_miss);
  EXPECT_EQ(service.stats().dominating_hits, 0u);
  EXPECT_EQ(service.stats().solver_invocations, 2u);
}

TEST(NearMissService, LadderOutputByteIdenticalOnVsOffWithFewerSolves) {
  const Instance instance = random_hom_instance(21, 10, 6);
  const std::vector<double> ladder = [&] {
    std::vector<double> descending = period_ladder(instance, 20);
    return std::vector<double>(descending.rbegin(), descending.rend());
  }();

  const auto sweep = [&](bool near_miss_on, EngineStats& stats) {
    SolveService service(near_miss_config(near_miss_on));
    std::vector<SolveReply> replies;
    for (const double period : ladder) {
      SolveRequest request{instance, "exact", {}};
      request.bounds.period_bound = period;
      replies.push_back(service.submit(request).get());
    }
    stats = service.stats();
    return replies;
  };

  EngineStats off_stats;
  EngineStats on_stats;
  const auto off = sweep(false, off_stats);
  const auto on = sweep(true, on_stats);
  ASSERT_EQ(off.size(), on.size());
  for (std::size_t i = 0; i < off.size(); ++i) {
    ASSERT_EQ(off[i].status, on[i].status) << "step " << i;
    ASSERT_EQ(off[i].solution.has_value(), on[i].solution.has_value());
    if (off[i].solution) {
      EXPECT_EQ(off[i].solution->mapping, on[i].solution->mapping);
      EXPECT_EQ(off[i].solution->metrics, on[i].solution->metrics);
    }
  }
  // A paced descending sweep revisits the same optimum for most steps:
  // near-miss reuse turns those into dominating hits. One invocation
  // per *distinct optimum* remains (7 on this seed's ladder, vs 20
  // cold); the exact multiple is workload-shaped, so the test only
  // pins "at least half the solves disappeared" — the 20-step
  // acceptance ratio lives in bench/incremental_resolve.cpp.
  EXPECT_EQ(off_stats.solver_invocations, ladder.size());
  EXPECT_GT(on_stats.dominating_hits, 0u);
  EXPECT_LE(on_stats.solver_invocations * 2, off_stats.solver_invocations);
}

TEST(NearMissService, TighterAnswersWarmStartLooserRequests) {
  // Ascending ladder on the ILP: each answer is a feasible incumbent
  // for the next, looser request — warm starts, never dominating hits
  // (the ILP is not bounds-monotone), output identical to cold.
  const Instance instance = random_hom_instance(33, 8, 5);
  const std::vector<double> ladder = period_ladder(instance, 8);

  const auto sweep = [&](bool near_miss_on, EngineStats& stats) {
    SolveService service(near_miss_config(near_miss_on));
    std::vector<SolveReply> replies;
    for (const double period : ladder) {
      SolveRequest request{instance, "ilp", {}};
      request.bounds.period_bound = period;
      replies.push_back(service.submit(request).get());
    }
    stats = service.stats();
    return replies;
  };

  EngineStats off_stats;
  EngineStats on_stats;
  const auto off = sweep(false, off_stats);
  const auto on = sweep(true, on_stats);
  EXPECT_GT(on_stats.warm_started, 0u);
  EXPECT_EQ(on_stats.dominating_hits, 0u);
  for (std::size_t i = 0; i < off.size(); ++i) {
    ASSERT_EQ(off[i].status, on[i].status) << "step " << i;
    if (off[i].solution) {
      EXPECT_EQ(off[i].solution->mapping, on[i].solution->mapping);
      EXPECT_EQ(off[i].solution->metrics, on[i].solution->metrics);
    }
  }
}

TEST(NearMissService, BurstSubmittedLadderCollapsesInsideOneBatch) {
  // All steps submitted before any solve runs: the solve-time re-probe
  // must still collapse the batch to a handful of real solves.
  const Instance instance = random_hom_instance(5, 10, 6);
  std::vector<double> ladder = period_ladder(instance, 16);
  std::vector<double> descending(ladder.rbegin(), ladder.rend());

  SolveService service(near_miss_config(true));
  std::vector<std::future<SolveReply>> futures;
  for (const double period : descending) {
    SolveRequest request{instance, "exact", {}};
    request.bounds.period_bound = period;
    futures.push_back(service.submit(request));
  }
  for (auto& future : futures) {
    const SolveReply reply = future.get();
    EXPECT_NE(reply.status, ReplyStatus::kError);
  }
  const EngineStats stats = service.stats();
  EXPECT_LT(stats.solver_invocations, descending.size());
}

TEST(NearMissService, ExpiredDeadlineDowngradePrefersTheWarmIncumbent) {
  // deadline 0 expires immediately -> downgrade path; the request
  // carries an incumbent better than anything heur-p can produce, so
  // the degraded answer is the incumbent (canonical labels).
  const Instance instance = hom_instance();
  const auto exact = solver::SolverRegistry::builtin().find("exact");
  const auto optimum = exact->solve(instance, {});
  ASSERT_TRUE(optimum);

  SolveService service(near_miss_config(true));
  SolveRequest request{instance, "exact", {}, 0.0,
                       DeadlinePolicy::kDowngrade};
  // An incumbent strictly better than anything the fallback can
  // produce (tri-criteria prefers higher reliability), so the choice
  // is deterministic: the degraded answer must be the incumbent.
  solver::Solution incumbent = *optimum;
  incumbent.metrics.reliability = LogReliability::from_log(
      optimum->metrics.reliability.log() * 0.5);
  solver::WarmStart warm;
  warm.incumbent = incumbent;
  warm.reliability_floor_log = incumbent.metrics.reliability.log();
  request.warm_start = warm;
  const SolveReply reply = service.submit(request).get();
  ASSERT_EQ(reply.status, ReplyStatus::kSolved);
  EXPECT_TRUE(reply.downgraded);
  EXPECT_EQ(reply.solution->metrics, incumbent.metrics);
  EXPECT_EQ(reply.solver_used, "exact");
}

TEST(NearMissService, DisabledNearMissNeverConsultsTheIndex) {
  SolveService service(near_miss_config(false));
  const Instance instance = hom_instance();
  SolveRequest loose{instance, "exact", {}};
  loose.bounds.period_bound = 100.0;
  const SolveReply first = service.submit(loose).get();
  SolveRequest tight = loose;
  tight.bounds.period_bound = first.solution->metrics.worst_period + 1.0;
  const SolveReply second = service.submit(tight).get();
  EXPECT_FALSE(second.near_miss);
  EXPECT_EQ(service.stats().dominating_hits, 0u);
  EXPECT_EQ(service.stats().solver_invocations, 2u);
}

// ------------------------------------------------------ persistence / wire

TEST(NearMissPersistence, IndexSurvivesTsvAndBinarySnapshots) {
  SolveService service(near_miss_config(true));
  const Instance instance = hom_instance();
  SolveRequest loose{instance, "exact", {}};
  loose.bounds.period_bound = 100.0;
  const SolveReply first = service.submit(loose).get();
  ASSERT_EQ(first.status, ReplyStatus::kSolved);

  std::stringstream tsv;
  service.cache().save_tsv(tsv);
  std::stringstream binary(std::ios::in | std::ios::out | std::ios::binary);
  service.cache().save_binary(binary);

  for (int format = 0; format < 2; ++format) {
    ShardedSolutionCache reloaded;
    const auto result = format == 0 ? reloaded.load_tsv(tsv)
                                    : reloaded.load_binary(binary);
    ASSERT_EQ(result.error, "");
    ASSERT_EQ(result.loaded, 1u);
    // The rebuilt index answers a tighter probe of the same instance.
    const CanonicalInstance canonical = canonicalize(instance);
    const CanonicalHash bkey = batch_key(canonical, "exact");
    solver::Bounds tighter;
    tighter.period_bound = first.solution->metrics.worst_period + 1.0;
    const auto hit = reloaded.find_dominating(bkey, tighter);
    ASSERT_TRUE(hit.has_value()) << "format " << format;
    ASSERT_TRUE(hit->solution.has_value());
    EXPECT_EQ(hit->solution->metrics, first.solution->metrics);
  }
}

TEST(NearMissPersistence, MetadataRoundTripsThroughTheEntryCodec) {
  const Instance instance = hom_instance();
  const auto exact = solver::SolverRegistry::builtin().find("exact");
  const auto solution = exact->solve(instance, {});
  CachedSolution entry{solution, 0.25, fingerprint("instance-key"),
                       solver::Bounds{12.5, 99.0}};
  const std::string line = encode_cache_entry(fingerprint("req"), entry);

  CanonicalHash key;
  CachedSolution parsed;
  std::string error;
  ASSERT_TRUE(parse_cache_entry(line, key, parsed, error)) << error;
  ASSERT_TRUE(parsed.indexable());
  EXPECT_EQ(*parsed.instance_key, fingerprint("instance-key"));
  EXPECT_EQ(parsed.bounds->period_bound, 12.5);
  EXPECT_EQ(parsed.bounds->latency_bound, 99.0);
  EXPECT_EQ(parsed.cost_seconds, 0.25);
  EXPECT_EQ(parsed.solution->metrics, solution->metrics);
}

TEST(NearMissPersistence, LegacyLinesLoadUnindexed) {
  // Pre-index feasible line (14 fields): strip the metadata by
  // encoding an entry without it.
  const Instance instance = hom_instance();
  const auto exact = solver::SolverRegistry::builtin().find("exact");
  const auto solution = exact->solve(instance, {});
  const std::string line =
      encode_cache_entry(fingerprint("req"), CachedSolution{solution, 0.5});
  CanonicalHash key;
  CachedSolution parsed;
  std::string error;
  ASSERT_TRUE(parse_cache_entry(line, key, parsed, error)) << error;
  EXPECT_FALSE(parsed.indexable());
  EXPECT_EQ(parsed.cost_seconds, 0.5);
}

TEST(NearMissWire, WarmHintRidesTheRequestPayload) {
  const Instance instance = hom_instance();
  const auto exact = solver::SolverRegistry::builtin().find("exact");
  const auto optimum = exact->solve(instance, {});
  ASSERT_TRUE(optimum);

  SolveRequest request{instance, "exact", {}};
  request.bounds.period_bound = 42.0;
  solver::WarmStart warm;
  warm.incumbent = optimum;
  warm.reliability_floor_log = optimum->metrics.reliability.log();
  request.warm_start = warm;

  std::string error;
  const auto decoded =
      decode_wire_request(encode_wire_request(request), error);
  ASSERT_TRUE(decoded.has_value()) << error;
  ASSERT_TRUE(decoded->warm_start.has_value());
  ASSERT_TRUE(decoded->warm_start->incumbent.has_value());
  EXPECT_EQ(decoded->warm_start->incumbent->mapping, optimum->mapping);
  EXPECT_EQ(decoded->warm_start->incumbent->metrics, optimum->metrics);
  EXPECT_EQ(decoded->warm_start->reliability_floor_log,
            optimum->metrics.reliability.log());

  // Hint-less requests stay hint-less.
  SolveRequest plain{instance, "exact", {}};
  const auto decoded_plain =
      decode_wire_request(encode_wire_request(plain), error);
  ASSERT_TRUE(decoded_plain.has_value()) << error;
  EXPECT_FALSE(decoded_plain->warm_start.has_value());
}

TEST(NearMissWire, FabricatedHintMetricsAreReEvaluatedNotTrusted) {
  // A peer's carried metrics are untrusted: a lying reliability floor
  // above the true optimum would prune real answers. The decoder must
  // discard the wire metrics and re-evaluate the mapping.
  const Instance instance = hom_instance();
  const auto exact = solver::SolverRegistry::builtin().find("exact");
  const auto optimum = exact->solve(instance, {});

  SolveRequest request{instance, "exact", {}};
  solver::WarmStart lying;
  lying.incumbent = *optimum;
  lying.incumbent->metrics.reliability =
      LogReliability::from_log(optimum->metrics.reliability.log() * 1e-3);
  lying.reliability_floor_log = lying.incumbent->metrics.reliability.log();
  request.warm_start = lying;

  std::string error;
  const auto decoded =
      decode_wire_request(encode_wire_request(request), error);
  ASSERT_TRUE(decoded.has_value()) << error;
  ASSERT_TRUE(decoded->warm_start.has_value());
  EXPECT_EQ(decoded->warm_start->incumbent->metrics, optimum->metrics);
  EXPECT_EQ(decoded->warm_start->reliability_floor_log,
            optimum->metrics.reliability.log());
}

TEST(NearMissWire, LegacyReplyWithoutNearAndCostLinesStillDecodes) {
  // Rolling fabric upgrades: a previous-version rank's reply carries
  // neither 'near' nor 'cost'.
  const std::string legacy =
      "prts-solve-reply v1\n"
      "status infeasible\n"
      "hit 1\n"
      "down 0\n"
      "solver dp\n"
      "key " + to_hex(fingerprint("legacy-key")) + "\n";
  std::string error;
  const auto decoded = decode_wire_reply(legacy, error);
  ASSERT_TRUE(decoded.has_value()) << error;
  EXPECT_EQ(decoded->status, ReplyStatus::kInfeasible);
  EXPECT_TRUE(decoded->cache_hit);
  EXPECT_FALSE(decoded->near_miss);
  EXPECT_EQ(decoded->cost_seconds, 0.0);
  EXPECT_EQ(decoded->key, fingerprint("legacy-key"));
}

TEST(NearMissService, BoundViolatingSuppliedHintIsDropped) {
  // A caller-supplied incumbent that does not satisfy the request's
  // bounds proves nothing — the downgrade path must not leak it.
  const Instance instance = hom_instance();
  const auto exact = solver::SolverRegistry::builtin().find("exact");
  const auto optimum = exact->solve(instance, {});

  SolveService service(near_miss_config(true));
  SolveRequest request{instance, "exact", {}, 0.0,
                       DeadlinePolicy::kDowngrade};
  request.bounds.period_bound = optimum->metrics.worst_period * 0.5;
  solver::WarmStart warm;
  warm.incumbent = *optimum;  // violates the tightened period bound
  warm.reliability_floor_log = optimum->metrics.reliability.log();
  request.warm_start = warm;
  const SolveReply reply = service.submit(request).get();
  if (reply.solution) {
    EXPECT_LE(reply.solution->metrics.worst_period,
              request.bounds.period_bound);
  }
}

TEST(NearMissWire, ReplyCarriesCostAndNearFlag) {
  SolveService service(near_miss_config(true));
  const SolveReply original =
      service.submit(SolveRequest{hom_instance(), "exact", {}}).get();
  ASSERT_EQ(original.status, ReplyStatus::kSolved);

  SolveReply flagged = original;
  flagged.near_miss = true;
  flagged.cost_seconds = 0.125;
  std::string error;
  const auto decoded =
      decode_wire_reply(encode_wire_reply(flagged), error);
  ASSERT_TRUE(decoded.has_value()) << error;
  EXPECT_TRUE(decoded->near_miss);
  EXPECT_EQ(decoded->cost_seconds, 0.125);
  EXPECT_EQ(decoded->solution->mapping, original.solution->mapping);
}

}  // namespace
}  // namespace prts::service
