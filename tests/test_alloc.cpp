#include "core/alloc.hpp"

#include <gtest/gtest.h>

#include <array>
#include <cmath>

#include "eval/evaluation.hpp"
#include "test_util.hpp"

namespace prts {
namespace {

/// Exhaustive optimum over replica-count vectors for fixed branch
/// failures: max sum log(1 - f_j^q_j), 1 <= q_j <= K, sum q_j <= p.
double exhaustive_counts_value(const std::vector<double>& failures,
                               std::size_t p, unsigned max_k) {
  double best = -1e300;
  std::vector<unsigned> counts;
  auto recurse = [&](auto&& self, std::size_t j, std::size_t used,
                     double value) -> void {
    if (j == failures.size()) {
      best = std::max(best, value);
      return;
    }
    for (unsigned q = 1; q <= max_k && used + q <= p; ++q) {
      self(self, j + 1, used + q,
           value + std::log1p(-std::pow(failures[j],
                                        static_cast<double>(q))));
    }
  };
  recurse(recurse, 0, 0, 0.0);
  return best;
}

double counts_value(const std::vector<double>& failures,
                    const std::vector<unsigned>& counts) {
  double value = 0.0;
  for (std::size_t j = 0; j < failures.size(); ++j) {
    value +=
        std::log1p(-std::pow(failures[j], static_cast<double>(counts[j])));
  }
  return value;
}

TEST(AlgoAllocCounts, MoreIntervalsThanProcessorsIsInfeasible) {
  const std::vector<double> failures{0.1, 0.2, 0.3};
  EXPECT_TRUE(algo_alloc_counts(failures, 2, 3).empty());
}

TEST(AlgoAllocCounts, EnoughForFullReplication) {
  // Theorem 4 remark: with m*K <= p every interval gets K replicas.
  const std::vector<double> failures{0.1, 0.2};
  const auto counts = algo_alloc_counts(failures, 6, 3);
  ASSERT_EQ(counts.size(), 2u);
  EXPECT_EQ(counts[0], 3u);
  EXPECT_EQ(counts[1], 3u);
}

TEST(AlgoAllocCounts, PrefersLessReliableInterval) {
  // One spare processor: it must go to the weaker interval.
  const std::vector<double> failures{0.01, 0.4};
  const auto counts = algo_alloc_counts(failures, 3, 3);
  ASSERT_EQ(counts.size(), 2u);
  EXPECT_EQ(counts[0], 1u);
  EXPECT_EQ(counts[1], 2u);
}

class AlgoAllocOptimality : public ::testing::TestWithParam<int> {};

TEST_P(AlgoAllocOptimality, GreedyMatchesExhaustive) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) + 900);
  const auto m = static_cast<std::size_t>(rng.uniform_int(1, 5));
  const auto p =
      static_cast<std::size_t>(rng.uniform_int(static_cast<std::int64_t>(m),
                                               10));
  const auto k = static_cast<unsigned>(rng.uniform_int(1, 4));
  std::vector<double> failures;
  for (std::size_t j = 0; j < m; ++j) {
    failures.push_back(rng.uniform_real(1e-6, 0.9));
  }
  const auto counts = algo_alloc_counts(failures, p, k);
  ASSERT_EQ(counts.size(), m);
  const double greedy = counts_value(failures, counts);
  const double oracle = exhaustive_counts_value(failures, p, k);
  EXPECT_NEAR(greedy, oracle, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, AlgoAllocOptimality,
                         ::testing::Range(0, 40));

TEST(AllocateProcessors, HomogeneousUsesEveryUsefulProcessor) {
  Rng rng(1);
  const TaskChain chain = testutil::small_chain(rng, 4);
  const Platform platform = testutil::small_hom_platform(8, 3);
  const auto partition = testutil::random_partition(rng, 4, 3);
  const auto mapping = allocate_processors(chain, platform, partition);
  ASSERT_TRUE(mapping.has_value());
  ASSERT_FALSE(mapping->validate(platform).has_value());
  // 8 processors, 3 intervals, K = 3: at most 9 slots, so all 8 used.
  EXPECT_EQ(mapping->processors_used(), 8u);
}

TEST(AllocateProcessors, MatchesGreedyCountsOnHomogeneous) {
  Rng rng(2);
  for (int trial = 0; trial < 15; ++trial) {
    const TaskChain chain = testutil::small_chain(rng, 5);
    const Platform platform = testutil::small_hom_platform(7, 3);
    const auto m = static_cast<std::size_t>(rng.uniform_int(1, 5));
    const auto partition = testutil::random_partition(rng, 5, m);
    const auto mapping = allocate_processors(chain, platform, partition);
    ASSERT_TRUE(mapping.has_value());

    std::vector<double> failures;
    for (std::size_t j = 0; j < m; ++j) {
      const double in = j == 0 ? 0.0 : partition.out_size(chain, j - 1);
      failures.push_back(branch_reliability(platform, 0,
                                            partition.work(chain, j), in,
                                            partition.out_size(chain, j))
                             .failure());
    }
    const auto counts =
        algo_alloc_counts(failures, platform.processor_count(),
                          platform.max_replication());
    for (std::size_t j = 0; j < m; ++j) {
      EXPECT_EQ(mapping->processors(j).size(), counts[j]) << "interval " << j;
    }
  }
}

TEST(AllocateProcessors, InfeasibleWhenTooManyIntervals) {
  Rng rng(3);
  const TaskChain chain = testutil::small_chain(rng, 5);
  const Platform platform = testutil::small_hom_platform(3, 2);
  const auto partition = testutil::random_partition(rng, 5, 5);
  EXPECT_FALSE(allocate_processors(chain, platform, partition).has_value());
}

TEST(AllocateProcessors, RespectsPeriodBound) {
  Rng rng(4);
  for (int trial = 0; trial < 15; ++trial) {
    const TaskChain chain = testutil::small_chain(rng, 5);
    const Platform platform = testutil::small_het_platform(rng, 6, 2);
    const auto partition = testutil::random_partition(
        rng, 5, static_cast<std::size_t>(rng.uniform_int(1, 4)));
    AllocOptions options;
    options.period_bound = rng.uniform_real(3.0, 30.0);
    const auto mapping =
        allocate_processors(chain, platform, partition, options);
    if (!mapping) continue;
    for (std::size_t j = 0; j < partition.interval_count(); ++j) {
      for (std::size_t u : mapping->processors(j)) {
        EXPECT_LE(partition.work(chain, j) / platform.speed(u),
                  options.period_bound + 1e-9);
      }
    }
  }
}

TEST(AllocateProcessors, TightPeriodBoundInfeasible) {
  Rng rng(5);
  const TaskChain chain = testutil::small_chain(rng, 4);
  const Platform platform = testutil::small_hom_platform(6, 2);
  AllocOptions options;
  options.period_bound = 1e-6;  // nothing fits
  EXPECT_FALSE(
      allocate_processors(chain, platform,
                          IntervalPartition::single(chain.size()), options)
          .has_value());
}

TEST(AllocateProcessors, HonorsAllocationConstraints) {
  Rng rng(6);
  const TaskChain chain = testutil::small_chain(rng, 4);
  const Platform platform = testutil::small_hom_platform(4, 2);
  const std::array<std::size_t, 2> lasts{1, 3};
  const auto partition = IntervalPartition::from_boundaries(lasts, 4);
  auto constraints = AllocationConstraints::all_allowed(4, 4);
  // Task 0 (hence interval 0) may only run on processors 2 and 3.
  constraints.forbid(0, 0);
  constraints.forbid(0, 1);
  AllocOptions options;
  options.constraints = &constraints;
  const auto mapping =
      allocate_processors(chain, platform, partition, options);
  ASSERT_TRUE(mapping.has_value());
  for (std::size_t u : mapping->processors(0)) {
    EXPECT_GE(u, 2u);
  }
}

TEST(AllocateProcessors, UnsatisfiableConstraintsInfeasible) {
  Rng rng(7);
  const TaskChain chain = testutil::small_chain(rng, 3);
  const Platform platform = testutil::small_hom_platform(3, 2);
  auto constraints = AllocationConstraints::all_allowed(3, 3);
  for (std::size_t u = 0; u < 3; ++u) constraints.forbid(1, u);
  AllocOptions options;
  options.constraints = &constraints;
  EXPECT_FALSE(
      allocate_processors(chain, platform,
                          IntervalPartition::single(chain.size()), options)
          .has_value());
}

TEST(AllocateProcessors, HeterogeneousPrefersReliablePerWorkProcessors) {
  // Two processors: one with a far better lambda/speed ratio; a single
  // interval with K = 1 must take the better one.
  const TaskChain chain({{10.0, 0.0}});
  const Platform platform({{1.0, 1e-3}, {1.0, 1e-6}}, 1.0, 0.0, 1);
  const auto mapping = allocate_processors(
      chain, platform, IntervalPartition::single(chain.size()));
  ASSERT_TRUE(mapping.has_value());
  ASSERT_EQ(mapping->processors(0).size(), 1u);
  EXPECT_EQ(mapping->processors(0)[0], 1u);
}

}  // namespace
}  // namespace prts
