#include "scenario/spec.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace prts::scenario {
namespace {

CampaignSpec sample_spec() {
  CampaignSpec spec;
  spec.name = "figure 6 reproduction";
  spec.instances = 100;
  spec.repetitions = 2;
  spec.seed = 42;
  spec.chain.task_count = 15;
  spec.chain.work_lo = 1;
  spec.chain.work_hi = 100;
  spec.chain.out_lo = 1;
  spec.chain.out_hi = 10;
  spec.platform.kind = PlatformKind::kHom;
  spec.platform.processors = 10;
  spec.platform.speed = 1.0;
  spec.sweep.kind = SweepKind::kPeriod;
  spec.sweep.lo = 10.0;
  spec.sweep.hi = 500.0;
  spec.sweep.step = 10.0;
  spec.sweep.fixed = 750.0;
  spec.solvers = {"exact", "heur-l", "heur-p"};
  return spec;
}

TEST(CampaignSpec, RoundTripsThroughText) {
  const CampaignSpec spec = sample_spec();
  const std::string text = campaign_to_text(spec);
  const CampaignParseResult parsed = campaign_from_text(text);
  ASSERT_TRUE(parsed) << parsed.error;
  EXPECT_EQ(campaign_to_text(*parsed.spec), text);
}

TEST(CampaignSpec, RoundTripsHetPlatformAndCoupledSweep) {
  CampaignSpec spec = sample_spec();
  spec.platform.kind = PlatformKind::kHet;
  spec.platform.speed_lo = 1;
  spec.platform.speed_hi = 100;
  spec.sweep.kind = SweepKind::kCoupled;
  spec.sweep.factor = 3.0;
  spec.solvers = {"heur-l", "portfolio"};
  const std::string text = campaign_to_text(spec);
  const CampaignParseResult parsed = campaign_from_text(text);
  ASSERT_TRUE(parsed) << parsed.error;
  EXPECT_EQ(campaign_to_text(*parsed.spec), text);
  EXPECT_EQ(parsed.spec->platform.kind, PlatformKind::kHet);
  EXPECT_EQ(parsed.spec->sweep.kind, SweepKind::kCoupled);
  EXPECT_EQ(parsed.spec->solvers.size(), 2u);
}

TEST(CampaignSpec, RoundTripsInfinityAndFullPrecisionDoubles) {
  CampaignSpec spec = sample_spec();
  spec.sweep.kind = SweepKind::kLatency;
  spec.sweep.fixed = std::numeric_limits<double>::infinity();
  spec.sweep.step = 0.1;  // not exactly representable; needs 17 digits
  const CampaignParseResult parsed =
      campaign_from_text(campaign_to_text(spec));
  ASSERT_TRUE(parsed) << parsed.error;
  EXPECT_TRUE(std::isinf(parsed.spec->sweep.fixed));
  EXPECT_EQ(parsed.spec->sweep.step, 0.1);
}

TEST(CampaignSpec, ParsesCommentsBlanksAndAnyKeyOrder) {
  const std::string text =
      "# a campaign\n"
      "prts-campaign v1\n"
      "\n"
      "solver heur-l\n"
      "sweep latency 50 250 2 period 50\n"
      "seed 7\n"
      "name out-of-order\n"
      "instances 5\n";
  const CampaignParseResult parsed = campaign_from_text(text);
  ASSERT_TRUE(parsed) << parsed.error;
  EXPECT_EQ(parsed.spec->name, "out-of-order");
  EXPECT_EQ(parsed.spec->instances, 5u);
  EXPECT_EQ(parsed.spec->seed, 7u);
  EXPECT_EQ(parsed.spec->sweep.kind, SweepKind::kLatency);
  // Unset keys keep the paper defaults.
  EXPECT_EQ(parsed.spec->chain.task_count, paper::kTaskCount);
  EXPECT_EQ(parsed.spec->platform.processors, paper::kProcessorCount);
}

TEST(CampaignSpec, RejectsMalformedInput) {
  const char* bad_cases[] = {
      "",                                                 // empty
      "prts-instance v1\n",                               // wrong magic
      "prts-campaign v2\nsweep period 1 2 1 latency 5\n"  // wrong version
      "solver x\n",
      "prts-campaign v1\nsolver heur-l\n",                // no sweep
      "prts-campaign v1\nsweep period 1 2 1 latency 5\n", // no solver
      "prts-campaign v1\nfrobnicate 3\n",                 // unknown key
      "prts-campaign v1\nsweep period 5 2 1 latency 5\nsolver x\n",  // lo>hi
      "prts-campaign v1\nsweep period 1 2 0 latency 5\nsolver x\n",  // step 0
      "prts-campaign v1\nsweep period 1 2 1 factor 5\nsolver x\n",   // form
      "prts-campaign v1\ninstances 0\n"
      "sweep period 1 2 1 latency 5\nsolver x\n",         // zero instances
      "prts-campaign v1\nchain 0 1 2 0 5\n"
      "sweep period 1 2 1 latency 5\nsolver x\n",         // empty chain
      "prts-campaign v1\nplatform tri 4 1 0 0 1 3\n"
      "sweep period 1 2 1 latency 5\nsolver x\n",         // bad platform
      "prts-campaign v1\ninstances -5\n"
      "sweep period 1 2 1 latency 5\nsolver x\n",         // negative count
      "prts-campaign v1\nrepetitions -1\n"
      "sweep period 1 2 1 latency 5\nsolver x\n",         // negative count
      "prts-campaign v1\nplatform hom 10 1 0 0 1 -3\n"
      "sweep period 1 2 1 latency 5\nsolver x\n",         // negative K
      "prts-campaign v1\ninstances 99999999999999999999\n"
      "sweep period 1 2 1 latency 5\nsolver x\n",         // overflow
      "prts-campaign v1\ninstances 1000000\nrepetitions 1000000\n"
      "sweep period 1 2 1 latency 5\nsolver x\n",         // job-grid cap
  };
  for (const char* text : bad_cases) {
    const CampaignParseResult parsed = campaign_from_text(text);
    EXPECT_FALSE(parsed) << "accepted: " << text;
    EXPECT_FALSE(parsed.error.empty());
  }
}

TEST(CampaignSpec, ErrorsNameTheOffendingLine) {
  const CampaignParseResult parsed = campaign_from_text(
      "prts-campaign v1\nname x\nfrobnicate 3\n");
  ASSERT_FALSE(parsed);
  EXPECT_NE(parsed.error.find("line 3"), std::string::npos);
  EXPECT_NE(parsed.error.find("frobnicate"), std::string::npos);
}

TEST(CampaignSweep, PeriodSweepExpandsGridWithFixedLatency) {
  SweepSpec sweep;
  sweep.kind = SweepKind::kPeriod;
  sweep.lo = 10.0;
  sweep.hi = 50.0;
  sweep.step = 10.0;
  sweep.fixed = 750.0;
  const auto points = sweep_points(sweep);
  ASSERT_EQ(points.size(), 5u);
  EXPECT_DOUBLE_EQ(points.front().period_bound, 10.0);
  EXPECT_DOUBLE_EQ(points.back().period_bound, 50.0);
  for (const auto& point : points) {
    EXPECT_DOUBLE_EQ(point.latency_bound, 750.0);
  }
  EXPECT_EQ(sweep_x_label(sweep), "period bound");
}

TEST(CampaignSweep, LatencySweepFixesPeriod) {
  SweepSpec sweep;
  sweep.kind = SweepKind::kLatency;
  sweep.lo = 400.0;
  sweep.hi = 500.0;
  sweep.step = 50.0;
  sweep.fixed = 250.0;
  const auto points = sweep_points(sweep);
  ASSERT_EQ(points.size(), 3u);
  for (const auto& point : points) {
    EXPECT_DOUBLE_EQ(point.period_bound, 250.0);
  }
  EXPECT_DOUBLE_EQ(points.back().latency_bound, 500.0);
  EXPECT_EQ(sweep_x_label(sweep), "latency bound");
}

TEST(CampaignSweep, CoupledSweepScalesLatency) {
  SweepSpec sweep;
  sweep.kind = SweepKind::kCoupled;
  sweep.lo = 150.0;
  sweep.hi = 250.0;
  sweep.step = 50.0;
  sweep.factor = 3.0;
  const auto points = sweep_points(sweep);
  ASSERT_EQ(points.size(), 3u);
  for (const auto& point : points) {
    EXPECT_DOUBLE_EQ(point.latency_bound, 3.0 * point.period_bound);
  }
}

}  // namespace
}  // namespace prts::scenario
