#include "common/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/rng.hpp"

namespace prts {
namespace {

TEST(RunningStats, EmptyIsZero) {
  RunningStats stats;
  EXPECT_EQ(stats.count(), 0u);
  EXPECT_EQ(stats.mean(), 0.0);
  EXPECT_EQ(stats.variance(), 0.0);
}

TEST(RunningStats, SingleObservation) {
  RunningStats stats;
  stats.add(3.5);
  EXPECT_EQ(stats.count(), 1u);
  EXPECT_DOUBLE_EQ(stats.mean(), 3.5);
  EXPECT_EQ(stats.variance(), 0.0);
  EXPECT_DOUBLE_EQ(stats.min(), 3.5);
  EXPECT_DOUBLE_EQ(stats.max(), 3.5);
}

TEST(RunningStats, MatchesDirectComputation) {
  const std::vector<double> xs{1.0, 2.0, 4.0, 8.0, 16.0};
  RunningStats stats;
  for (double x : xs) stats.add(x);
  const double mean = (1 + 2 + 4 + 8 + 16) / 5.0;
  double ss = 0.0;
  for (double x : xs) ss += (x - mean) * (x - mean);
  EXPECT_DOUBLE_EQ(stats.mean(), mean);
  EXPECT_NEAR(stats.variance(), ss / 4.0, 1e-12);
  EXPECT_DOUBLE_EQ(stats.min(), 1.0);
  EXPECT_DOUBLE_EQ(stats.max(), 16.0);
}

TEST(RunningStats, MergeEqualsSequential) {
  Rng rng(5);
  RunningStats whole;
  RunningStats left;
  RunningStats right;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.uniform_real(-10, 10);
    whole.add(x);
    (i < 400 ? left : right).add(x);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), whole.count());
  EXPECT_NEAR(left.mean(), whole.mean(), 1e-10);
  EXPECT_NEAR(left.variance(), whole.variance(), 1e-8);
  EXPECT_DOUBLE_EQ(left.min(), whole.min());
  EXPECT_DOUBLE_EQ(left.max(), whole.max());
}

TEST(RunningStats, MergeWithEmpty) {
  RunningStats a;
  a.add(1.0);
  a.add(2.0);
  RunningStats empty;
  a.merge(empty);
  EXPECT_EQ(a.count(), 2u);
  empty.merge(a);
  EXPECT_EQ(empty.count(), 2u);
  EXPECT_DOUBLE_EQ(empty.mean(), 1.5);
}

TEST(RunningStats, NumericallyStableForLargeOffset) {
  RunningStats stats;
  for (int i = 0; i < 1000; ++i) {
    stats.add(1e9 + (i % 2 == 0 ? 1.0 : -1.0));
  }
  EXPECT_NEAR(stats.variance(), 1.0 + 1.0 / 999.0, 1e-6);
}

TEST(WilsonInterval, ContainsPointEstimate) {
  const ConfidenceInterval ci = wilson_interval(73, 100);
  EXPECT_LT(ci.lo, 0.73);
  EXPECT_GT(ci.hi, 0.73);
}

TEST(WilsonInterval, DegenerateAllSuccesses) {
  const ConfidenceInterval ci = wilson_interval(50, 50);
  EXPECT_GT(ci.lo, 0.9);
  EXPECT_DOUBLE_EQ(ci.hi, 1.0);
}

TEST(WilsonInterval, DegenerateNoSuccess) {
  const ConfidenceInterval ci = wilson_interval(0, 50);
  EXPECT_DOUBLE_EQ(ci.lo, 0.0);
  EXPECT_LT(ci.hi, 0.1);
}

TEST(WilsonInterval, ShrinksWithMoreTrials) {
  const ConfidenceInterval small = wilson_interval(30, 100);
  const ConfidenceInterval large = wilson_interval(3000, 10000);
  EXPECT_LT(large.width(), small.width());
}

TEST(WilsonInterval, CoversTrueProportionUsually) {
  // Frequentist sanity: ~95% of intervals should contain p = 0.2.
  Rng rng(99);
  int covered = 0;
  const int reps = 400;
  for (int r = 0; r < reps; ++r) {
    std::size_t hits = 0;
    for (int i = 0; i < 200; ++i) {
      if (rng.bernoulli(0.2)) ++hits;
    }
    if (wilson_interval(hits, 200).contains(0.2)) ++covered;
  }
  EXPECT_GT(covered, reps * 85 / 100);
}

TEST(MeanInterval, DegenerateWhenTooFew) {
  RunningStats stats;
  stats.add(4.0);
  const ConfidenceInterval ci = mean_interval(stats);
  EXPECT_DOUBLE_EQ(ci.lo, 4.0);
  EXPECT_DOUBLE_EQ(ci.hi, 4.0);
}

TEST(MeanInterval, CoversSampleMean) {
  RunningStats stats;
  Rng rng(3);
  for (int i = 0; i < 500; ++i) stats.add(rng.uniform_real(0, 1));
  const ConfidenceInterval ci = mean_interval(stats);
  EXPECT_TRUE(ci.contains(stats.mean()));
  EXPECT_TRUE(ci.contains(0.5));
}

TEST(Aggregates, MeanOf) {
  EXPECT_DOUBLE_EQ(mean_of({}), 0.0);
  EXPECT_DOUBLE_EQ(mean_of({2.0, 4.0, 6.0}), 4.0);
}

TEST(Aggregates, GeometricMean) {
  EXPECT_DOUBLE_EQ(geometric_mean_of({}), 0.0);
  EXPECT_NEAR(geometric_mean_of({1.0, 100.0}), 10.0, 1e-9);
  EXPECT_NEAR(geometric_mean_of({2.0, 2.0, 2.0}), 2.0, 1e-12);
}

TEST(Aggregates, GeometricMeanNoOverflow) {
  // Products would overflow double; log-space must not.
  std::vector<double> xs(100, 1e300);
  EXPECT_NEAR(geometric_mean_of(xs) / 1e300, 1.0, 1e-9);
}

TEST(Aggregates, MedianOddAndEven) {
  EXPECT_DOUBLE_EQ(median_of({5.0, 1.0, 3.0}), 3.0);
  EXPECT_DOUBLE_EQ(median_of({4.0, 1.0, 3.0, 2.0}), 2.5);
  EXPECT_DOUBLE_EQ(median_of({}), 0.0);
  EXPECT_DOUBLE_EQ(median_of({7.0}), 7.0);
}

}  // namespace
}  // namespace prts
