#include "solver/portfolio.hpp"

#include <gtest/gtest.h>

#include "model/generator.hpp"
#include "solver/adapters.hpp"
#include "solver/registry.hpp"
#include "test_util.hpp"

namespace prts::solver {
namespace {

Instance small_hom_instance(std::uint64_t seed = 3) {
  Rng rng(seed);
  return Instance{testutil::small_chain(rng, 8),
                  testutil::small_hom_platform(6, 3)};
}

Instance small_het_instance(std::uint64_t seed = 5) {
  Rng rng(seed);
  TaskChain chain = testutil::small_chain(rng, 8);
  return Instance{std::move(chain), testutil::small_het_platform(rng, 6, 3)};
}

Bounds loose_bounds() {
  Bounds bounds;
  bounds.period_bound = 40.0;
  bounds.latency_bound = 150.0;
  return bounds;
}

TEST(Portfolio, BestOfSelectionIsAtLeastEveryMember) {
  const auto& registry = SolverRegistry::builtin();
  const auto portfolio = make_portfolio(
      registry, "test", {"heur-l", "heur-p", "baseline"});
  for (std::uint64_t seed : {1u, 2u, 3u, 4u}) {
    const Instance instance = small_het_instance(seed);
    const Bounds bounds = loose_bounds();
    const auto best = portfolio->solve(instance, bounds);
    for (const char* name : {"heur-l", "heur-p", "baseline"}) {
      const auto member = registry.find(name)->solve(instance, bounds);
      if (!member) continue;
      ASSERT_TRUE(best.has_value()) << "seed " << seed;
      EXPECT_FALSE(tri_criteria_better(member->metrics, best->metrics))
          << name << " beat the portfolio at seed " << seed;
    }
  }
}

TEST(Portfolio, MatchesExactOnHomogeneousPlatforms) {
  // With the exact engine in the portfolio, the portfolio answer is
  // optimal wherever the exact engine applies.
  const auto& registry = SolverRegistry::builtin();
  const auto portfolio =
      make_portfolio(registry, "test", {"heur-l", "exact", "heur-p"});
  const Instance instance = small_hom_instance(9);
  const Bounds bounds = loose_bounds();
  const auto best = portfolio->solve(instance, bounds);
  const auto exact = registry.find("exact")->solve(instance, bounds);
  ASSERT_TRUE(exact.has_value());
  ASSERT_TRUE(best.has_value());
  EXPECT_DOUBLE_EQ(best->metrics.reliability.log(),
                   exact->metrics.reliability.log());
}

TEST(Portfolio, DeterministicAcrossRepeatsAndThreadCounts) {
  const auto& registry = SolverRegistry::builtin();
  const Instance instance = small_het_instance(7);
  const Bounds bounds = loose_bounds();
  const auto serial = make_portfolio(registry, "serial",
                                     {"heur-l", "heur-p", "baseline"},
                                     std::numeric_limits<double>::infinity(),
                                     1);
  const auto wide = make_portfolio(registry, "wide",
                                   {"heur-l", "heur-p", "baseline"});
  const auto a = serial->solve(instance, bounds);
  const auto b = serial->solve(instance, bounds);
  const auto c = wide->solve(instance, bounds);
  ASSERT_TRUE(a && b && c);
  EXPECT_EQ(a->mapping, b->mapping);
  EXPECT_EQ(a->mapping, c->mapping);
}

TEST(Portfolio, PreparedSessionAgreesWithDirectSolve) {
  // Campaign sweeps drive portfolios through prepare(); the session
  // must answer exactly like a fresh solve at every bound.
  const auto portfolio = make_portfolio(SolverRegistry::builtin(), "test",
                                        {"exact", "heur-l", "heur-p"});
  const Instance instance = small_hom_instance(21);
  const auto session = portfolio->prepare(instance);
  for (double period : {10.0, 20.0, 40.0, 1e9}) {
    Bounds bounds;
    bounds.period_bound = period;
    bounds.latency_bound = 150.0;
    const auto from_session = session->solve(bounds);
    const auto from_solver = portfolio->solve(instance, bounds);
    ASSERT_EQ(from_session.has_value(), from_solver.has_value())
        << "period " << period;
    if (from_session) {
      EXPECT_EQ(from_session->mapping, from_solver->mapping)
          << "period " << period;
    }
  }
}

TEST(Portfolio, SkipsUnsupportedMembers) {
  // On a heterogeneous platform the exact member cannot run; the
  // heuristics still answer.
  const auto portfolio = make_portfolio(SolverRegistry::builtin(), "test",
                                        {"exact", "heur-l"});
  const Instance het = small_het_instance(13);
  EXPECT_TRUE(portfolio->supports(het));
  const auto solution = portfolio->solve(het, loose_bounds());
  EXPECT_TRUE(solution.has_value());
}

TEST(Portfolio, ExhaustedBudgetsDiscardEveryAnswer) {
  // A negative budget can never be met (elapsed >= 0), so every member's
  // answer is discarded — the degenerate all-timed-out portfolio.
  std::vector<PortfolioMember> members;
  members.push_back(PortfolioMember{make_heuristic_solver(
                                        HeuristicKind::kHeurL, false),
                                    -1.0});
  const PortfolioSolver portfolio("timed-out", std::move(members));
  const auto solution =
      portfolio.solve(small_het_instance(3), loose_bounds());
  EXPECT_FALSE(solution.has_value());
}

TEST(Portfolio, RejectsNullMembersAndUnknownNames) {
  EXPECT_THROW(PortfolioSolver("bad", {PortfolioMember{nullptr}}),
               std::invalid_argument);
  EXPECT_THROW(
      make_portfolio(SolverRegistry::builtin(), "bad", {"no-such"}),
      std::invalid_argument);
  EXPECT_THROW(make_portfolio(SolverRegistry::builtin(), "bad", {}),
               std::invalid_argument);
}

TEST(Portfolio, DescriptionListsMembers) {
  const auto portfolio = make_portfolio(SolverRegistry::builtin(), "test",
                                        {"heur-l", "baseline"});
  EXPECT_NE(portfolio->description().find("heur-l"), std::string::npos);
  EXPECT_NE(portfolio->description().find("baseline"), std::string::npos);
}

}  // namespace
}  // namespace prts::solver
