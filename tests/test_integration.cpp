// End-to-end cross-checks on paper-scale instances: every optimizer, the
// evaluator, the RBD library, and the simulator must tell one consistent
// story about the same mapping.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "core/exact.hpp"
#include "core/heuristics.hpp"
#include "core/ilp.hpp"
#include "core/period_dp.hpp"
#include "core/reliability_dp.hpp"
#include "eval/evaluation.hpp"
#include "model/generator.hpp"
#include "rbd/builder.hpp"
#include "rbd/chain_dp.hpp"
#include "sim/monte_carlo.hpp"
#include "sim/pipeline_sim.hpp"

namespace prts {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

class PaperInstance : public ::testing::TestWithParam<int> {
 protected:
  PaperInstance()
      : rng_(static_cast<std::uint64_t>(GetParam()) * 7919 + 13),
        chain_(paper::chain(rng_)),
        platform_(paper::hom_platform()) {}

  Rng rng_;
  TaskChain chain_;
  Platform platform_;
};

TEST_P(PaperInstance, AllExactMethodsAgree) {
  const double period_bound = 100.0 + 30.0 * GetParam();
  const double latency_bound = 750.0;

  const HomogeneousExactSolver solver(chain_, platform_);
  const auto via_enum =
      solver.best_log_reliability(period_bound, latency_bound);
  const IlpFormulation ilp(chain_, platform_, period_bound, latency_bound);
  const auto via_ilp = solve_ilp(ilp);
  const auto via_dp = exact_dp_log_reliability(chain_, platform_,
                                               period_bound, latency_bound);
  ASSERT_EQ(via_enum.has_value(), via_ilp.has_value());
  ASSERT_EQ(via_enum.has_value(), via_dp.has_value());
  if (via_enum) {
    EXPECT_NEAR(*via_enum, via_ilp->objective, 1e-9);
    EXPECT_NEAR(*via_enum, *via_dp, 1e-9);
  }
}

TEST_P(PaperInstance, Algorithm1MatchesUnboundedExact) {
  const HomogeneousExactSolver solver(chain_, platform_);
  const auto exact = solver.best_log_reliability(kInf, kInf);
  const auto dp = optimize_reliability(chain_, platform_);
  ASSERT_TRUE(exact.has_value());
  EXPECT_NEAR(dp.reliability.log(), *exact, 1e-9);
}

TEST_P(PaperInstance, Algorithm2MatchesBoundedExact) {
  const double period_bound = 90.0 + 40.0 * GetParam();
  const HomogeneousExactSolver solver(chain_, platform_);
  const auto exact = solver.best_log_reliability(period_bound, kInf);
  const auto dp =
      optimize_reliability_period(chain_, platform_, period_bound);
  ASSERT_EQ(exact.has_value(), dp.has_value());
  if (exact) {
    EXPECT_NEAR(dp->reliability.log(), *exact, 1e-9);
  }
}

TEST_P(PaperInstance, HeuristicsNeverBeatExactAndRespectBounds) {
  const double period_bound = 150.0 + 25.0 * GetParam();
  const double latency_bound = 700.0 + 30.0 * GetParam();
  const HomogeneousExactSolver solver(chain_, platform_);
  const auto exact =
      solver.best_log_reliability(period_bound, latency_bound);
  HeuristicOptions options;
  options.period_bound = period_bound;
  options.latency_bound = latency_bound;
  for (HeuristicKind kind : {HeuristicKind::kHeurL, HeuristicKind::kHeurP}) {
    const auto heuristic = run_heuristic(chain_, platform_, kind, options);
    if (!heuristic) continue;
    ASSERT_TRUE(exact.has_value());
    EXPECT_LE(heuristic->metrics.reliability.log(), *exact + 1e-9);
    EXPECT_LE(heuristic->metrics.worst_period, period_bound + 1e-9);
    EXPECT_LE(heuristic->metrics.worst_latency, latency_bound + 1e-9);
    EXPECT_FALSE(heuristic->mapping.validate(platform_).has_value());
  }
}

TEST_P(PaperInstance, RbdRoutesAgreeOnOptimalMapping) {
  const auto dp = optimize_reliability(chain_, platform_);
  const auto sp = rbd::build_routing_sp(chain_, platform_, dp.mapping);
  EXPECT_NEAR(sp.reliability().log(), dp.reliability.log(), 1e-9);
  // No-routing reliability exists and is a probability.
  const auto no_routing =
      rbd::no_routing_reliability(chain_, platform_, dp.mapping);
  EXPECT_LE(no_routing.log(), 0.0);
  EXPECT_GE(no_routing.failure(), 0.0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PaperInstance, ::testing::Range(0, 6));

TEST(IntegrationHet, HeuristicsSolveRealisticHetInstances) {
  Rng rng(123);
  std::size_t solved = 0;
  for (int inst = 0; inst < 10; ++inst) {
    const TaskChain chain = paper::chain(rng);
    const Platform platform = paper::het_platform(rng);
    HeuristicOptions options;
    options.period_bound = 100.0;
    options.latency_bound = 150.0;
    for (HeuristicKind kind :
         {HeuristicKind::kHeurL, HeuristicKind::kHeurP}) {
      const auto solution = run_heuristic(chain, platform, kind, options);
      if (solution) {
        ++solved;
        EXPECT_LE(solution->metrics.worst_period, 100.0 + 1e-9);
        EXPECT_LE(solution->metrics.worst_latency, 150.0 + 1e-9);
      }
    }
  }
  // The paper's Figure 12 shows nearly all instances solved at P >= 60 on
  // heterogeneous platforms; expect a clear majority here.
  EXPECT_GE(solved, 10u);
}

TEST(IntegrationSim, SimulatorConfirmsAnalyticsOnScaledInstance) {
  // Paper rates are too reliable to measure by sampling; scale the rates
  // so failures are frequent, keeping the same structure.
  Rng rng(5);
  const TaskChain chain = paper::chain(rng);
  const Platform platform =
      Platform::homogeneous(paper::kProcessorCount, 1.0, 2e-4, 1.0, 2e-3,
                            paper::kMaxReplication);
  const auto dp = optimize_reliability(chain, platform);
  const auto mc = sim::estimate_reliability(chain, platform, dp.mapping,
                                            30000, 17, true, 2);
  const auto ci =
      wilson_interval(mc.successes, mc.trials, 4.4);
  EXPECT_TRUE(ci.contains(dp.reliability.reliability()))
      << dp.reliability.reliability() << " vs [" << ci.lo << "," << ci.hi
      << "]";

  // Fault-free DES latency (no routing) equals the analytic worst case.
  sim::SimulationConfig config;
  config.dataset_count = 1;
  config.input_period = 1e6;
  config.inject_failures = false;
  config.use_routing = false;
  const auto run =
      sim::simulate_pipeline(chain, platform, dp.mapping, config);
  const auto metrics = evaluate(chain, platform, dp.mapping);
  EXPECT_NEAR(run.latency.mean(), metrics.worst_latency, 1e-6);
}

TEST(IntegrationPrecision, PaperScaleFailuresAreTiny) {
  // With real paper rates the mapping failure probability lands in the
  // 1e-9..1e-3 decade range seen in Figures 7-11, and the log-space
  // pipeline must preserve it (a naive 1 - prod(r) would return 0).
  Rng rng(9);
  const TaskChain chain = paper::chain(rng);
  const Platform platform = paper::hom_platform();
  const auto dp = optimize_reliability(chain, platform);
  // The triple-replicated optimum reaches ~3e-16: below the spacing of
  // doubles around 1.0, so a naive 1 - prod(r) would quantize it away
  // entirely. Log space keeps it meaningful.
  EXPECT_GT(dp.reliability.failure(), 1e-17);
  EXPECT_LT(dp.reliability.failure(), 1e-3);
  // A constrained mapping (tight period forces small intervals, hence
  // more communications and fewer replicas) lands in the visible decade
  // range of Figures 7-11.
  const auto constrained =
      optimize_reliability_period(chain, platform, 80.0);
  if (constrained) {
    EXPECT_GT(constrained->reliability.failure(), 1e-16);
  }
}

}  // namespace
}  // namespace prts
