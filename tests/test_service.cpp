// The request engine: cache hits replay bit-identical solutions,
// isomorphic requests share entries, in-flight twins deduplicate,
// compatible requests batch onto one prepared session, and admission
// control rejects or downgrades. Plus the distributed fabric above it:
// wire codec round trips, shard routing, forward dedup, peer-death
// degradation, and the campaign x service fusion.
#include "service/engine.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <cmath>
#include <future>
#include <memory>
#include <mutex>
#include <sstream>
#include <thread>

#include "eval/evaluation.hpp"
#include "net/frame_server.hpp"
#include "scenario/emit.hpp"
#include "service/fusion.hpp"
#include "service/protocol.hpp"
#include "service/router.hpp"
#include "service/wire.hpp"
#include "solver/adapters.hpp"

namespace prts::service {
namespace {

Instance hom_instance() {
  std::vector<Task> tasks{{10.0, 2.0}, {4.0, 1.0}, {20.0, 1.0}, {6.0, 0.0}};
  return Instance{TaskChain(std::move(tasks)),
                  Platform::homogeneous(5, 1.0, 1e-8, 1.0, 1e-5, 2)};
}

Instance het_instance() {
  std::vector<Task> tasks{{10.0, 2.0}, {4.0, 1.0}, {20.0, 0.0}};
  std::vector<Processor> procs{{3.0, 1e-8}, {1.0, 2e-8}, {2.0, 1e-8},
                               {5.0, 4e-8}};
  return Instance{TaskChain(std::move(tasks)),
                  Platform(std::move(procs), 1.0, 1e-5, 2)};
}

/// het_instance with its processor list rotated: isomorphic, different
/// labels.
Instance het_instance_permuted() {
  const Instance base = het_instance();
  std::vector<Processor> procs;
  const std::size_t p = base.platform.processor_count();
  for (std::size_t u = 0; u < p; ++u) {
    procs.push_back(base.platform.processor((u + 1) % p));
  }
  return Instance{base.chain, Platform(std::move(procs), 1.0, 1e-5, 2)};
}

/// A solver that blocks until the test opens its gate — the lever for
/// deterministic dedup/batching tests. Delegates the actual answer to
/// heur-p so solutions are real.
class GatedSolver final : public solver::Solver {
 public:
  explicit GatedSolver(std::shared_future<void> gate)
      : gate_(std::move(gate)),
        inner_(solver::make_heuristic_solver(HeuristicKind::kHeurP, false)) {}

  std::string name() const override { return "gated"; }

  std::optional<solver::Solution> solve(
      const Instance& instance, const solver::Bounds& bounds) const override {
    gate_.wait();
    return inner_->solve(instance, bounds);
  }

 private:
  std::shared_future<void> gate_;
  std::shared_ptr<const solver::Solver> inner_;
};

ServiceConfig small_config() {
  ServiceConfig config;
  config.threads = 2;
  return config;
}

TEST(SolveService, ColdSolveThenBitIdenticalCacheHit) {
  SolveService service(small_config());
  SolveRequest request{hom_instance(), "exact", {}, 1e9,
                       DeadlinePolicy::kReject};

  const SolveReply cold = service.submit(request).get();
  ASSERT_EQ(cold.status, ReplyStatus::kSolved);
  EXPECT_FALSE(cold.cache_hit);
  EXPECT_EQ(cold.solver_used, "exact");
  ASSERT_TRUE(cold.solution.has_value());

  const SolveReply warm = service.submit(request).get();
  ASSERT_EQ(warm.status, ReplyStatus::kSolved);
  EXPECT_TRUE(warm.cache_hit);
  // The acceptance guarantee: a cache hit replays the cold solve
  // bit-for-bit — same mapping, exactly equal metric doubles.
  EXPECT_EQ(warm.solution->mapping, cold.solution->mapping);
  EXPECT_EQ(warm.solution->metrics, cold.solution->metrics);
  EXPECT_EQ(warm.key, cold.key);

  const EngineStats stats = service.stats();
  EXPECT_EQ(stats.submitted, 2u);
  EXPECT_EQ(stats.cache_hits, 1u);
}

TEST(SolveService, IsomorphicRequestsShareOneCacheEntry) {
  SolveService service(small_config());
  const SolveReply cold =
      service.submit(SolveRequest{het_instance(), "heur-p", {}}).get();
  ASSERT_EQ(cold.status, ReplyStatus::kSolved);

  const Instance permuted = het_instance_permuted();
  const SolveReply warm =
      service.submit(SolveRequest{permuted, "heur-p", {}}).get();
  ASSERT_EQ(warm.status, ReplyStatus::kSolved);
  EXPECT_TRUE(warm.cache_hit);
  // Same canonical solve, translated into each request's own labels:
  // metrics identical, mapping valid for the permuted platform.
  EXPECT_EQ(warm.solution->metrics, cold.solution->metrics);
  EXPECT_EQ(warm.solution->mapping.validate(permuted.platform),
            std::nullopt);
}

TEST(SolveService, InfeasibleAnswersAreCachedToo) {
  SolveService service(small_config());
  SolveRequest request{hom_instance(), "exact", {}};
  request.bounds.period_bound = 1e-3;  // unreachable

  const SolveReply cold = service.submit(request).get();
  EXPECT_EQ(cold.status, ReplyStatus::kInfeasible);
  const SolveReply warm = service.submit(request).get();
  EXPECT_EQ(warm.status, ReplyStatus::kInfeasible);
  EXPECT_TRUE(warm.cache_hit);
}

TEST(SolveService, UnknownSolverIsAnErrorReply) {
  SolveService service(small_config());
  const SolveReply reply =
      service.submit(SolveRequest{hom_instance(), "no-such-solver", {}})
          .get();
  EXPECT_EQ(reply.status, ReplyStatus::kError);
  EXPECT_NE(reply.error.find("no-such-solver"), std::string::npos);
  EXPECT_EQ(service.stats().errors, 1u);
}

TEST(SolveService, QueueDepthZeroRejectsEverything) {
  ServiceConfig config = small_config();
  config.max_queue_depth = 0;
  SolveService service(config);
  const SolveReply reply =
      service.submit(SolveRequest{hom_instance(), "exact", {}}).get();
  EXPECT_EQ(reply.status, ReplyStatus::kRejectedQueue);
  EXPECT_EQ(service.stats().rejected_queue, 1u);
}

TEST(SolveService, ExpiredDeadlineRejectsUnderRejectPolicy) {
  SolveService service(small_config());
  SolveRequest request{hom_instance(), "exact", {}, 0.0,
                       DeadlinePolicy::kReject};
  const SolveReply reply = service.submit(request).get();
  EXPECT_EQ(reply.status, ReplyStatus::kRejectedDeadline);
  EXPECT_EQ(service.stats().rejected_deadline, 1u);
}

TEST(SolveService, ExpiredDeadlineDowngradesToFallbackAndSkipsCache) {
  SolveService service(small_config());
  SolveRequest request{hom_instance(), "exact", {}, 0.0,
                       DeadlinePolicy::kDowngrade};
  const SolveReply reply = service.submit(request).get();
  ASSERT_EQ(reply.status, ReplyStatus::kSolved);
  EXPECT_TRUE(reply.downgraded);
  EXPECT_EQ(reply.solver_used, "heur-p");
  EXPECT_EQ(service.stats().downgraded, 1u);
  // Downgraded answers must not poison the 'exact' cache key.
  EXPECT_EQ(service.cache_stats().insertions, 0u);
  const SolveReply again = service.submit(request).get();
  EXPECT_FALSE(again.cache_hit);
  EXPECT_TRUE(again.downgraded);
}

TEST(SolveService, IdenticalInFlightRequestsDeduplicate) {
  std::promise<void> gate;
  solver::SolverRegistry registry;
  registry.add(std::make_shared<GatedSolver>(gate.get_future().share()));

  ServiceConfig config;
  config.registry = &registry;
  config.threads = 1;
  SolveService service(config);

  SolveRequest request{hom_instance(), "gated", {}};
  std::future<SolveReply> first = service.submit(request);
  std::future<SolveReply> second = service.submit(request);
  EXPECT_EQ(service.stats().deduplicated, 1u);

  gate.set_value();
  const SolveReply a = first.get();
  const SolveReply b = second.get();
  ASSERT_EQ(a.status, ReplyStatus::kSolved);
  ASSERT_EQ(b.status, ReplyStatus::kSolved);
  EXPECT_FALSE(a.deduplicated);
  EXPECT_TRUE(b.deduplicated);
  EXPECT_EQ(a.solution->mapping, b.solution->mapping);
  EXPECT_EQ(a.solution->metrics, b.solution->metrics);
  // One solve, one cache entry.
  EXPECT_EQ(service.cache_stats().insertions, 1u);
}

TEST(SolveService, DeduplicatedIsomorphicTwinsGetTheirOwnLabels) {
  std::promise<void> gate;
  solver::SolverRegistry registry;
  registry.add(std::make_shared<GatedSolver>(gate.get_future().share()));

  ServiceConfig config;
  config.registry = &registry;
  config.threads = 1;
  SolveService service(config);

  const Instance original = het_instance();
  const Instance permuted = het_instance_permuted();
  std::future<SolveReply> first =
      service.submit(SolveRequest{original, "gated", {}});
  std::future<SolveReply> second =
      service.submit(SolveRequest{permuted, "gated", {}});
  EXPECT_EQ(service.stats().deduplicated, 1u);

  gate.set_value();
  const SolveReply a = first.get();
  const SolveReply b = second.get();
  ASSERT_EQ(a.status, ReplyStatus::kSolved);
  ASSERT_EQ(b.status, ReplyStatus::kSolved);
  EXPECT_EQ(a.solution->metrics, b.solution->metrics);
  // One shared solve, but each reply speaks its own platform's labels:
  // interval replicas must name processors with the same physical
  // (speed, rate) characteristics in both label spaces.
  const Mapping& ma = a.solution->mapping;
  const Mapping& mb = b.solution->mapping;
  ASSERT_EQ(ma.interval_count(), mb.interval_count());
  for (std::size_t j = 0; j < ma.interval_count(); ++j) {
    std::vector<double> speeds_a;
    std::vector<double> speeds_b;
    for (const std::size_t u : ma.processors(j)) {
      speeds_a.push_back(original.platform.speed(u));
    }
    for (const std::size_t u : mb.processors(j)) {
      speeds_b.push_back(permuted.platform.speed(u));
    }
    std::sort(speeds_a.begin(), speeds_a.end());
    std::sort(speeds_b.begin(), speeds_b.end());
    EXPECT_EQ(speeds_a, speeds_b) << "interval " << j;
  }
}

TEST(SolveService, PatientDedupWaiterKeepsAnExpiredTwinAlive) {
  std::promise<void> gate;
  solver::SolverRegistry registry;
  registry.add(std::make_shared<GatedSolver>(gate.get_future().share()));

  ServiceConfig config;
  config.registry = &registry;
  config.threads = 1;
  SolveService service(config);

  // Occupy the single worker so both requests below are pending when
  // their batch finally runs.
  std::future<SolveReply> blocker =
      service.submit(SolveRequest{het_instance(), "gated", {}});

  // First submitter: already-expired deadline, reject policy. Its twin
  // has no deadline — the query must be solved for real, not rejected
  // on the first submitter's options.
  SolveRequest impatient{hom_instance(), "gated", {}, 0.0,
                         DeadlinePolicy::kReject};
  SolveRequest patient{hom_instance(), "gated", {}};
  std::future<SolveReply> first = service.submit(impatient);
  std::future<SolveReply> second = service.submit(patient);
  EXPECT_EQ(service.stats().deduplicated, 1u);

  gate.set_value();
  EXPECT_EQ(blocker.get().status, ReplyStatus::kSolved);
  const SolveReply a = first.get();
  const SolveReply b = second.get();
  // The live waiter forced a real solve; the expired twin shares it.
  EXPECT_EQ(a.status, ReplyStatus::kSolved);
  EXPECT_EQ(b.status, ReplyStatus::kSolved);
  EXPECT_FALSE(a.downgraded);
  EXPECT_FALSE(b.downgraded);
  EXPECT_EQ(service.stats().rejected_deadline, 0u);
}

TEST(SolveService, AllExpiredMixedPoliciesSplitPerWaiter) {
  std::promise<void> gate;
  solver::SolverRegistry registry;
  registry.add(std::make_shared<GatedSolver>(gate.get_future().share()));
  // The downgrade target must exist in the service's registry.
  registry.add(solver::make_heuristic_solver(HeuristicKind::kHeurP, false));

  ServiceConfig config;
  config.registry = &registry;
  config.threads = 1;
  SolveService service(config);

  std::future<SolveReply> blocker =
      service.submit(SolveRequest{het_instance(), "gated", {}});

  // Both waiters expired: the downgrade waiter gets the fallback
  // answer, the reject waiter a rejection — per-waiter statuses.
  SolveRequest wants_fallback{hom_instance(), "gated", {}, 0.0,
                              DeadlinePolicy::kDowngrade};
  SolveRequest wants_reject = wants_fallback;
  wants_reject.deadline_policy = DeadlinePolicy::kReject;
  std::future<SolveReply> first = service.submit(wants_fallback);
  std::future<SolveReply> second = service.submit(wants_reject);

  gate.set_value();
  EXPECT_EQ(blocker.get().status, ReplyStatus::kSolved);
  const SolveReply a = first.get();
  const SolveReply b = second.get();
  ASSERT_EQ(a.status, ReplyStatus::kSolved);
  EXPECT_TRUE(a.downgraded);
  EXPECT_EQ(a.solver_used, "heur-p");
  EXPECT_EQ(b.status, ReplyStatus::kRejectedDeadline);
  EXPECT_EQ(service.stats().downgraded, 1u);
  EXPECT_EQ(service.stats().rejected_deadline, 1u);
  // The fallback answer must not be cached under the 'gated' key.
  EXPECT_EQ(service.cache_stats().insertions, 1u);  // blocker only
}

TEST(SolveService, CompatibleRequestsShareOneBatch) {
  std::promise<void> gate;
  solver::SolverRegistry registry;
  registry.add(std::make_shared<GatedSolver>(gate.get_future().share()));

  ServiceConfig config;
  config.registry = &registry;
  config.threads = 1;  // FIFO: the blocker below owns the only worker
  SolveService service(config);

  // Occupy the worker so the next two submits stay queued in one open
  // batch (same instance + solver, different bounds).
  std::future<SolveReply> blocker =
      service.submit(SolveRequest{het_instance(), "gated", {}});

  SolveRequest loose{hom_instance(), "gated", {}};
  SolveRequest tight = loose;
  tight.bounds.period_bound = 1e-3;
  std::future<SolveReply> first = service.submit(loose);
  std::future<SolveReply> second = service.submit(tight);

  gate.set_value();
  EXPECT_EQ(blocker.get().status, ReplyStatus::kSolved);
  EXPECT_EQ(first.get().status, ReplyStatus::kSolved);
  EXPECT_EQ(second.get().status, ReplyStatus::kInfeasible);

  const EngineStats stats = service.stats();
  EXPECT_EQ(stats.batches, 2u);           // blocker + the shared batch
  EXPECT_EQ(stats.batched_requests, 1u);  // `tight` joined `loose`
}

/// Delegates to heur-p but records the order in which instances reach
/// the solver — the observable for batch-pickup-order tests.
class RecordingSolver final : public solver::Solver {
 public:
  RecordingSolver(std::shared_future<void> gate,
                  std::vector<std::size_t>* order, std::mutex* order_mutex)
      : gate_(std::move(gate)),
        order_(order),
        order_mutex_(order_mutex),
        inner_(solver::make_heuristic_solver(HeuristicKind::kHeurP, false)) {}

  std::string name() const override { return "recording"; }

  std::optional<solver::Solution> solve(
      const Instance& instance, const solver::Bounds& bounds) const override {
    {
      // Recorded at *pickup* (before the gate), so the test can both
      // observe pickup order and wait until a batch is committed to.
      const std::lock_guard<std::mutex> lock(*order_mutex_);
      order_->push_back(instance.chain.size());
    }
    gate_.wait();
    return inner_->solve(instance, bounds);
  }

 private:
  std::shared_future<void> gate_;
  std::vector<std::size_t>* order_;
  std::mutex* order_mutex_;
  std::shared_ptr<const solver::Solver> inner_;
};

TEST(SolveService, TightDeadlineBatchIsPickedBeforePatientBacklog) {
  std::promise<void> gate;
  std::vector<std::size_t> order;
  std::mutex order_mutex;
  solver::SolverRegistry registry;
  registry.add(std::make_shared<RecordingSolver>(gate.get_future().share(),
                                                 &order, &order_mutex));

  ServiceConfig config;
  config.registry = &registry;
  config.threads = 1;  // one worker: pickup order is fully observable
  SolveService service(config);

  // Occupy the worker so the next two batches queue up behind it; wait
  // until it has actually committed to the blocker's batch.
  std::future<SolveReply> blocker =
      service.submit(SolveRequest{het_instance(), "recording", {}});
  for (int spin = 0; spin < 2000; ++spin) {
    {
      const std::lock_guard<std::mutex> lock(order_mutex);
      if (!order.empty()) break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

  // FIFO would run `patient` (4 tasks, submitted first, no deadline)
  // before `urgent` (2 tasks, submitted second, 30s deadline) — and
  // under real backlog the urgent request would expire in the queue.
  // Deadline-aware pickup must flip the order.
  std::vector<Task> two_tasks{{10.0, 1.0}, {5.0, 0.0}};
  const Instance small{TaskChain(std::move(two_tasks)),
                       Platform::homogeneous(3, 1.0, 1e-8, 1.0, 1e-5, 2)};
  std::future<SolveReply> patient =
      service.submit(SolveRequest{hom_instance(), "recording", {}});
  std::future<SolveReply> urgent = service.submit(
      SolveRequest{small, "recording", {}, 30.0, DeadlinePolicy::kReject});

  gate.set_value();
  EXPECT_EQ(blocker.get().status, ReplyStatus::kSolved);
  EXPECT_EQ(patient.get().status, ReplyStatus::kSolved);
  EXPECT_EQ(urgent.get().status, ReplyStatus::kSolved);

  // Solve order: blocker (3 tasks), then urgent (2), then patient (4).
  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(order[0], 3u);
  EXPECT_EQ(order[1], 2u);
  EXPECT_EQ(order[2], 4u);
}

TEST(ServeProtocol, ScriptedSessionWithRepeatsAndErrors) {
  ServiceConfig config = small_config();
  SolveService service(config);

  std::istringstream in(
      "# a scripted session\n"
      "instance a\n"
      "prts-instance v1\n"
      "tasks 2\n"
      "10 1\n"
      "5 0\n"
      "platform 3 1 1e-05 2\n"
      "1 1e-08\n"
      "1 1e-08\n"
      "1 1e-08\n"
      "end\n"
      "solve a exact inf inf\n"
      "sync\n"
      "solve a exact inf inf\n"
      "solve nope exact inf inf\n"
      "bogus-command\n"
      "sync\n"
      "stats\n");
  std::ostringstream out;
  const ServeResult result = run_serve(in, out, service);

  EXPECT_EQ(result.requests, 2u);
  EXPECT_EQ(result.protocol_errors, 2u);  // unknown instance + command

  const std::string text = out.str();
  // Request 0 solved cold, request 1 is a cache hit after the sync.
  EXPECT_NE(text.find("0\tsolved\t0"), std::string::npos);
  EXPECT_NE(text.find("1\tsolved\t1"), std::string::npos);
  EXPECT_NE(text.find("# error: solve: unknown instance 'nope'"),
            std::string::npos);
  EXPECT_NE(text.find("# engine {\"submitted\":2"), std::string::npos);
  EXPECT_NE(text.find("\"cache_hits\":1"), std::string::npos);
}

TEST(ServeProtocol, RepliesComeBackInSubmissionOrder) {
  SolveService service(small_config());
  std::istringstream in(
      "instance a\n"
      "prts-instance v1\n"
      "tasks 2\n"
      "10 1\n"
      "5 0\n"
      "platform 2 1 1e-05 2\n"
      "1 1e-08\n"
      "1 1e-08\n"
      "end\n"
      "solve a heur-p inf inf\n"
      "solve a heur-l inf inf\n"
      "solve a baseline inf inf\n");
  std::ostringstream out;
  run_serve(in, out, service);
  const std::string text = out.str();
  ASSERT_EQ(text.rfind("0\t", 0), 0u);  // reply 0 leads the output
  const std::size_t p1 = text.find("\n1\t");
  const std::size_t p2 = text.find("\n2\t");
  ASSERT_NE(p1, std::string::npos);
  ASSERT_NE(p2, std::string::npos);
  EXPECT_LT(p1, p2);
}

// ------------------------------------------------------------ wire codec

TEST(WireCodec, RequestRoundTrip) {
  SolveRequest request{het_instance(), "exact", {}, 7.5,
                       DeadlinePolicy::kReject};
  request.bounds.period_bound = 12.25;

  std::string error;
  const auto decoded =
      decode_wire_request(encode_wire_request(request), error);
  ASSERT_TRUE(decoded.has_value()) << error;
  EXPECT_EQ(decoded->solver, "exact");
  EXPECT_EQ(decoded->bounds.period_bound, 12.25);
  EXPECT_TRUE(std::isinf(decoded->bounds.latency_bound));
  EXPECT_EQ(decoded->deadline_seconds, 7.5);
  EXPECT_EQ(decoded->deadline_policy, DeadlinePolicy::kReject);
  // The instance survives bit-exactly (canonical number formatting).
  EXPECT_EQ(instance_to_text(decoded->instance),
            instance_to_text(request.instance));
}

TEST(WireCodec, SolvedReplyRoundTripIsBitIdentical) {
  SolveService service(small_config());
  const SolveReply original =
      service.submit(SolveRequest{hom_instance(), "exact", {}}).get();
  ASSERT_EQ(original.status, ReplyStatus::kSolved);

  std::string error;
  const auto decoded =
      decode_wire_reply(encode_wire_reply(original), error);
  ASSERT_TRUE(decoded.has_value()) << error;
  EXPECT_EQ(decoded->status, ReplyStatus::kSolved);
  EXPECT_EQ(decoded->solver_used, "exact");
  EXPECT_EQ(decoded->key, original.key);
  ASSERT_TRUE(decoded->solution.has_value());
  EXPECT_EQ(decoded->solution->mapping, original.solution->mapping);
  EXPECT_EQ(decoded->solution->metrics, original.solution->metrics);
}

TEST(WireCodec, InfeasibleAndErrorRepliesRoundTrip) {
  SolveReply infeasible;
  infeasible.status = ReplyStatus::kInfeasible;
  infeasible.solver_used = "dp";
  infeasible.cache_hit = true;
  infeasible.key = fingerprint("some-key");
  std::string error;
  auto decoded = decode_wire_reply(encode_wire_reply(infeasible), error);
  ASSERT_TRUE(decoded.has_value()) << error;
  EXPECT_EQ(decoded->status, ReplyStatus::kInfeasible);
  EXPECT_TRUE(decoded->cache_hit);
  EXPECT_EQ(decoded->key, infeasible.key);
  EXPECT_FALSE(decoded->solution.has_value());

  SolveReply failure;
  failure.status = ReplyStatus::kError;
  failure.error = "unknown solver 'nope'";
  failure.key = fingerprint("err-key");
  decoded = decode_wire_reply(encode_wire_reply(failure), error);
  ASSERT_TRUE(decoded.has_value()) << error;
  EXPECT_EQ(decoded->status, ReplyStatus::kError);
  EXPECT_EQ(decoded->error, "unknown solver 'nope'");
  EXPECT_EQ(decoded->key, failure.key);
}

TEST(WireCodec, GarbageIsRejectedWithReason) {
  std::string error;
  EXPECT_FALSE(decode_wire_request("not a request", error).has_value());
  EXPECT_FALSE(error.empty());
  EXPECT_FALSE(decode_wire_reply("junk\n", error).has_value());
  EXPECT_FALSE(
      decode_wire_request("prts-solve-request v1\nsolver\n", error)
          .has_value());
}

TEST(WireCodec, PeerListParses) {
  const auto peers =
      parse_peer_list("127.0.0.1:7000,node-b:7001,10.0.0.3:7002");
  ASSERT_TRUE(peers.has_value());
  ASSERT_EQ(peers->size(), 3u);
  EXPECT_EQ((*peers)[0].host, "127.0.0.1");
  EXPECT_EQ((*peers)[0].port, 7000);
  EXPECT_EQ((*peers)[1].host, "node-b");
  EXPECT_EQ((*peers)[2].port, 7002);

  EXPECT_FALSE(parse_peer_list("").has_value());
  EXPECT_FALSE(parse_peer_list("no-port,127.0.0.1:1").has_value());
  EXPECT_FALSE(parse_peer_list("host:0").has_value());
  EXPECT_FALSE(parse_peer_list("host:99999").has_value());
  EXPECT_FALSE(parse_peer_list("host:76o1").has_value());  // trailing junk
}

// ------------------------------------------------------------ shard router

/// Latency bounds >= 1000 are effectively unconstrained for the tiny
/// test instances, so varying them mints distinct *solvable* cache keys;
/// this scans for one whose key lands on the wanted world-of-2 shard.
solver::Bounds bounds_on_shard(const Instance& instance,
                               const std::string& solver_name,
                               std::size_t shard, double salt = 0.0) {
  const CanonicalInstance canonical = canonicalize(instance);
  for (double latency = 1000.0 + salt; latency < 2000.0 + salt;
       latency += 1.0) {
    solver::Bounds bounds;
    bounds.latency_bound = latency;
    if (request_key(canonical, solver_name, bounds).hi % 2 == shard) {
      return bounds;
    }
  }
  ADD_FAILURE() << "no bounds found for shard " << shard;
  return {};
}

TEST(ShardRouterTest, WorldOfOneNeverTouchesTheNetwork) {
  SolveService service(small_config());
  RouterConfig config;
  config.world_size = 1;
  ShardRouter router(service, config);
  const SolveReply reply =
      router.submit(SolveRequest{hom_instance(), "heur-p", {}}).get();
  EXPECT_EQ(reply.status, ReplyStatus::kSolved);
  EXPECT_EQ(router.stats().local, 1u);
  EXPECT_EQ(router.stats().forwarded, 0u);
}

TEST(ShardRouterTest, RemoteShardForwardedSolvedOnceCachedOnOwner) {
  SolveService local(small_config());
  SolveService remote(small_config());
  ThreadPool server_pool(2);
  auto server =
      net::FrameServer::start(0, make_fabric_handler(remote), server_pool);
  ASSERT_NE(server, nullptr);

  RouterConfig config;
  config.world_size = 2;
  config.rank = 0;
  config.peers = {{"127.0.0.1", 1}, {"127.0.0.1", server->port()}};
  // Replica tier off: this test pins the *owner-cache* forwarding path
  // a repeat takes when replication cannot absorb it
  // (tests/test_fabric_replication.cpp covers the replica tier).
  config.replica.capacity_bytes = 0;
  ShardRouter router(local, config);

  const Instance instance = hom_instance();
  SolveRequest request{instance, "heur-p",
                       bounds_on_shard(instance, "heur-p", 1)};

  // Cold: forwarded, solved by the owner, not a hit anywhere.
  const SolveReply cold = router.submit(request).get();
  ASSERT_EQ(cold.status, ReplyStatus::kSolved);
  EXPECT_FALSE(cold.cache_hit);
  EXPECT_EQ(router.stats().forwarded, 1u);
  EXPECT_EQ(router.stats().local, 0u);
  EXPECT_EQ(remote.stats().submitted, 1u);
  EXPECT_EQ(local.stats().submitted, 0u);

  // Repeat: forwarded again and answered from the owner's cache.
  const SolveReply warm = router.submit(request).get();
  ASSERT_EQ(warm.status, ReplyStatus::kSolved);
  EXPECT_TRUE(warm.cache_hit);
  EXPECT_EQ(router.stats().forwarded, 2u);
  EXPECT_EQ(router.stats().forward_hits, 1u);
  EXPECT_EQ(remote.stats().cache_hits, 1u);
  // Bit-identical replay through the wire.
  EXPECT_EQ(warm.solution->mapping, cold.solution->mapping);
  EXPECT_EQ(warm.solution->metrics, cold.solution->metrics);

  // A local-shard request never leaves the process.
  SolveRequest local_request{instance, "heur-p",
                             bounds_on_shard(instance, "heur-p", 0)};
  const SolveReply local_reply = router.submit(local_request).get();
  ASSERT_EQ(local_reply.status, ReplyStatus::kSolved);
  EXPECT_EQ(router.stats().local, 1u);
  EXPECT_EQ(local.stats().submitted, 1u);
}

TEST(ShardRouterTest, InFlightForwardsDeduplicate) {
  std::promise<void> gate;
  solver::SolverRegistry registry;
  registry.add(std::make_shared<GatedSolver>(gate.get_future().share()));

  ServiceConfig remote_config;
  remote_config.threads = 2;
  remote_config.registry = &registry;
  SolveService local(small_config());
  SolveService remote(remote_config);
  ThreadPool server_pool(2);
  auto server =
      net::FrameServer::start(0, make_fabric_handler(remote), server_pool);
  ASSERT_NE(server, nullptr);

  RouterConfig config;
  config.world_size = 2;
  config.rank = 0;
  config.peers = {{"127.0.0.1", 1}, {"127.0.0.1", server->port()}};
  ShardRouter router(local, config);

  const Instance instance = hom_instance();
  SolveRequest request{instance, "gated",
                       bounds_on_shard(instance, "gated", 1)};

  // First submit opens the forward; the owner blocks on the gate, so
  // the identical second submit must attach, not forward again.
  std::future<SolveReply> first = router.submit(request);
  std::future<SolveReply> second = router.submit(request);
  EXPECT_EQ(router.stats().deduplicated, 1u);
  gate.set_value();

  const SolveReply a = first.get();
  const SolveReply b = second.get();
  ASSERT_EQ(a.status, ReplyStatus::kSolved);
  ASSERT_EQ(b.status, ReplyStatus::kSolved);
  EXPECT_FALSE(a.deduplicated);
  EXPECT_TRUE(b.deduplicated);
  EXPECT_EQ(a.solution->metrics, b.solution->metrics);
  EXPECT_EQ(router.stats().forwarded, 1u);
  EXPECT_EQ(remote.stats().submitted, 1u);  // one network solve total
}

TEST(ShardRouterTest, IsomorphicTwinsGetOwnLabelsThroughForward) {
  SolveService local(small_config());
  SolveService remote(small_config());
  ThreadPool server_pool(2);
  auto server =
      net::FrameServer::start(0, make_fabric_handler(remote), server_pool);
  ASSERT_NE(server, nullptr);

  RouterConfig config;
  config.world_size = 2;
  config.rank = 0;
  config.peers = {{"127.0.0.1", 1}, {"127.0.0.1", server->port()}};
  ShardRouter router(local, config);

  // Isomorphic instances share one canonical key, hence one shard.
  const Instance original = het_instance();
  const Instance permuted = het_instance_permuted();
  const solver::Bounds bounds = bounds_on_shard(original, "heur-p", 1);

  const SolveReply first =
      router.submit(SolveRequest{original, "heur-p", bounds}).get();
  const SolveReply second =
      router.submit(SolveRequest{permuted, "heur-p", bounds}).get();
  ASSERT_EQ(first.status, ReplyStatus::kSolved);
  ASSERT_EQ(second.status, ReplyStatus::kSolved);
  EXPECT_EQ(first.key, second.key);
  EXPECT_TRUE(second.cache_hit);  // owner answered the twin from cache
  // Metrics are label-invariant and bit-identical; each mapping is
  // valid on its *own* platform.
  EXPECT_EQ(first.solution->metrics, second.solution->metrics);
  EXPECT_FALSE(
      first.solution->mapping.validate(original.platform).has_value());
  EXPECT_FALSE(
      second.solution->mapping.validate(permuted.platform).has_value());
}

TEST(ShardRouterTest, PeerDeathDegradesToLocalSolveWithoutErrors) {
  SolveService local(small_config());
  SolveService remote(small_config());
  ThreadPool server_pool(2);
  auto server =
      net::FrameServer::start(0, make_fabric_handler(remote), server_pool);
  ASSERT_NE(server, nullptr);

  RouterConfig config;
  config.world_size = 2;
  config.rank = 0;
  config.peers = {{"127.0.0.1", 1}, {"127.0.0.1", server->port()}};
  config.client.connect_timeout_seconds = 0.5;
  config.client.backoff_initial_seconds = 0.05;
  ShardRouter router(local, config);

  const Instance instance = hom_instance();
  const SolveReply before =
      router
          .submit(SolveRequest{instance, "heur-p",
                               bounds_on_shard(instance, "heur-p", 1)})
          .get();
  ASSERT_EQ(before.status, ReplyStatus::kSolved);
  EXPECT_EQ(router.stats().forwarded, 1u);

  // Kill the peer mid-run: remote-shard keys must degrade to local
  // solves, statuses stay clean.
  server->stop();
  const SolveReply after =
      router
          .submit(SolveRequest{instance, "heur-p",
                               bounds_on_shard(instance, "heur-p", 1,
                                               /*salt=*/5000.0)})
          .get();
  ASSERT_EQ(after.status, ReplyStatus::kSolved);
  const RouterStats stats = router.stats();
  EXPECT_EQ(stats.forward_failures, 1u);
  EXPECT_EQ(stats.local_fallbacks, 1u);
  EXPECT_GE(local.stats().submitted, 1u);
  EXPECT_TRUE(router.peer_suspect(1));
}

// ------------------------------------------------- campaign x service

scenario::CampaignSpec small_campaign(bool het) {
  scenario::CampaignSpec spec;
  spec.name = "fusion-test";
  spec.instances = 2;
  spec.repetitions = 1;
  spec.seed = 7;
  spec.chain.task_count = 6;
  spec.platform.kind =
      het ? scenario::PlatformKind::kHet : scenario::PlatformKind::kHom;
  spec.platform.processors = 4;
  spec.sweep.kind = scenario::SweepKind::kPeriod;
  spec.sweep.lo = 40.0;
  spec.sweep.hi = 120.0;
  spec.sweep.step = 40.0;
  spec.solvers = {"heur-p", "heur-l"};
  return spec;
}

std::string figure_tsv(const scenario::CampaignResult& result) {
  std::ostringstream out;
  scenario::write_tsv(out, result.figure);
  return out.str();
}

TEST(CampaignFusion, MatchesPlainCampaignOnHomogeneousPlatform) {
  const scenario::CampaignSpec spec = small_campaign(/*het=*/false);
  scenario::CampaignConfig config;
  config.threads = 2;
  const scenario::CampaignResult plain =
      scenario::run_campaign(spec, config);

  ServiceConfig service_config;
  service_config.threads = 2;
  SolveService service(service_config);
  const scenario::CampaignResult fused =
      run_campaign_via_service(spec, service);

  // Homogeneous canonicalization is the identity, so the fused sweep is
  // byte-identical to the classic engine's.
  EXPECT_EQ(figure_tsv(fused), figure_tsv(plain));
  EXPECT_EQ(fused.jobs, plain.jobs);
  EXPECT_GT(service.stats().submitted, 0u);
}

TEST(CampaignFusion, WarmServiceReplaysByteIdentical) {
  const scenario::CampaignSpec spec = small_campaign(/*het=*/true);
  ServiceConfig service_config;
  service_config.threads = 2;
  SolveService service(service_config);

  const std::string cold = figure_tsv(run_campaign_via_service(spec, service));
  const auto cold_hits = service.stats().cache_hits;
  const std::string warm = figure_tsv(run_campaign_via_service(spec, service));

  // The second sweep is served from the cross-run cache and still
  // reproduces the exact bytes (cache replay is bit-identical).
  EXPECT_EQ(warm, cold);
  EXPECT_GT(service.stats().cache_hits, cold_hits);
}

TEST(CampaignFusion, UnknownSolverThrowsLikeTheClassicEngine) {
  scenario::CampaignSpec spec = small_campaign(false);
  spec.solvers = {"definitely-not-a-solver"};
  ServiceConfig config;
  config.threads = 1;
  SolveService service(config);
  EXPECT_THROW(run_campaign_via_service(spec, service),
               std::invalid_argument);
}

}  // namespace
}  // namespace prts::service
