// The request engine: cache hits replay bit-identical solutions,
// isomorphic requests share entries, in-flight twins deduplicate,
// compatible requests batch onto one prepared session, and admission
// control rejects or downgrades.
#include "service/engine.hpp"

#include <gtest/gtest.h>

#include <future>
#include <sstream>

#include "eval/evaluation.hpp"
#include "service/protocol.hpp"
#include "solver/adapters.hpp"

namespace prts::service {
namespace {

Instance hom_instance() {
  std::vector<Task> tasks{{10.0, 2.0}, {4.0, 1.0}, {20.0, 1.0}, {6.0, 0.0}};
  return Instance{TaskChain(std::move(tasks)),
                  Platform::homogeneous(5, 1.0, 1e-8, 1.0, 1e-5, 2)};
}

Instance het_instance() {
  std::vector<Task> tasks{{10.0, 2.0}, {4.0, 1.0}, {20.0, 0.0}};
  std::vector<Processor> procs{{3.0, 1e-8}, {1.0, 2e-8}, {2.0, 1e-8},
                               {5.0, 4e-8}};
  return Instance{TaskChain(std::move(tasks)),
                  Platform(std::move(procs), 1.0, 1e-5, 2)};
}

/// het_instance with its processor list rotated: isomorphic, different
/// labels.
Instance het_instance_permuted() {
  const Instance base = het_instance();
  std::vector<Processor> procs;
  const std::size_t p = base.platform.processor_count();
  for (std::size_t u = 0; u < p; ++u) {
    procs.push_back(base.platform.processor((u + 1) % p));
  }
  return Instance{base.chain, Platform(std::move(procs), 1.0, 1e-5, 2)};
}

/// A solver that blocks until the test opens its gate — the lever for
/// deterministic dedup/batching tests. Delegates the actual answer to
/// heur-p so solutions are real.
class GatedSolver final : public solver::Solver {
 public:
  explicit GatedSolver(std::shared_future<void> gate)
      : gate_(std::move(gate)),
        inner_(solver::make_heuristic_solver(HeuristicKind::kHeurP, false)) {}

  std::string name() const override { return "gated"; }

  std::optional<solver::Solution> solve(
      const Instance& instance, const solver::Bounds& bounds) const override {
    gate_.wait();
    return inner_->solve(instance, bounds);
  }

 private:
  std::shared_future<void> gate_;
  std::shared_ptr<const solver::Solver> inner_;
};

ServiceConfig small_config() {
  ServiceConfig config;
  config.threads = 2;
  return config;
}

TEST(SolveService, ColdSolveThenBitIdenticalCacheHit) {
  SolveService service(small_config());
  SolveRequest request{hom_instance(), "exact", {}, 1e9,
                       DeadlinePolicy::kReject};

  const SolveReply cold = service.submit(request).get();
  ASSERT_EQ(cold.status, ReplyStatus::kSolved);
  EXPECT_FALSE(cold.cache_hit);
  EXPECT_EQ(cold.solver_used, "exact");
  ASSERT_TRUE(cold.solution.has_value());

  const SolveReply warm = service.submit(request).get();
  ASSERT_EQ(warm.status, ReplyStatus::kSolved);
  EXPECT_TRUE(warm.cache_hit);
  // The acceptance guarantee: a cache hit replays the cold solve
  // bit-for-bit — same mapping, exactly equal metric doubles.
  EXPECT_EQ(warm.solution->mapping, cold.solution->mapping);
  EXPECT_EQ(warm.solution->metrics, cold.solution->metrics);
  EXPECT_EQ(warm.key, cold.key);

  const EngineStats stats = service.stats();
  EXPECT_EQ(stats.submitted, 2u);
  EXPECT_EQ(stats.cache_hits, 1u);
}

TEST(SolveService, IsomorphicRequestsShareOneCacheEntry) {
  SolveService service(small_config());
  const SolveReply cold =
      service.submit(SolveRequest{het_instance(), "heur-p", {}}).get();
  ASSERT_EQ(cold.status, ReplyStatus::kSolved);

  const Instance permuted = het_instance_permuted();
  const SolveReply warm =
      service.submit(SolveRequest{permuted, "heur-p", {}}).get();
  ASSERT_EQ(warm.status, ReplyStatus::kSolved);
  EXPECT_TRUE(warm.cache_hit);
  // Same canonical solve, translated into each request's own labels:
  // metrics identical, mapping valid for the permuted platform.
  EXPECT_EQ(warm.solution->metrics, cold.solution->metrics);
  EXPECT_EQ(warm.solution->mapping.validate(permuted.platform),
            std::nullopt);
}

TEST(SolveService, InfeasibleAnswersAreCachedToo) {
  SolveService service(small_config());
  SolveRequest request{hom_instance(), "exact", {}};
  request.bounds.period_bound = 1e-3;  // unreachable

  const SolveReply cold = service.submit(request).get();
  EXPECT_EQ(cold.status, ReplyStatus::kInfeasible);
  const SolveReply warm = service.submit(request).get();
  EXPECT_EQ(warm.status, ReplyStatus::kInfeasible);
  EXPECT_TRUE(warm.cache_hit);
}

TEST(SolveService, UnknownSolverIsAnErrorReply) {
  SolveService service(small_config());
  const SolveReply reply =
      service.submit(SolveRequest{hom_instance(), "no-such-solver", {}})
          .get();
  EXPECT_EQ(reply.status, ReplyStatus::kError);
  EXPECT_NE(reply.error.find("no-such-solver"), std::string::npos);
  EXPECT_EQ(service.stats().errors, 1u);
}

TEST(SolveService, QueueDepthZeroRejectsEverything) {
  ServiceConfig config = small_config();
  config.max_queue_depth = 0;
  SolveService service(config);
  const SolveReply reply =
      service.submit(SolveRequest{hom_instance(), "exact", {}}).get();
  EXPECT_EQ(reply.status, ReplyStatus::kRejectedQueue);
  EXPECT_EQ(service.stats().rejected_queue, 1u);
}

TEST(SolveService, ExpiredDeadlineRejectsUnderRejectPolicy) {
  SolveService service(small_config());
  SolveRequest request{hom_instance(), "exact", {}, 0.0,
                       DeadlinePolicy::kReject};
  const SolveReply reply = service.submit(request).get();
  EXPECT_EQ(reply.status, ReplyStatus::kRejectedDeadline);
  EXPECT_EQ(service.stats().rejected_deadline, 1u);
}

TEST(SolveService, ExpiredDeadlineDowngradesToFallbackAndSkipsCache) {
  SolveService service(small_config());
  SolveRequest request{hom_instance(), "exact", {}, 0.0,
                       DeadlinePolicy::kDowngrade};
  const SolveReply reply = service.submit(request).get();
  ASSERT_EQ(reply.status, ReplyStatus::kSolved);
  EXPECT_TRUE(reply.downgraded);
  EXPECT_EQ(reply.solver_used, "heur-p");
  EXPECT_EQ(service.stats().downgraded, 1u);
  // Downgraded answers must not poison the 'exact' cache key.
  EXPECT_EQ(service.cache_stats().insertions, 0u);
  const SolveReply again = service.submit(request).get();
  EXPECT_FALSE(again.cache_hit);
  EXPECT_TRUE(again.downgraded);
}

TEST(SolveService, IdenticalInFlightRequestsDeduplicate) {
  std::promise<void> gate;
  solver::SolverRegistry registry;
  registry.add(std::make_shared<GatedSolver>(gate.get_future().share()));

  ServiceConfig config;
  config.registry = &registry;
  config.threads = 1;
  SolveService service(config);

  SolveRequest request{hom_instance(), "gated", {}};
  std::future<SolveReply> first = service.submit(request);
  std::future<SolveReply> second = service.submit(request);
  EXPECT_EQ(service.stats().deduplicated, 1u);

  gate.set_value();
  const SolveReply a = first.get();
  const SolveReply b = second.get();
  ASSERT_EQ(a.status, ReplyStatus::kSolved);
  ASSERT_EQ(b.status, ReplyStatus::kSolved);
  EXPECT_FALSE(a.deduplicated);
  EXPECT_TRUE(b.deduplicated);
  EXPECT_EQ(a.solution->mapping, b.solution->mapping);
  EXPECT_EQ(a.solution->metrics, b.solution->metrics);
  // One solve, one cache entry.
  EXPECT_EQ(service.cache_stats().insertions, 1u);
}

TEST(SolveService, DeduplicatedIsomorphicTwinsGetTheirOwnLabels) {
  std::promise<void> gate;
  solver::SolverRegistry registry;
  registry.add(std::make_shared<GatedSolver>(gate.get_future().share()));

  ServiceConfig config;
  config.registry = &registry;
  config.threads = 1;
  SolveService service(config);

  const Instance original = het_instance();
  const Instance permuted = het_instance_permuted();
  std::future<SolveReply> first =
      service.submit(SolveRequest{original, "gated", {}});
  std::future<SolveReply> second =
      service.submit(SolveRequest{permuted, "gated", {}});
  EXPECT_EQ(service.stats().deduplicated, 1u);

  gate.set_value();
  const SolveReply a = first.get();
  const SolveReply b = second.get();
  ASSERT_EQ(a.status, ReplyStatus::kSolved);
  ASSERT_EQ(b.status, ReplyStatus::kSolved);
  EXPECT_EQ(a.solution->metrics, b.solution->metrics);
  // One shared solve, but each reply speaks its own platform's labels:
  // interval replicas must name processors with the same physical
  // (speed, rate) characteristics in both label spaces.
  const Mapping& ma = a.solution->mapping;
  const Mapping& mb = b.solution->mapping;
  ASSERT_EQ(ma.interval_count(), mb.interval_count());
  for (std::size_t j = 0; j < ma.interval_count(); ++j) {
    std::vector<double> speeds_a;
    std::vector<double> speeds_b;
    for (const std::size_t u : ma.processors(j)) {
      speeds_a.push_back(original.platform.speed(u));
    }
    for (const std::size_t u : mb.processors(j)) {
      speeds_b.push_back(permuted.platform.speed(u));
    }
    std::sort(speeds_a.begin(), speeds_a.end());
    std::sort(speeds_b.begin(), speeds_b.end());
    EXPECT_EQ(speeds_a, speeds_b) << "interval " << j;
  }
}

TEST(SolveService, PatientDedupWaiterKeepsAnExpiredTwinAlive) {
  std::promise<void> gate;
  solver::SolverRegistry registry;
  registry.add(std::make_shared<GatedSolver>(gate.get_future().share()));

  ServiceConfig config;
  config.registry = &registry;
  config.threads = 1;
  SolveService service(config);

  // Occupy the single worker so both requests below are pending when
  // their batch finally runs.
  std::future<SolveReply> blocker =
      service.submit(SolveRequest{het_instance(), "gated", {}});

  // First submitter: already-expired deadline, reject policy. Its twin
  // has no deadline — the query must be solved for real, not rejected
  // on the first submitter's options.
  SolveRequest impatient{hom_instance(), "gated", {}, 0.0,
                         DeadlinePolicy::kReject};
  SolveRequest patient{hom_instance(), "gated", {}};
  std::future<SolveReply> first = service.submit(impatient);
  std::future<SolveReply> second = service.submit(patient);
  EXPECT_EQ(service.stats().deduplicated, 1u);

  gate.set_value();
  EXPECT_EQ(blocker.get().status, ReplyStatus::kSolved);
  const SolveReply a = first.get();
  const SolveReply b = second.get();
  // The live waiter forced a real solve; the expired twin shares it.
  EXPECT_EQ(a.status, ReplyStatus::kSolved);
  EXPECT_EQ(b.status, ReplyStatus::kSolved);
  EXPECT_FALSE(a.downgraded);
  EXPECT_FALSE(b.downgraded);
  EXPECT_EQ(service.stats().rejected_deadline, 0u);
}

TEST(SolveService, AllExpiredMixedPoliciesSplitPerWaiter) {
  std::promise<void> gate;
  solver::SolverRegistry registry;
  registry.add(std::make_shared<GatedSolver>(gate.get_future().share()));
  // The downgrade target must exist in the service's registry.
  registry.add(solver::make_heuristic_solver(HeuristicKind::kHeurP, false));

  ServiceConfig config;
  config.registry = &registry;
  config.threads = 1;
  SolveService service(config);

  std::future<SolveReply> blocker =
      service.submit(SolveRequest{het_instance(), "gated", {}});

  // Both waiters expired: the downgrade waiter gets the fallback
  // answer, the reject waiter a rejection — per-waiter statuses.
  SolveRequest wants_fallback{hom_instance(), "gated", {}, 0.0,
                              DeadlinePolicy::kDowngrade};
  SolveRequest wants_reject = wants_fallback;
  wants_reject.deadline_policy = DeadlinePolicy::kReject;
  std::future<SolveReply> first = service.submit(wants_fallback);
  std::future<SolveReply> second = service.submit(wants_reject);

  gate.set_value();
  EXPECT_EQ(blocker.get().status, ReplyStatus::kSolved);
  const SolveReply a = first.get();
  const SolveReply b = second.get();
  ASSERT_EQ(a.status, ReplyStatus::kSolved);
  EXPECT_TRUE(a.downgraded);
  EXPECT_EQ(a.solver_used, "heur-p");
  EXPECT_EQ(b.status, ReplyStatus::kRejectedDeadline);
  EXPECT_EQ(service.stats().downgraded, 1u);
  EXPECT_EQ(service.stats().rejected_deadline, 1u);
  // The fallback answer must not be cached under the 'gated' key.
  EXPECT_EQ(service.cache_stats().insertions, 1u);  // blocker only
}

TEST(SolveService, CompatibleRequestsShareOneBatch) {
  std::promise<void> gate;
  solver::SolverRegistry registry;
  registry.add(std::make_shared<GatedSolver>(gate.get_future().share()));

  ServiceConfig config;
  config.registry = &registry;
  config.threads = 1;  // FIFO: the blocker below owns the only worker
  SolveService service(config);

  // Occupy the worker so the next two submits stay queued in one open
  // batch (same instance + solver, different bounds).
  std::future<SolveReply> blocker =
      service.submit(SolveRequest{het_instance(), "gated", {}});

  SolveRequest loose{hom_instance(), "gated", {}};
  SolveRequest tight = loose;
  tight.bounds.period_bound = 1e-3;
  std::future<SolveReply> first = service.submit(loose);
  std::future<SolveReply> second = service.submit(tight);

  gate.set_value();
  EXPECT_EQ(blocker.get().status, ReplyStatus::kSolved);
  EXPECT_EQ(first.get().status, ReplyStatus::kSolved);
  EXPECT_EQ(second.get().status, ReplyStatus::kInfeasible);

  const EngineStats stats = service.stats();
  EXPECT_EQ(stats.batches, 2u);           // blocker + the shared batch
  EXPECT_EQ(stats.batched_requests, 1u);  // `tight` joined `loose`
}

TEST(ServeProtocol, ScriptedSessionWithRepeatsAndErrors) {
  ServiceConfig config = small_config();
  SolveService service(config);

  std::istringstream in(
      "# a scripted session\n"
      "instance a\n"
      "prts-instance v1\n"
      "tasks 2\n"
      "10 1\n"
      "5 0\n"
      "platform 3 1 1e-05 2\n"
      "1 1e-08\n"
      "1 1e-08\n"
      "1 1e-08\n"
      "end\n"
      "solve a exact inf inf\n"
      "sync\n"
      "solve a exact inf inf\n"
      "solve nope exact inf inf\n"
      "bogus-command\n"
      "sync\n"
      "stats\n");
  std::ostringstream out;
  const ServeResult result = run_serve(in, out, service);

  EXPECT_EQ(result.requests, 2u);
  EXPECT_EQ(result.protocol_errors, 2u);  // unknown instance + command

  const std::string text = out.str();
  // Request 0 solved cold, request 1 is a cache hit after the sync.
  EXPECT_NE(text.find("0\tsolved\t0"), std::string::npos);
  EXPECT_NE(text.find("1\tsolved\t1"), std::string::npos);
  EXPECT_NE(text.find("# error: solve: unknown instance 'nope'"),
            std::string::npos);
  EXPECT_NE(text.find("# engine {\"submitted\":2"), std::string::npos);
  EXPECT_NE(text.find("\"cache_hits\":1"), std::string::npos);
}

TEST(ServeProtocol, RepliesComeBackInSubmissionOrder) {
  SolveService service(small_config());
  std::istringstream in(
      "instance a\n"
      "prts-instance v1\n"
      "tasks 2\n"
      "10 1\n"
      "5 0\n"
      "platform 2 1 1e-05 2\n"
      "1 1e-08\n"
      "1 1e-08\n"
      "end\n"
      "solve a heur-p inf inf\n"
      "solve a heur-l inf inf\n"
      "solve a baseline inf inf\n");
  std::ostringstream out;
  run_serve(in, out, service);
  const std::string text = out.str();
  ASSERT_EQ(text.rfind("0\t", 0), 0u);  // reply 0 leads the output
  const std::size_t p1 = text.find("\n1\t");
  const std::size_t p2 = text.find("\n2\t");
  ASSERT_NE(p1, std::string::npos);
  ASSERT_NE(p2, std::string::npos);
  EXPECT_LT(p1, p2);
}

}  // namespace
}  // namespace prts::service
