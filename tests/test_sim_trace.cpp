#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <vector>

#include "sim/pipeline_sim.hpp"
#include "test_util.hpp"

namespace prts::sim {
namespace {

struct Recorded {
  std::vector<TraceEvent> events;
  TraceObserver observer;

  Recorded() {
    observer = [this](const TraceEvent& event) { events.push_back(event); };
  }
};

struct Fixture {
  TaskChain chain{std::vector<Task>{{4.0, 2.0}, {6.0, 4.0}, {2.0, 0.0}}};
  Platform platform = Platform::homogeneous(3, 1.0, 0.0, 1.0, 0.0, 2);
  Mapping mapping{IntervalPartition::singletons(3), {{0}, {1}, {2}}};
};

SimulationResult run_traced(const Fixture& fx, Recorded& rec,
                            std::size_t datasets, bool failures = false,
                            bool routing = false) {
  SimulationConfig config;
  config.dataset_count = datasets;
  config.input_period = 20.0;
  config.inject_failures = failures;
  config.use_routing = routing;
  config.observer = &rec.observer;
  config.seed = 9;
  return simulate_pipeline(fx.chain, fx.platform, fx.mapping, config);
}

TEST(SimTrace, ReleaseAndCompletePerDataset) {
  const Fixture fx;
  Recorded rec;
  const auto result = run_traced(fx, rec, 5);
  std::size_t releases = 0;
  std::size_t completes = 0;
  for (const auto& event : rec.events) {
    if (event.kind == TraceEvent::Kind::kRelease) ++releases;
    if (event.kind == TraceEvent::Kind::kComplete) ++completes;
  }
  EXPECT_EQ(releases, 5u);
  EXPECT_EQ(completes, result.successes);
}

TEST(SimTrace, ComputeWindowsDoNotOverlapPerProcessor) {
  const Fixture fx;
  Recorded rec;
  run_traced(fx, rec, 10);
  // Pair starts and ends per processor; windows must be disjoint.
  std::map<std::size_t, std::vector<std::pair<double, double>>> windows;
  std::map<std::size_t, double> open;
  for (const auto& event : rec.events) {
    if (event.kind == TraceEvent::Kind::kComputeStart) {
      open[event.processor] = event.time;
    } else if (event.kind == TraceEvent::Kind::kComputeEnd) {
      windows[event.processor].emplace_back(open[event.processor],
                                            event.time);
    }
  }
  for (auto& [proc, intervals] : windows) {
    std::sort(intervals.begin(), intervals.end());
    for (std::size_t i = 1; i < intervals.size(); ++i) {
      EXPECT_GE(intervals[i].first, intervals[i - 1].second - 1e-9)
          << "processor " << proc;
    }
  }
}

TEST(SimTrace, EventTimesAreCausalPerDataset) {
  const Fixture fx;
  Recorded rec;
  run_traced(fx, rec, 3);
  // For each dataset: release <= first compute start; every compute end
  // >= its start; completion is the max observed time.
  std::map<std::size_t, double> release_time;
  std::map<std::size_t, double> complete_time;
  for (const auto& event : rec.events) {
    if (event.kind == TraceEvent::Kind::kRelease) {
      release_time[event.dataset] = event.time;
    }
    if (event.kind == TraceEvent::Kind::kComplete) {
      complete_time[event.dataset] = event.time;
    }
  }
  for (const auto& event : rec.events) {
    EXPECT_GE(event.time, release_time[event.dataset] - 1e-9);
    if (complete_time.count(event.dataset)) {
      EXPECT_LE(event.time, complete_time[event.dataset] + 1e-9);
    }
  }
}

TEST(SimTrace, FailedComputesAreVisible) {
  const Fixture fx;
  Recorded rec;
  // Huge rates: most computes fail, and the trace must say so.
  const Platform flaky = Platform::homogeneous(3, 1.0, 0.5, 1.0, 0.0, 2);
  SimulationConfig config;
  config.dataset_count = 50;
  config.input_period = 20.0;
  config.observer = &rec.observer;
  config.seed = 4;
  const auto result =
      simulate_pipeline(fx.chain, flaky, fx.mapping, config);
  std::size_t failed_computes = 0;
  for (const auto& event : rec.events) {
    if (event.kind == TraceEvent::Kind::kComputeEnd && !event.success) {
      ++failed_computes;
    }
  }
  EXPECT_GT(failed_computes, 0u);
  EXPECT_LT(result.successes, result.datasets);
}

TEST(SimTrace, RouterTransfersHaveNoProcessor) {
  const Fixture fx;
  Recorded rec;
  run_traced(fx, rec, 2, false, true);
  bool saw_router_transfer = false;
  for (const auto& event : rec.events) {
    if (event.kind == TraceEvent::Kind::kTransferStart &&
        event.processor == TraceEvent::kNone) {
      saw_router_transfer = true;
    }
  }
  EXPECT_TRUE(saw_router_transfer);
}

TEST(SimTrace, NullObserverIsSilent) {
  const Fixture fx;
  SimulationConfig config;
  config.dataset_count = 3;
  config.input_period = 20.0;
  config.observer = nullptr;
  const auto result =
      simulate_pipeline(fx.chain, fx.platform, fx.mapping, config);
  EXPECT_EQ(result.successes, 3u);
}

TEST(SimTrace, TraceMatchesResultLatency) {
  const Fixture fx;
  Recorded rec;
  const auto result = run_traced(fx, rec, 1);
  double release = -1.0;
  double complete = -1.0;
  for (const auto& event : rec.events) {
    if (event.kind == TraceEvent::Kind::kRelease) release = event.time;
    if (event.kind == TraceEvent::Kind::kComplete) complete = event.time;
  }
  ASSERT_GE(release, 0.0);
  ASSERT_GE(complete, 0.0);
  EXPECT_NEAR(result.latency.mean(), complete - release, 1e-9);
}

}  // namespace
}  // namespace prts::sim
