// Tiny exhaustive oracles for cross-validating the optimization
// algorithms: enumerate every partition and every replica-count vector.
// Exponential, so only usable at n <= ~8, p <= ~8.
#pragma once

#include <limits>
#include <optional>
#include <vector>

#include "eval/evaluation.hpp"
#include "model/mapping.hpp"
#include "model/platform.hpp"
#include "model/task_chain.hpp"

namespace prts::testutil {

/// Best Eq. (9) log-reliability over every mapping (partition x replica
/// counts; processor identities are irrelevant on homogeneous platforms)
/// subject to worst-case period and latency bounds. nullopt if none fits.
inline std::optional<double> brute_force_best_log_reliability(
    const TaskChain& chain, const Platform& platform,
    double period_bound = std::numeric_limits<double>::infinity(),
    double latency_bound = std::numeric_limits<double>::infinity()) {
  const std::size_t n = chain.size();
  const std::size_t p = platform.processor_count();
  std::optional<double> best;

  std::vector<std::size_t> lasts;
  // Enumerate partitions by choosing interval ends, then replica vectors.
  auto try_counts = [&](auto&& self, const std::vector<std::size_t>& ends,
                        std::vector<std::size_t>& counts,
                        std::size_t used) -> void {
    const std::size_t j = counts.size();
    if (j == ends.size()) {
      std::vector<std::vector<std::size_t>> procs;
      std::size_t next = 0;
      for (std::size_t q : counts) {
        std::vector<std::size_t> set(q);
        for (std::size_t r = 0; r < q; ++r) set[r] = next++;
        procs.push_back(std::move(set));
      }
      const Mapping mapping(IntervalPartition::from_boundaries(ends, n),
                            std::move(procs));
      const MappingMetrics metrics = evaluate(chain, platform, mapping);
      if (metrics.worst_period > period_bound ||
          metrics.worst_latency > latency_bound) {
        return;
      }
      const double value = metrics.reliability.log();
      if (!best || value > *best) best = value;
      return;
    }
    for (std::size_t q = 1;
         q <= platform.max_replication() && used + q <= p; ++q) {
      counts.push_back(q);
      self(self, ends, counts, used + q);
      counts.pop_back();
    }
  };

  auto recurse = [&](auto&& self, std::size_t first) -> void {
    for (std::size_t last = first; last < n; ++last) {
      lasts.push_back(last);
      if (last + 1 == n) {
        if (lasts.size() <= p) {
          std::vector<std::size_t> counts;
          try_counts(try_counts, lasts, counts, 0);
        }
      } else if (lasts.size() < p) {
        self(self, last + 1);
      }
      lasts.pop_back();
    }
  };
  recurse(recurse, 0);
  return best;
}

}  // namespace prts::testutil
