#include "common/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <cmath>
#include <set>
#include <vector>

namespace prts {
namespace {

TEST(Rng, SameSeedSameStream) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a() == b()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(Rng, SplitMix64KnownValues) {
  // Reference values from the public-domain splitmix64 with seed 0.
  std::uint64_t state = 0;
  EXPECT_EQ(splitmix64_next(state), 0xe220a8397b1dcdafULL);
  EXPECT_EQ(splitmix64_next(state), 0x6e789e6aa1b965f4ULL);
  EXPECT_EQ(splitmix64_next(state), 0x06c45d188009454fULL);
}

TEST(Rng, UniformIntStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const std::int64_t x = rng.uniform_int(-5, 17);
    EXPECT_GE(x, -5);
    EXPECT_LE(x, 17);
  }
}

TEST(Rng, UniformIntSingletonRange) {
  Rng rng(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.uniform_int(42, 42), 42);
}

TEST(Rng, UniformIntCoversAllValues) {
  Rng rng(11);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 2000; ++i) seen.insert(rng.uniform_int(1, 10));
  EXPECT_EQ(seen.size(), 10u);
}

TEST(Rng, UniformIntRoughlyUniform) {
  Rng rng(13);
  std::array<int, 8> buckets{};
  const int draws = 80000;
  for (int i = 0; i < draws; ++i) {
    buckets[static_cast<std::size_t>(rng.uniform_int(0, 7))]++;
  }
  for (int count : buckets) {
    EXPECT_NEAR(count, draws / 8, draws / 8 / 5);  // within 20%
  }
}

TEST(Rng, Uniform01InHalfOpenRange) {
  Rng rng(17);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform01();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, Uniform01MeanNearHalf) {
  Rng rng(19);
  double sum = 0.0;
  const int draws = 100000;
  for (int i = 0; i < draws; ++i) sum += rng.uniform01();
  EXPECT_NEAR(sum / draws, 0.5, 0.01);
}

TEST(Rng, UniformRealRespectsBounds) {
  Rng rng(23);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.uniform_real(2.5, 7.25);
    EXPECT_GE(x, 2.5);
    EXPECT_LT(x, 7.25);
  }
}

TEST(Rng, ExponentialMeanMatchesRate) {
  Rng rng(29);
  const double rate = 4.0;
  double sum = 0.0;
  const int draws = 200000;
  for (int i = 0; i < draws; ++i) sum += rng.exponential(rate);
  EXPECT_NEAR(sum / draws, 1.0 / rate, 0.01);
}

TEST(Rng, ExponentialIsPositive) {
  Rng rng(31);
  for (int i = 0; i < 10000; ++i) EXPECT_GT(rng.exponential(0.5), 0.0);
}

TEST(Rng, BernoulliProbabilityZeroAndOne) {
  Rng rng(37);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
  }
}

TEST(Rng, BernoulliFrequencyMatches) {
  Rng rng(41);
  int hits = 0;
  const int draws = 100000;
  for (int i = 0; i < draws; ++i) {
    if (rng.bernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(hits / static_cast<double>(draws), 0.3, 0.01);
}

TEST(Rng, SplitProducesIndependentStream) {
  Rng parent(43);
  Rng child = parent.split();
  // The child stream should not coincide with the parent's continuation.
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (parent() == child()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, SatisfiesUniformRandomBitGenerator) {
  static_assert(std::uniform_random_bit_generator<Rng>);
  EXPECT_EQ(Rng::min(), 0u);
  EXPECT_EQ(Rng::max(), ~0ULL);
}

}  // namespace
}  // namespace prts
