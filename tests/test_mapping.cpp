#include "model/mapping.hpp"

#include <gtest/gtest.h>

#include <array>
#include <stdexcept>

#include "model/constraints.hpp"

namespace prts {
namespace {

IntervalPartition two_intervals() {
  const std::array<std::size_t, 2> lasts{1, 3};
  return IntervalPartition::from_boundaries(lasts, 4);
}

TEST(Mapping, BasicAccessors) {
  const Mapping mapping(two_intervals(), {{0, 1}, {2}});
  EXPECT_EQ(mapping.interval_count(), 2u);
  ASSERT_EQ(mapping.processors(0).size(), 2u);
  EXPECT_EQ(mapping.processors(0)[0], 0u);
  EXPECT_EQ(mapping.processors(1)[0], 2u);
  EXPECT_EQ(mapping.processors_used(), 3u);
  EXPECT_DOUBLE_EQ(mapping.replication_level(), 1.5);
}

TEST(Mapping, SortsProcessorIds) {
  const Mapping mapping(two_intervals(), {{3, 1}, {0}});
  EXPECT_EQ(mapping.processors(0)[0], 1u);
  EXPECT_EQ(mapping.processors(0)[1], 3u);
}

TEST(Mapping, RejectsWrongSetCount) {
  EXPECT_THROW(Mapping(two_intervals(), {{0}}), std::invalid_argument);
}

TEST(Mapping, RejectsEmptySet) {
  EXPECT_THROW(Mapping(two_intervals(), {{0}, {}}), std::invalid_argument);
}

TEST(Mapping, RejectsDuplicateWithinInterval) {
  EXPECT_THROW(Mapping(two_intervals(), {{0, 0}, {1}}),
               std::invalid_argument);
}

TEST(Mapping, ValidateAcceptsGoodMapping) {
  const Platform platform = Platform::homogeneous(4, 1.0, 0.0, 1.0, 0.0, 2);
  const Mapping mapping(two_intervals(), {{0, 1}, {2, 3}});
  EXPECT_FALSE(mapping.validate(platform).has_value());
}

TEST(Mapping, ValidateRejectsSharedProcessor) {
  const Platform platform = Platform::homogeneous(4, 1.0, 0.0, 1.0, 0.0, 2);
  const Mapping mapping(two_intervals(), {{0, 1}, {1}});
  const auto error = mapping.validate(platform);
  ASSERT_TRUE(error.has_value());
  EXPECT_NE(error->find("more than one interval"), std::string::npos);
}

TEST(Mapping, ValidateRejectsOutOfRangeId) {
  const Platform platform = Platform::homogeneous(2, 1.0, 0.0, 1.0, 0.0, 2);
  const Mapping mapping(two_intervals(), {{0}, {5}});
  ASSERT_TRUE(mapping.validate(platform).has_value());
}

TEST(Mapping, ValidateRejectsOverReplication) {
  const Platform platform = Platform::homogeneous(4, 1.0, 0.0, 1.0, 0.0, 1);
  const Mapping mapping(two_intervals(), {{0, 1}, {2}});
  const auto error = mapping.validate(platform);
  ASSERT_TRUE(error.has_value());
  EXPECT_NE(error->find("above K"), std::string::npos);
}

TEST(AllocationConstraints, DefaultAllowsEverything) {
  const auto constraints = AllocationConstraints::all_allowed(3, 2);
  for (std::size_t t = 0; t < 3; ++t) {
    for (std::size_t u = 0; u < 2; ++u) {
      EXPECT_TRUE(constraints.allowed(t, u));
    }
  }
}

TEST(AllocationConstraints, ForbidAndAllow) {
  auto constraints = AllocationConstraints::all_allowed(3, 2);
  constraints.forbid(1, 0);
  EXPECT_FALSE(constraints.allowed(1, 0));
  EXPECT_TRUE(constraints.allowed(1, 1));
  constraints.allow(1, 0);
  EXPECT_TRUE(constraints.allowed(1, 0));
}

TEST(AllocationConstraints, IntervalAllowedNeedsEveryTask) {
  auto constraints = AllocationConstraints::all_allowed(4, 2);
  constraints.forbid(2, 0);
  EXPECT_FALSE(constraints.interval_allowed(Interval{1, 3}, 0));
  EXPECT_TRUE(constraints.interval_allowed(Interval{1, 3}, 1));
  EXPECT_TRUE(constraints.interval_allowed(Interval{0, 1}, 0));
}

}  // namespace
}  // namespace prts
