#include "rbd/bdd.hpp"

#include <gtest/gtest.h>

#include <array>
#include <vector>

#include "common/rng.hpp"
#include "rbd/brute_force.hpp"
#include "rbd/series_parallel.hpp"

namespace prts::rbd {
namespace {

TEST(BddManager, Terminals) {
  BddManager manager;
  EXPECT_EQ(manager.node_count(), 2u);
  const std::array<double, 0> no_vars{};
  EXPECT_DOUBLE_EQ(manager.failure_probability(BddManager::kTrue, no_vars),
                   0.0);
  EXPECT_DOUBLE_EQ(manager.failure_probability(BddManager::kFalse, no_vars),
                   1.0);
}

TEST(BddManager, SingleVariable) {
  BddManager manager;
  const auto x = manager.var(0);
  const std::array<double, 1> failure{0.25};
  EXPECT_NEAR(manager.failure_probability(x, failure), 0.25, 1e-15);
}

TEST(BddManager, AndOrSemantics) {
  BddManager manager;
  const auto x = manager.var(0);
  const auto y = manager.var(1);
  const auto both = manager.apply_and(x, y);
  const auto either = manager.apply_or(x, y);
  const std::array<double, 2> failure{0.1, 0.2};
  // P(x and y fail-free) = 0.9 * 0.8.
  EXPECT_NEAR(manager.failure_probability(both, failure), 1.0 - 0.72, 1e-12);
  EXPECT_NEAR(manager.failure_probability(either, failure), 0.02, 1e-12);
}

TEST(BddManager, HashConsingSharesNodes) {
  BddManager manager;
  const auto a = manager.apply_and(manager.var(0), manager.var(1));
  const auto b = manager.apply_and(manager.var(0), manager.var(1));
  EXPECT_EQ(a, b);
}

TEST(BddManager, IdempotentAndAbsorbing) {
  BddManager manager;
  const auto x = manager.var(0);
  EXPECT_EQ(manager.apply_and(x, x), x);
  EXPECT_EQ(manager.apply_or(x, x), x);
  EXPECT_EQ(manager.apply_and(x, BddManager::kFalse), BddManager::kFalse);
  EXPECT_EQ(manager.apply_or(x, BddManager::kTrue), BddManager::kTrue);
  EXPECT_EQ(manager.apply_and(x, BddManager::kTrue), x);
  EXPECT_EQ(manager.apply_or(x, BddManager::kFalse), x);
}

TEST(BddReliability, SeriesGraph) {
  Graph graph;
  const auto a = graph.add_block("a", LogReliability::from_reliability(0.9));
  const auto b = graph.add_block("b", LogReliability::from_reliability(0.8));
  graph.add_arc(a, b);
  graph.mark_entry(a);
  graph.mark_exit(b);
  EXPECT_NEAR(bdd_reliability(graph).reliability(), 0.72, 1e-12);
}

TEST(BddReliability, TinyFailurePrecision) {
  Graph graph;
  const auto a =
      graph.add_block("a", LogReliability::from_failure(1e-9));
  const auto b =
      graph.add_block("b", LogReliability::from_failure(2e-9));
  graph.add_arc(a, b);
  graph.mark_entry(a);
  graph.mark_exit(b);
  EXPECT_NEAR(bdd_reliability(graph).failure() / 3e-9, 1.0, 1e-6);
}

/// Random DAG between layered blocks; guaranteed S->D connected.
Graph random_layered_graph(Rng& rng, std::size_t layers,
                           std::size_t width) {
  Graph graph;
  std::vector<std::vector<std::size_t>> layer_blocks(layers);
  for (std::size_t l = 0; l < layers; ++l) {
    const auto count =
        static_cast<std::size_t>(rng.uniform_int(1,
                                                 static_cast<std::int64_t>(
                                                     width)));
    for (std::size_t i = 0; i < count; ++i) {
      layer_blocks[l].push_back(graph.add_block(
          "b", LogReliability::from_reliability(rng.uniform_real(0.3, 1.0))));
    }
  }
  for (std::size_t b : layer_blocks[0]) graph.mark_entry(b);
  for (std::size_t b : layer_blocks[layers - 1]) graph.mark_exit(b);
  for (std::size_t l = 0; l + 1 < layers; ++l) {
    for (std::size_t from : layer_blocks[l]) {
      bool any = false;
      for (std::size_t to : layer_blocks[l + 1]) {
        if (rng.bernoulli(0.6)) {
          graph.add_arc(from, to);
          any = true;
        }
      }
      if (!any) graph.add_arc(from, layer_blocks[l + 1][0]);
    }
  }
  return graph;
}

class BddRandomCrossCheck : public ::testing::TestWithParam<int> {};

TEST_P(BddRandomCrossCheck, MatchesBruteForce) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) + 1000);
  const Graph graph = random_layered_graph(rng, 4, 3);
  ASSERT_TRUE(graph.validate());
  ASSERT_LE(graph.block_count(), 12u);
  const double exact = brute_force_reliability(graph).reliability();
  const double via_bdd = bdd_reliability(graph).reliability();
  EXPECT_NEAR(via_bdd, exact, 1e-10);
}

INSTANTIATE_TEST_SUITE_P(Seeds, BddRandomCrossCheck,
                         ::testing::Range(0, 25));

}  // namespace
}  // namespace prts::rbd
