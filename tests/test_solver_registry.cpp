#include "solver/registry.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "core/exact.hpp"
#include "core/heuristics.hpp"
#include "model/generator.hpp"
#include "solver/adapters.hpp"
#include "test_util.hpp"

namespace prts::solver {
namespace {

Instance small_hom_instance(std::uint64_t seed = 3) {
  Rng rng(seed);
  return Instance{testutil::small_chain(rng, 8),
                  testutil::small_hom_platform(6, 3)};
}

Instance small_het_instance(std::uint64_t seed = 5) {
  Rng rng(seed);
  TaskChain chain = testutil::small_chain(rng, 8);
  return Instance{std::move(chain), testutil::small_het_platform(rng, 6, 3)};
}

TEST(SolverRegistry, BuiltinContainsEveryEngine) {
  const SolverRegistry& registry = SolverRegistry::builtin();
  for (const char* name :
       {"exact", "ilp", "dp", "dp-period", "heur-l", "heur-p", "heur-l+ls",
        "heur-p+ls", "baseline", "portfolio"}) {
    EXPECT_TRUE(registry.contains(name)) << name;
    ASSERT_NE(registry.find(name), nullptr) << name;
    EXPECT_EQ(registry.find(name)->name(), name);
  }
  EXPECT_EQ(registry.size(), 10u);
}

TEST(SolverRegistry, NamesAreSortedAndComplete) {
  const auto names = SolverRegistry::builtin().names();
  EXPECT_EQ(names.size(), SolverRegistry::builtin().size());
  EXPECT_TRUE(std::is_sorted(names.begin(), names.end()));
}

TEST(SolverRegistry, FindUnknownReturnsNull) {
  EXPECT_EQ(SolverRegistry::builtin().find("no-such-solver"), nullptr);
  EXPECT_FALSE(SolverRegistry::builtin().contains("no-such-solver"));
}

TEST(SolverRegistry, RejectsDuplicateNames) {
  SolverRegistry registry;
  registry.add(make_exact_solver());
  EXPECT_THROW(registry.add(make_exact_solver()), std::invalid_argument);
  EXPECT_EQ(registry.size(), 1u);
}

TEST(SolverRegistry, RejectsNullSolver) {
  SolverRegistry registry;
  EXPECT_THROW(registry.add(nullptr), std::invalid_argument);
}

TEST(SolverAdapters, ExactMatchesUnderlyingEngine) {
  const Instance instance = small_hom_instance();
  const auto solver = SolverRegistry::builtin().find("exact");
  Bounds bounds;
  bounds.period_bound = 30.0;
  bounds.latency_bound = 90.0;
  const auto solution = solver->solve(instance, bounds);

  const HomogeneousExactSolver reference(instance.chain, instance.platform);
  const auto expected = reference.best_log_reliability(
      bounds.period_bound, bounds.latency_bound);
  ASSERT_EQ(solution.has_value(), expected.has_value());
  if (solution) {
    EXPECT_DOUBLE_EQ(solution->metrics.reliability.log(), *expected);
    EXPECT_LE(solution->metrics.worst_period, bounds.period_bound);
    EXPECT_LE(solution->metrics.worst_latency, bounds.latency_bound);
  }
}

TEST(SolverAdapters, HomogeneousOnlyEnginesRejectHetInstances) {
  const Instance het = small_het_instance();
  for (const char* name : {"exact", "ilp", "dp", "dp-period"}) {
    const auto solver = SolverRegistry::builtin().find(name);
    EXPECT_FALSE(solver->supports(het)) << name;
    EXPECT_FALSE(solver->solve(het, Bounds{}).has_value()) << name;
  }
  for (const char* name :
       {"heur-l", "heur-p", "heur-l+ls", "heur-p+ls", "baseline",
        "portfolio"}) {
    EXPECT_TRUE(SolverRegistry::builtin().find(name)->supports(het)) << name;
  }
}

TEST(SolverAdapters, HeuristicMatchesRunHeuristic) {
  const Instance instance = small_het_instance(11);
  Bounds bounds;
  bounds.period_bound = 25.0;
  bounds.latency_bound = 80.0;
  const auto solution =
      SolverRegistry::builtin().find("heur-p")->solve(instance, bounds);

  HeuristicOptions options;
  options.period_bound = bounds.period_bound;
  options.latency_bound = bounds.latency_bound;
  const auto expected = run_heuristic(instance.chain, instance.platform,
                                      HeuristicKind::kHeurP, options);
  ASSERT_EQ(solution.has_value(), expected.has_value());
  if (solution) {
    EXPECT_EQ(solution->mapping, expected->mapping);
  }
}

TEST(SolverAdapters, PreparedSessionAgreesWithDirectSolve) {
  // The cached homogeneous sessions must answer exactly like a fresh
  // solve at every bound — this is what the campaign engine relies on.
  const Instance instance = small_hom_instance(17);
  for (const char* name : {"exact", "heur-l", "heur-p"}) {
    const auto solver = SolverRegistry::builtin().find(name);
    const auto session = solver->prepare(instance);
    for (double period : {8.0, 15.0, 30.0, 1e9}) {
      Bounds bounds;
      bounds.period_bound = period;
      bounds.latency_bound = 120.0;
      const auto from_session = session->solve(bounds);
      const auto from_solver = solver->solve(instance, bounds);
      ASSERT_EQ(from_session.has_value(), from_solver.has_value())
          << name << " period " << period;
      if (from_session) {
        EXPECT_EQ(from_session->mapping, from_solver->mapping)
            << name << " period " << period;
      }
    }
  }
}

TEST(SolverAdapters, LocalSearchNeverWorseThanPlainHeuristic) {
  const Instance instance = small_het_instance(23);
  Bounds bounds;
  bounds.period_bound = 40.0;
  bounds.latency_bound = 120.0;
  const auto plain =
      SolverRegistry::builtin().find("heur-l")->solve(instance, bounds);
  const auto polished =
      SolverRegistry::builtin().find("heur-l+ls")->solve(instance, bounds);
  ASSERT_EQ(plain.has_value(), polished.has_value());
  if (plain) {
    EXPECT_GE(polished->metrics.reliability.log(),
              plain->metrics.reliability.log());
    EXPECT_LE(polished->metrics.worst_period, bounds.period_bound);
    EXPECT_LE(polished->metrics.worst_latency, bounds.latency_bound);
  }
}

TEST(SolverAdapters, InfeasibleBoundsReturnNothing) {
  const Instance instance = small_hom_instance();
  Bounds impossible;
  impossible.period_bound = 1e-6;
  impossible.latency_bound = 1e-6;
  for (const std::string& name : SolverRegistry::builtin().names()) {
    const auto solution = SolverRegistry::builtin().find(name)->solve(
        instance, impossible);
    EXPECT_FALSE(solution.has_value()) << name;
  }
}

TEST(SolverAdapters, TriCriteriaOrderingPrefersReliabilityFirst) {
  MappingMetrics a;
  a.reliability = LogReliability::from_log(-1e-6);
  a.worst_period = 100.0;
  MappingMetrics b;
  b.reliability = LogReliability::from_log(-1e-3);
  b.worst_period = 1.0;
  EXPECT_TRUE(tri_criteria_better(a, b));
  EXPECT_FALSE(tri_criteria_better(b, a));

  // Equal reliability: the faster mapping wins.
  b.reliability = a.reliability;
  EXPECT_TRUE(tri_criteria_better(b, a));
  EXPECT_FALSE(tri_criteria_better(a, b));

  // Fully equal metrics: neither is strictly better.
  EXPECT_FALSE(tri_criteria_better(a, a));
}

}  // namespace
}  // namespace prts::solver
