#include "model/task_chain.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace prts {
namespace {

TaskChain make_chain() {
  return TaskChain({{10.0, 2.0}, {20.0, 3.0}, {30.0, 4.0}, {40.0, 0.0}});
}

TEST(TaskChain, SizeAndAccessors) {
  const TaskChain chain = make_chain();
  EXPECT_EQ(chain.size(), 4u);
  EXPECT_DOUBLE_EQ(chain.work(0), 10.0);
  EXPECT_DOUBLE_EQ(chain.work(3), 40.0);
  EXPECT_DOUBLE_EQ(chain.out_size(1), 3.0);
  EXPECT_DOUBLE_EQ(chain.out_size(3), 0.0);
  EXPECT_DOUBLE_EQ(chain.task(2).work, 30.0);
}

TEST(TaskChain, WorkSumSingleTask) {
  const TaskChain chain = make_chain();
  for (std::size_t i = 0; i < chain.size(); ++i) {
    EXPECT_DOUBLE_EQ(chain.work_sum(i, i), chain.work(i));
  }
}

TEST(TaskChain, WorkSumRanges) {
  const TaskChain chain = make_chain();
  EXPECT_DOUBLE_EQ(chain.work_sum(0, 1), 30.0);
  EXPECT_DOUBLE_EQ(chain.work_sum(1, 3), 90.0);
  EXPECT_DOUBLE_EQ(chain.work_sum(0, 3), 100.0);
}

TEST(TaskChain, TotalWork) {
  EXPECT_DOUBLE_EQ(make_chain().total_work(), 100.0);
}

TEST(TaskChain, TasksSpanMatches) {
  const TaskChain chain = make_chain();
  auto tasks = chain.tasks();
  ASSERT_EQ(tasks.size(), 4u);
  EXPECT_DOUBLE_EQ(tasks[1].out_size, 3.0);
}

TEST(TaskChain, RejectsEmpty) {
  EXPECT_THROW(TaskChain({}), std::invalid_argument);
}

TEST(TaskChain, RejectsNonPositiveWork) {
  EXPECT_THROW(TaskChain({{0.0, 1.0}}), std::invalid_argument);
  EXPECT_THROW(TaskChain({{-1.0, 1.0}}), std::invalid_argument);
}

TEST(TaskChain, RejectsNegativeOutput) {
  EXPECT_THROW(TaskChain({{1.0, -0.5}}), std::invalid_argument);
}

TEST(TaskChain, AcceptsZeroOutput) {
  const TaskChain chain({{1.0, 0.0}, {2.0, 0.0}});
  EXPECT_DOUBLE_EQ(chain.out_size(0), 0.0);
}

TEST(TaskChain, SingleTaskChain) {
  const TaskChain chain({{5.0, 0.0}});
  EXPECT_EQ(chain.size(), 1u);
  EXPECT_DOUBLE_EQ(chain.total_work(), 5.0);
}

}  // namespace
}  // namespace prts
