#include "model/platform.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace prts {
namespace {

TEST(Platform, HomogeneousFactory) {
  const Platform p = Platform::homogeneous(4, 2.0, 1e-8, 1.0, 1e-5, 3);
  EXPECT_EQ(p.processor_count(), 4u);
  EXPECT_TRUE(p.is_homogeneous());
  EXPECT_DOUBLE_EQ(p.speed(3), 2.0);
  EXPECT_DOUBLE_EQ(p.failure_rate(0), 1e-8);
  EXPECT_DOUBLE_EQ(p.bandwidth(), 1.0);
  EXPECT_DOUBLE_EQ(p.link_failure_rate(), 1e-5);
  EXPECT_EQ(p.max_replication(), 3u);
}

TEST(Platform, HeterogeneousDetection) {
  const Platform p({{1.0, 1e-8}, {2.0, 1e-8}}, 1.0, 0.0, 2);
  EXPECT_FALSE(p.is_homogeneous());
}

TEST(Platform, HeterogeneousByFailureRateOnly) {
  const Platform p({{1.0, 1e-8}, {1.0, 1e-7}}, 1.0, 0.0, 2);
  EXPECT_FALSE(p.is_homogeneous());
}

TEST(Platform, SingleProcessorIsHomogeneous) {
  const Platform p({{3.0, 1e-9}}, 2.0, 0.0, 1);
  EXPECT_TRUE(p.is_homogeneous());
}

TEST(Platform, CommTimeScalesWithBandwidth) {
  const Platform p = Platform::homogeneous(1, 1.0, 0.0, 4.0, 0.0, 1);
  EXPECT_DOUBLE_EQ(p.comm_time(8.0), 2.0);
  EXPECT_DOUBLE_EQ(p.comm_time(0.0), 0.0);
}

TEST(Platform, RejectsEmpty) {
  EXPECT_THROW(Platform({}, 1.0, 0.0, 1), std::invalid_argument);
}

TEST(Platform, RejectsBadBandwidth) {
  EXPECT_THROW(Platform({{1.0, 0.0}}, 0.0, 0.0, 1), std::invalid_argument);
  EXPECT_THROW(Platform({{1.0, 0.0}}, -1.0, 0.0, 1), std::invalid_argument);
}

TEST(Platform, RejectsNegativeRates) {
  EXPECT_THROW(Platform({{1.0, -1e-8}}, 1.0, 0.0, 1), std::invalid_argument);
  EXPECT_THROW(Platform({{1.0, 0.0}}, 1.0, -1e-5, 1), std::invalid_argument);
}

TEST(Platform, RejectsBadSpeed) {
  EXPECT_THROW(Platform({{0.0, 0.0}}, 1.0, 0.0, 1), std::invalid_argument);
}

TEST(Platform, RejectsZeroReplication) {
  EXPECT_THROW(Platform({{1.0, 0.0}}, 1.0, 0.0, 0), std::invalid_argument);
}

TEST(Platform, ProcessorsSpan) {
  const Platform p({{1.0, 1e-8}, {2.0, 2e-8}}, 1.0, 0.0, 2);
  auto procs = p.processors();
  ASSERT_EQ(procs.size(), 2u);
  EXPECT_DOUBLE_EQ(procs[1].speed, 2.0);
}

}  // namespace
}  // namespace prts
