#include "core/pareto.hpp"

#include <gtest/gtest.h>

#include "core/exact.hpp"
#include "test_util.hpp"

namespace prts {
namespace {

ParetoPoint make_point(Rng& rng, const TaskChain& chain,
                       const Platform& platform) {
  Mapping mapping = testutil::random_mapping(rng, chain, platform);
  MappingMetrics metrics = evaluate(chain, platform, mapping);
  return ParetoPoint{std::move(mapping), metrics};
}

TEST(ParetoFilter, RemovesDominatedPoints) {
  Rng rng(1);
  const TaskChain chain = testutil::small_chain(rng, 5);
  const Platform platform = testutil::small_hom_platform(5, 2);
  std::vector<ParetoPoint> candidates;
  for (int i = 0; i < 30; ++i) {
    candidates.push_back(make_point(rng, chain, platform));
  }
  const auto front = pareto_filter(candidates);
  ASSERT_FALSE(front.empty());
  // No front point dominates another front point.
  for (const auto& a : front) {
    for (const auto& b : front) {
      if (&a == &b) continue;
      const bool dominates = a.metrics.worst_period <= b.metrics.worst_period &&
                             a.metrics.worst_latency <= b.metrics.worst_latency &&
                             a.metrics.failure <= b.metrics.failure &&
                             (a.metrics.worst_period < b.metrics.worst_period ||
                              a.metrics.worst_latency < b.metrics.worst_latency ||
                              a.metrics.failure < b.metrics.failure);
      EXPECT_FALSE(dominates);
    }
  }
  // Every dropped candidate is dominated by (or equal to) a front point.
  for (const auto& candidate : candidates) {
    bool covered = false;
    for (const auto& keeper : front) {
      if (keeper.metrics.worst_period <= candidate.metrics.worst_period &&
          keeper.metrics.worst_latency <= candidate.metrics.worst_latency &&
          keeper.metrics.failure <= candidate.metrics.failure) {
        covered = true;
        break;
      }
    }
    EXPECT_TRUE(covered);
  }
}

TEST(ParetoFilter, SortedByPeriodThenLatency) {
  Rng rng(2);
  const TaskChain chain = testutil::small_chain(rng, 6);
  const Platform platform = testutil::small_hom_platform(6, 3);
  std::vector<ParetoPoint> candidates;
  for (int i = 0; i < 40; ++i) {
    candidates.push_back(make_point(rng, chain, platform));
  }
  const auto front = pareto_filter(candidates);
  for (std::size_t i = 1; i < front.size(); ++i) {
    EXPECT_LE(front[i - 1].metrics.worst_period,
              front[i].metrics.worst_period + 1e-12);
  }
}

TEST(ExactParetoFront, CoversEveryBoundCombination) {
  Rng rng(3);
  const TaskChain chain = testutil::small_chain(rng, 6);
  const Platform platform = testutil::small_hom_platform(5, 2);
  const auto front = exact_pareto_front(chain, platform);
  ASSERT_FALSE(front.empty());
  // For any (P, L) the exact optimum reliability equals the best front
  // point within the bounds: fronts are lossless summaries.
  const HomogeneousExactSolver solver(chain, platform);
  Rng bound_rng(4);
  for (int trial = 0; trial < 25; ++trial) {
    const double period_bound = bound_rng.uniform_real(5.0, 60.0);
    const double latency_bound = bound_rng.uniform_real(15.0, 120.0);
    const auto exact =
        solver.best_log_reliability(period_bound, latency_bound);
    double best_front = -1e300;
    for (const auto& point : front) {
      if (point.metrics.worst_period <= period_bound &&
          point.metrics.worst_latency <= latency_bound) {
        best_front =
            std::max(best_front, point.metrics.reliability.log());
      }
    }
    if (exact) {
      EXPECT_NEAR(*exact, best_front, 1e-9);
    } else {
      EXPECT_EQ(best_front, -1e300);
    }
  }
}

TEST(HeuristicParetoFront, ProducesValidNonDominatedPoints) {
  Rng rng(5);
  const TaskChain chain = testutil::small_chain(rng, 6);
  const Platform platform = testutil::small_het_platform(rng, 6, 2);
  const auto front = heuristic_pareto_front(chain, platform);
  ASSERT_FALSE(front.empty());
  for (const auto& point : front) {
    EXPECT_FALSE(point.mapping.validate(platform).has_value());
  }
}

}  // namespace
}  // namespace prts
