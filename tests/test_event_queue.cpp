#include "sim/event_queue.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace prts::sim {
namespace {

TEST(EventQueue, EmptyInitially) {
  EventQueue queue;
  EXPECT_TRUE(queue.empty());
  EXPECT_EQ(queue.size(), 0u);
}

TEST(EventQueue, FiresInTimeOrder) {
  EventQueue queue;
  std::vector<int> order;
  queue.schedule(3.0, [&] { order.push_back(3); });
  queue.schedule(1.0, [&] { order.push_back(1); });
  queue.schedule(2.0, [&] { order.push_back(2); });
  queue.run_all();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, TiesBreakByInsertionOrder) {
  EventQueue queue;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    queue.schedule(5.0, [&order, i] { order.push_back(i); });
  }
  queue.run_all();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(EventQueue, RunNextReturnsTime) {
  EventQueue queue;
  queue.schedule(4.25, [] {});
  EXPECT_DOUBLE_EQ(queue.next_time(), 4.25);
  EXPECT_DOUBLE_EQ(queue.run_next(), 4.25);
  EXPECT_TRUE(queue.empty());
}

TEST(EventQueue, RunAllReturnsLastTime) {
  EventQueue queue;
  queue.schedule(1.0, [] {});
  queue.schedule(9.5, [] {});
  EXPECT_DOUBLE_EQ(queue.run_all(), 9.5);
}

TEST(EventQueue, EventsMayScheduleMoreEvents) {
  EventQueue queue;
  std::vector<double> times;
  queue.schedule(1.0, [&] {
    times.push_back(1.0);
    queue.schedule(2.0, [&] { times.push_back(2.0); });
  });
  queue.run_all();
  EXPECT_EQ(times, (std::vector<double>{1.0, 2.0}));
}

TEST(EventQueue, RunAllOnEmptyReturnsZero) {
  EventQueue queue;
  EXPECT_DOUBLE_EQ(queue.run_all(), 0.0);
}

}  // namespace
}  // namespace prts::sim
