// The fabric transport: frame codec round trips, incremental decoding,
// and the robustness contract — malformed magic, truncated frames,
// oversized payloads, version mismatches and mid-stream disconnects
// produce clean errors on live sockets, never crashes or hangs.
#include "net/frame.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <future>
#include <limits>
#include <thread>
#include <vector>

#include "common/rng.hpp"
#include "common/thread_pool.hpp"
#include "net/frame_client.hpp"
#include "net/frame_server.hpp"
#include "net/mux_client.hpp"
#include "net/socket.hpp"

namespace prts::net {
namespace {

Frame make_frame(FrameType type, std::string payload) {
  Frame frame;
  frame.type = type;
  frame.payload = std::move(payload);
  return frame;
}

// ---------------------------------------------------------- frame codec

TEST(FrameCodec, EncodeDecodeRoundTrip) {
  const Frame frame = make_frame(FrameType::kSolveRequest, "hello fabric");
  const std::string bytes = encode_frame(frame);
  ASSERT_EQ(bytes.size(), kFrameHeaderBytes + frame.payload.size());

  const DecodeResult decoded = decode_frame(bytes);
  ASSERT_EQ(decoded.status, DecodeStatus::kFrame);
  EXPECT_EQ(decoded.frame.version, kProtocolVersion);
  EXPECT_EQ(decoded.frame.type, FrameType::kSolveRequest);
  EXPECT_EQ(decoded.frame.payload, "hello fabric");
  EXPECT_EQ(decoded.consumed, bytes.size());
}

TEST(FrameCodec, EmptyPayloadRoundTrips) {
  const std::string bytes = encode_frame(make_frame(FrameType::kPing, ""));
  const DecodeResult decoded = decode_frame(bytes);
  ASSERT_EQ(decoded.status, DecodeStatus::kFrame);
  EXPECT_TRUE(decoded.frame.payload.empty());
}

TEST(FrameCodec, TruncatedInputNeedsMore) {
  const std::string bytes =
      encode_frame(make_frame(FrameType::kSolveReply, "payload"));
  for (std::size_t cut = 0; cut < bytes.size(); ++cut) {
    const DecodeResult decoded =
        decode_frame(std::string_view(bytes).substr(0, cut));
    EXPECT_EQ(decoded.status, DecodeStatus::kNeedMore) << "cut=" << cut;
    EXPECT_EQ(decoded.consumed, 0u);
  }
}

TEST(FrameCodec, BadMagicIsRejected) {
  std::string bytes = encode_frame(make_frame(FrameType::kPing, "x"));
  bytes[0] = 'X';
  EXPECT_EQ(decode_frame(bytes).status, DecodeStatus::kBadMagic);
}

TEST(FrameCodec, VersionMismatchIsRejected) {
  Frame frame = make_frame(FrameType::kPing, "x");
  // Version 2 is the mux protocol now; 3 is the first unknown version.
  frame.version = kProtocolVersion2 + 1;
  EXPECT_EQ(decode_frame(encode_frame(frame)).status,
            DecodeStatus::kBadVersion);
}

TEST(FrameCodec, V2RoundTripPreservesRequestId) {
  Frame frame = make_frame(FrameType::kSolveRequest, "pipelined");
  frame.version = kProtocolVersion2;
  frame.request_id = 0x123456789abcull;  // all six id bytes exercised
  const std::string bytes = encode_frame(frame);
  ASSERT_EQ(bytes.size(), kFrameHeaderBytesV2 + frame.payload.size());

  const DecodeResult decoded = decode_frame(bytes);
  ASSERT_EQ(decoded.status, DecodeStatus::kFrame);
  EXPECT_EQ(decoded.frame.version, kProtocolVersion2);
  EXPECT_EQ(decoded.frame.request_id, 0x123456789abcull);
  EXPECT_EQ(decoded.frame.payload, "pipelined");
  EXPECT_EQ(decoded.consumed, bytes.size());
}

TEST(FrameCodec, V2MaxAndZeroRequestIdsRoundTrip) {
  for (const std::uint64_t id : {std::uint64_t{0}, kMaxRequestId}) {
    Frame frame = make_frame(FrameType::kPong, "");
    frame.version = kProtocolVersion2;
    frame.request_id = id;
    const DecodeResult decoded = decode_frame(encode_frame(frame));
    ASSERT_EQ(decoded.status, DecodeStatus::kFrame);
    EXPECT_EQ(decoded.frame.request_id, id);
  }
}

TEST(FrameCodec, V1FramesAlwaysDecodeWithIdZero) {
  // A v1 header has no id field; whatever the struct carried must not
  // leak onto the wire (bytes 6..7 stay reserved-zero).
  Frame frame = make_frame(FrameType::kPing, "legacy");
  frame.request_id = 0xdeadbeefull;
  const std::string bytes = encode_frame(frame);
  ASSERT_EQ(bytes.size(), kFrameHeaderBytes + frame.payload.size());
  EXPECT_EQ(bytes[6], '\0');
  EXPECT_EQ(bytes[7], '\0');
  const DecodeResult decoded = decode_frame(bytes);
  ASSERT_EQ(decoded.status, DecodeStatus::kFrame);
  EXPECT_EQ(decoded.frame.request_id, 0u);
}

TEST(FrameCodec, OversizedLengthIsRejectedNotAllocated) {
  Frame frame = make_frame(FrameType::kPing, "small");
  std::string bytes = encode_frame(frame);
  // Rewrite the length field to claim ~4 GiB.
  bytes[8] = static_cast<char>(0xff);
  bytes[9] = static_cast<char>(0xff);
  bytes[10] = static_cast<char>(0xff);
  bytes[11] = static_cast<char>(0xf0);
  EXPECT_EQ(decode_frame(bytes).status, DecodeStatus::kOversized);
  // A small cap applies to honest frames too.
  EXPECT_EQ(decode_frame(encode_frame(frame), 3).status,
            DecodeStatus::kOversized);
}

// -------------------------------------------- incremental decoder soak

/// Runs `stream` through a FrameDecoder in the given chunking,
/// collecting every decoded frame; fails the test on any error verdict.
void decode_chunked(const std::string& stream,
                    const std::vector<std::size_t>& cuts,
                    std::vector<Frame>& frames) {
  FrameDecoder decoder;
  const auto drain = [&] {
    for (;;) {
      const DecodeResult result = decoder.next();
      if (result.status == DecodeStatus::kNeedMore) return true;
      if (result.status != DecodeStatus::kFrame) return false;
      frames.push_back(result.frame);
    }
  };
  std::size_t start = 0;
  for (const std::size_t cut : cuts) {
    decoder.feed(std::string_view(stream).substr(start, cut - start));
    ASSERT_TRUE(drain()) << "error verdict after feeding [0, " << cut << ")";
    start = cut;
  }
  decoder.feed(std::string_view(stream).substr(start));
  ASSERT_TRUE(drain()) << "error verdict after the final chunk";
  EXPECT_EQ(decoder.buffered(), 0u);
}

void expect_same_frames(const std::vector<Frame>& decoded,
                        const std::vector<Frame>& sent) {
  ASSERT_EQ(decoded.size(), sent.size());
  for (std::size_t i = 0; i < sent.size(); ++i) {
    EXPECT_EQ(decoded[i].version, sent[i].version) << "frame " << i;
    EXPECT_EQ(decoded[i].type, sent[i].type) << "frame " << i;
    EXPECT_EQ(decoded[i].request_id, sent[i].request_id) << "frame " << i;
    EXPECT_EQ(decoded[i].payload, sent[i].payload) << "frame " << i;
  }
}

TEST(FrameDecoderProperty, EverySplitPointOfATwoFrameStreamDecodesTheSame) {
  Frame second = make_frame(FrameType::kPong, "");
  second.version = kProtocolVersion2;  // id bytes split across cuts too
  second.request_id = 0xabcdef012345ull;
  const std::vector<Frame> sent{
      make_frame(FrameType::kSolveRequest, "first payload"),
      second,
  };
  std::string stream;
  for (const Frame& frame : sent) stream += encode_frame(frame);

  // Exhaustive: deliver the stream as [0, cut) + [cut, end) for every
  // cut — header split mid-magic, mid-length, payload split, frame
  // boundary, everything.
  for (std::size_t cut = 0; cut <= stream.size(); ++cut) {
    std::vector<Frame> decoded;
    decode_chunked(stream, {cut}, decoded);
    if (::testing::Test::HasFatalFailure()) FAIL() << "cut=" << cut;
    expect_same_frames(decoded, sent);
  }
}

TEST(FrameDecoderProperty, RandomChunkingsOfARandomStreamAreInvariant) {
  // Seeded generator: the soak is randomized but reproducible.
  prts::Rng rng(20260726);
  for (int round = 0; round < 50; ++round) {
    // A random valid stream: 1..8 frames, payloads 0..300 bytes of
    // arbitrary octets (framing must not care about payload content).
    // Versions mix v1 and v2 mid-stream — the decoder sizes each header
    // off its own version byte, so an interleaved stream must be
    // chunking-invariant too.
    std::vector<Frame> sent;
    const std::size_t frame_count =
        static_cast<std::size_t>(rng.uniform_int(1, 8));
    for (std::size_t f = 0; f < frame_count; ++f) {
      Frame frame;
      frame.type = static_cast<FrameType>(rng.uniform_int(0, 9));
      if (rng.uniform_int(0, 1) == 1) {
        frame.version = kProtocolVersion2;
        frame.request_id = static_cast<std::uint64_t>(
            rng.uniform_int(0, std::numeric_limits<std::int64_t>::max()) &
            static_cast<std::int64_t>(kMaxRequestId));
      }
      std::string payload(
          static_cast<std::size_t>(rng.uniform_int(0, 300)), '\0');
      for (char& byte : payload) {
        byte = static_cast<char>(rng.uniform_int(0, 255));
      }
      frame.payload = std::move(payload);
      sent.push_back(std::move(frame));
    }
    std::string stream;
    for (const Frame& frame : sent) stream += encode_frame(frame);

    // Random cut set: from byte-at-a-time dribble to one coalesced
    // delivery.
    std::vector<std::size_t> cuts;
    const std::size_t cut_count =
        static_cast<std::size_t>(rng.uniform_int(0, 12));
    for (std::size_t c = 0; c < cut_count; ++c) {
      cuts.push_back(static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(stream.size()))));
    }
    std::sort(cuts.begin(), cuts.end());

    std::vector<Frame> decoded;
    decode_chunked(stream, cuts, decoded);
    if (::testing::Test::HasFatalFailure()) {
      FAIL() << "round=" << round;
    }
    expect_same_frames(decoded, sent);
  }
}

TEST(FrameDecoderProperty, ByteAtATimeDribbleDecodesEverything) {
  std::vector<Frame> sent;
  for (int i = 0; i < 5; ++i) {
    sent.push_back(make_frame(FrameType::kGossipDigest,
                              std::string(static_cast<std::size_t>(i) * 7,
                                          static_cast<char>('a' + i))));
  }
  std::string stream;
  for (const Frame& frame : sent) stream += encode_frame(frame);

  std::vector<std::size_t> cuts(stream.size());
  for (std::size_t i = 0; i < stream.size(); ++i) cuts[i] = i;
  std::vector<Frame> decoded;
  decode_chunked(stream, cuts, decoded);
  expect_same_frames(decoded, sent);
}

TEST(FrameDecoder, ErrorVerdictsAreSticky) {
  FrameDecoder decoder;
  std::string bytes = encode_frame(make_frame(FrameType::kPing, "x"));
  bytes[0] = 'X';  // bad magic
  decoder.feed(bytes);
  EXPECT_EQ(decoder.next().status, DecodeStatus::kBadMagic);
  // Framing is lost for good: feeding a perfectly valid frame after the
  // poison changes nothing.
  decoder.feed(encode_frame(make_frame(FrameType::kPing, "y")));
  EXPECT_EQ(decoder.next().status, DecodeStatus::kBadMagic);
}

// ------------------------------------------------------- socket framing

/// A loopback listener + connected client pair.
struct Loopback {
  Listener listener;
  Socket client;
  Socket server;

  static Loopback open() {
    Loopback pair;
    auto listener = Listener::open(0);
    EXPECT_TRUE(listener.has_value());
    pair.listener = std::move(*listener);
    auto connected =
        tcp_connect("127.0.0.1", pair.listener.port(), 2.0);
    EXPECT_TRUE(connected.has_value());
    pair.client = std::move(*connected);
    auto accepted = pair.listener.accept();
    EXPECT_TRUE(accepted.has_value());
    pair.server = std::move(*accepted);
    return pair;
  }
};

TEST(SocketFraming, WriteReadRoundTrip) {
  Loopback pair = Loopback::open();
  const Frame sent = make_frame(FrameType::kSolveRequest,
                                std::string(100000, 'z'));
  ASSERT_TRUE(write_frame(pair.client, sent));
  Frame received;
  ASSERT_EQ(read_frame(pair.server, received), FrameReadStatus::kOk);
  EXPECT_EQ(received.type, sent.type);
  EXPECT_EQ(received.payload, sent.payload);
}

TEST(SocketFraming, CleanDisconnectBetweenFramesIsClosed) {
  Loopback pair = Loopback::open();
  pair.client.close();
  Frame frame;
  EXPECT_EQ(read_frame(pair.server, frame), FrameReadStatus::kClosed);
}

TEST(SocketFraming, MidFrameDisconnectIsTruncated) {
  Loopback pair = Loopback::open();
  const std::string bytes =
      encode_frame(make_frame(FrameType::kSolveRequest, "partial"));
  ASSERT_TRUE(pair.client.send_all(bytes.data(), bytes.size() - 3));
  pair.client.close();
  Frame frame;
  EXPECT_EQ(read_frame(pair.server, frame), FrameReadStatus::kTruncated);
}

TEST(SocketFraming, OversizedHeaderIsReportedBeforeReadingPayload) {
  Loopback pair = Loopback::open();
  Frame huge = make_frame(FrameType::kPing, "");
  std::string bytes = encode_frame(huge);
  bytes[8] = static_cast<char>(0x7f);  // ~2 GiB claimed, nothing sent
  ASSERT_TRUE(pair.client.send_all(bytes.data(), bytes.size()));
  Frame frame;
  EXPECT_EQ(read_frame(pair.server, frame), FrameReadStatus::kOversized);
}

// ------------------------------------------------------- server + client

/// An echo server on an ephemeral port with its own pool.
struct EchoFixture {
  ThreadPool pool{4};
  std::unique_ptr<FrameServer> server;

  EchoFixture() {
    server = FrameServer::start(
        0,
        [](const Frame& request) -> std::optional<Frame> {
          Frame reply = request;
          reply.type = FrameType::kPong;
          return reply;
        },
        pool);
    EXPECT_NE(server, nullptr);
  }
};

TEST(FrameServerTest, EchoRoundTripAndStats) {
  EchoFixture fixture;
  FrameClient client("127.0.0.1", fixture.server->port());
  for (int i = 0; i < 3; ++i) {
    const auto reply =
        client.call(make_frame(FrameType::kPing, "echo " + std::to_string(i)));
    ASSERT_TRUE(reply.has_value());
    EXPECT_EQ(reply->type, FrameType::kPong);
    EXPECT_EQ(reply->payload, "echo " + std::to_string(i));
  }
  const FrameServerStats stats = fixture.server->stats();
  EXPECT_EQ(stats.connections, 1u);  // one client, one connection reused
  EXPECT_EQ(stats.frames, 3u);
  EXPECT_EQ(stats.protocol_errors, 0u);
}

TEST(FrameServerTest, ManyConcurrentClients) {
  EchoFixture fixture;
  std::vector<std::future<bool>> results;
  for (int c = 0; c < 8; ++c) {
    results.push_back(std::async(std::launch::async, [&fixture, c] {
      FrameClient client("127.0.0.1", fixture.server->port());
      for (int i = 0; i < 5; ++i) {
        const auto reply = client.call(
            make_frame(FrameType::kPing, std::to_string(c * 100 + i)));
        if (!reply || reply->payload != std::to_string(c * 100 + i)) {
          return false;
        }
      }
      return true;
    }));
  }
  for (auto& result : results) EXPECT_TRUE(result.get());
}

TEST(FrameServerTest, BadMagicGetsErrorFrameAndServerSurvives) {
  EchoFixture fixture;
  auto raw = tcp_connect("127.0.0.1", fixture.server->port(), 2.0);
  ASSERT_TRUE(raw.has_value());
  const std::string garbage = "GET / HTTP/1.1\r\n\r\n";
  ASSERT_TRUE(raw->send_all(garbage.data(), garbage.size()));
  Frame reply;
  ASSERT_EQ(read_frame(*raw, reply), FrameReadStatus::kOk);
  EXPECT_EQ(reply.type, FrameType::kError);
  EXPECT_EQ(reply.payload, "bad magic");
  // The connection is closed after the error...
  EXPECT_EQ(read_frame(*raw, reply), FrameReadStatus::kClosed);
  // ...but the server keeps serving fresh connections.
  FrameClient client("127.0.0.1", fixture.server->port());
  EXPECT_TRUE(client.call(make_frame(FrameType::kPing, "alive")).has_value());
  EXPECT_GE(fixture.server->stats().protocol_errors, 1u);
}

TEST(FrameServerTest, VersionMismatchGetsErrorFrame) {
  EchoFixture fixture;
  auto raw = tcp_connect("127.0.0.1", fixture.server->port(), 2.0);
  ASSERT_TRUE(raw.has_value());
  Frame future_version = make_frame(FrameType::kPing, "from the future");
  future_version.version = kProtocolVersion + 7;
  ASSERT_TRUE(write_frame(*raw, future_version));
  Frame reply;
  ASSERT_EQ(read_frame(*raw, reply), FrameReadStatus::kOk);
  EXPECT_EQ(reply.type, FrameType::kError);
  EXPECT_EQ(reply.payload, "unsupported protocol version");
}

TEST(FrameServerTest, OversizedPayloadGetsErrorFrame) {
  ThreadPool pool(2);
  auto server = FrameServer::start(
      0, [](const Frame& f) { return f; }, pool, /*max_payload=*/64);
  ASSERT_NE(server, nullptr);
  auto raw = tcp_connect("127.0.0.1", server->port(), 2.0);
  ASSERT_TRUE(raw.has_value());
  const std::string big =
      encode_frame(make_frame(FrameType::kPing, std::string(65, 'x')));
  ASSERT_TRUE(raw->send_all(big.data(), big.size()));
  Frame reply;
  ASSERT_EQ(read_frame(*raw, reply), FrameReadStatus::kOk);
  EXPECT_EQ(reply.type, FrameType::kError);
  EXPECT_EQ(reply.payload, "payload too large");
}

TEST(FrameServerTest, TruncatedFrameThenDisconnectIsCountedNotFatal) {
  EchoFixture fixture;
  {
    auto raw = tcp_connect("127.0.0.1", fixture.server->port(), 2.0);
    ASSERT_TRUE(raw.has_value());
    const std::string bytes =
        encode_frame(make_frame(FrameType::kPing, "never finished"));
    ASSERT_TRUE(raw->send_all(bytes.data(), bytes.size() - 5));
  }  // disconnect mid-frame
  // The server must notice and keep serving; poll until the error is
  // counted (the connection task runs asynchronously).
  for (int spin = 0; spin < 200; ++spin) {
    if (fixture.server->stats().protocol_errors >= 1) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_GE(fixture.server->stats().protocol_errors, 1u);
  FrameClient client("127.0.0.1", fixture.server->port());
  EXPECT_TRUE(client.call(make_frame(FrameType::kPing, "alive")).has_value());
}

TEST(FrameServerTest, StopUnblocksIdleConnections) {
  auto fixture = std::make_unique<EchoFixture>();
  FrameClient client("127.0.0.1", fixture->server->port());
  ASSERT_TRUE(client.call(make_frame(FrameType::kPing, "warm")).has_value());
  // The server-side connection loop is now blocked in read_frame;
  // stop() must wake it and return promptly.
  fixture->server->stop();
  // After stop, the client's next call fails cleanly.
  EXPECT_FALSE(client.call(make_frame(FrameType::kPing, "gone")).has_value());
}

// -------------------------------------------------------------- client

TEST(FrameClientTest, NoServerFailsCleanlyAndArmsBackoff) {
  // Port 1 is essentially never listening on loopback.
  FrameClientConfig config;
  config.connect_timeout_seconds = 0.5;
  config.backoff_initial_seconds = 60.0;  // window outlives the test
  FrameClient client("127.0.0.1", 1, config);
  EXPECT_FALSE(client.call(make_frame(FrameType::kPing, "x")).has_value());
  EXPECT_TRUE(client.suspect());
  // Inside the window the failure is immediate (no connect attempt).
  const auto start = std::chrono::steady_clock::now();
  EXPECT_FALSE(client.call(make_frame(FrameType::kPing, "y")).has_value());
  const double seconds = std::chrono::duration<double>(
                             std::chrono::steady_clock::now() - start)
                             .count();
  EXPECT_LT(seconds, 0.25);
  EXPECT_GE(client.stats().fast_failures, 1u);
  EXPECT_EQ(client.stats().failures, 2u);
}

TEST(FrameClientTest, RecoversAfterBackoffWindow) {
  FrameClientConfig config;
  config.connect_timeout_seconds = 0.5;
  config.backoff_initial_seconds = 0.05;
  ThreadPool pool(2);
  // Fail once against a dead port, then bring a server up on that very
  // port and retry after the window.
  auto placeholder = Listener::open(0);
  ASSERT_TRUE(placeholder.has_value());
  const std::uint16_t port = placeholder->port();
  placeholder->close();

  FrameClient client("127.0.0.1", port, config);
  EXPECT_FALSE(client.call(make_frame(FrameType::kPing, "x")).has_value());

  auto server = FrameServer::start(
      port, [](const Frame& f) { return f; }, pool);
  ASSERT_NE(server, nullptr);
  std::this_thread::sleep_for(std::chrono::milliseconds(80));
  const auto reply = client.call(make_frame(FrameType::kPing, "back"));
  ASSERT_TRUE(reply.has_value());
  EXPECT_EQ(reply->payload, "back");
  EXPECT_FALSE(client.suspect());
}

TEST(FrameClientTest, MidStreamServerDeathYieldsNulloptNotHang) {
  auto fixture = std::make_unique<EchoFixture>();
  FrameClientConfig config;
  config.reply_timeout_seconds = 2.0;
  FrameClient client("127.0.0.1", fixture->server->port(), config);
  ASSERT_TRUE(client.call(make_frame(FrameType::kPing, "warm")).has_value());
  fixture.reset();  // kills the server, connection drops mid-stream
  EXPECT_FALSE(client.call(make_frame(FrameType::kPing, "x")).has_value());
  EXPECT_TRUE(client.suspect());
}

TEST(FrameClientTest, ReplyTimeoutIsCountedSeparatelyWithGentleBackoff) {
  // A peer that accepts and then never answers: the verdict must be
  // kTimeout (counted in stats.timeouts), not a generic failure, and
  // the backoff window must be the short slow-peer one.
  auto listener = Listener::open(0);
  ASSERT_TRUE(listener.has_value());
  std::thread sink([&listener] {
    auto accepted = listener->accept();
    if (!accepted) return;
    Frame swallowed;
    read_frame(*accepted, swallowed);  // read the request, never reply
    std::this_thread::sleep_for(std::chrono::milliseconds(500));
  });
  FrameClientConfig config;
  config.reply_timeout_seconds = 0.1;
  config.backoff_timeout_initial_seconds = 0.05;
  config.backoff_initial_seconds = 60.0;  // a refusal would pin suspect()
  FrameClient client("127.0.0.1", listener->port(), config);
  EXPECT_FALSE(client.call(make_frame(FrameType::kPing, "x")).has_value());
  EXPECT_EQ(client.stats().timeouts, 1u);
  EXPECT_TRUE(client.suspect());
  // Gentle window: a slow peer is eclipsed for 50ms, not 60s.
  std::this_thread::sleep_for(std::chrono::milliseconds(80));
  EXPECT_FALSE(client.suspect());
  sink.join();
}

TEST(FrameClientTest, StatsAndSuspectDoNotBlockBehindInflightCall) {
  // Regression for the mutex split: health probes must return while a
  // round trip is parked on the wire.
  ThreadPool pool(2);
  auto server = FrameServer::start(
      0,
      [](const Frame& request) -> std::optional<Frame> {
        std::this_thread::sleep_for(std::chrono::milliseconds(400));
        return request;
      },
      pool);
  ASSERT_NE(server, nullptr);
  FrameClient client("127.0.0.1", server->port());
  std::future<bool> slow_call = std::async(std::launch::async, [&client] {
    return client.call(make_frame(FrameType::kPing, "slow")).has_value();
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  const auto probe_start = std::chrono::steady_clock::now();
  (void)client.suspect();
  (void)client.stats();
  const double probe_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    probe_start)
          .count();
  EXPECT_LT(probe_seconds, 0.15);  // far less than the 300ms still on the wire
  EXPECT_TRUE(slow_call.get());
}

// ----------------------------------------------------------- mux client

TEST(MuxClientTest, ConcurrentCallsShareOneConnectionWithDistinctAnswers) {
  ThreadPool pool(8);
  auto server = FrameServer::start(
      0,
      [](const Frame& request) -> std::optional<Frame> {
        // A small stagger so several exchanges overlap on the wire.
        std::this_thread::sleep_for(std::chrono::milliseconds(30));
        Frame reply = request;
        reply.type = FrameType::kPong;
        return reply;
      },
      pool);
  ASSERT_NE(server, nullptr);
  MuxFrameClient client("127.0.0.1", server->port());
  std::vector<std::future<std::optional<Frame>>> futures;
  for (int i = 0; i < 8; ++i) {
    futures.push_back(
        client.call_async(make_frame(FrameType::kPing, std::to_string(i))));
  }
  for (int i = 0; i < 8; ++i) {
    const std::optional<Frame> reply = futures[static_cast<std::size_t>(i)].get();
    ASSERT_TRUE(reply.has_value()) << "call " << i;
    EXPECT_EQ(reply->type, FrameType::kPong);
    EXPECT_EQ(reply->payload, std::to_string(i)) << "call " << i;
  }
  // Pipelining proof: one TCP connection (plus the negotiation probe is
  // the same connection), several exchanges outstanding at once.
  EXPECT_EQ(server->stats().connections, 1u);
  EXPECT_GT(client.stats().max_inflight, 1u);
  EXPECT_FALSE(client.peer_is_v1());
}

TEST(MuxClientTest, OutOfOrderRepliesCorrelateByRequestId) {
  ThreadPool pool(4);
  auto server = FrameServer::start(
      0,
      [](const Frame& request) -> std::optional<Frame> {
        if (request.payload == "slow") {
          std::this_thread::sleep_for(std::chrono::milliseconds(300));
        }
        Frame reply = request;
        reply.type = FrameType::kPong;
        return reply;
      },
      pool);
  ASSERT_NE(server, nullptr);
  MuxFrameClient client("127.0.0.1", server->port());
  auto slow = client.call_async(make_frame(FrameType::kPing, "slow"));
  auto fast = client.call_async(make_frame(FrameType::kPing, "fast"));
  // The fast reply overtakes the slow one on the shared connection...
  const std::optional<Frame> fast_reply = fast.get();
  ASSERT_TRUE(fast_reply.has_value());
  EXPECT_EQ(fast_reply->payload, "fast");
  EXPECT_NE(slow.wait_for(std::chrono::seconds(0)),
            std::future_status::ready);
  // ...and each waiter still gets its own answer.
  const std::optional<Frame> slow_reply = slow.get();
  ASSERT_TRUE(slow_reply.has_value());
  EXPECT_EQ(slow_reply->payload, "slow");
}

/// Serves the v2 negotiation ping on a raw socket: reads one frame,
/// echoes a v2 kPong with the same request id. Returns the accepted
/// socket (nullopt on failure).
std::optional<Socket> accept_and_negotiate_v2(Listener& listener) {
  auto accepted = listener.accept();
  if (!accepted) return std::nullopt;
  Frame ping;
  if (read_frame(*accepted, ping) != FrameReadStatus::kOk) return std::nullopt;
  Frame pong;
  pong.version = kProtocolVersion2;
  pong.type = FrameType::kPong;
  pong.request_id = ping.request_id;
  if (!write_frame(*accepted, pong)) return std::nullopt;
  return accepted;
}

TEST(MuxClientTest, ReplyForUnknownIdIsDroppedAndConnectionSurvives) {
  auto listener = Listener::open(0);
  ASSERT_TRUE(listener.has_value());
  std::thread server([&listener] {
    auto socket = accept_and_negotiate_v2(*listener);
    ASSERT_TRUE(socket.has_value());
    Frame request;
    ASSERT_EQ(read_frame(*socket, request), FrameReadStatus::kOk);
    // A reply nobody asked for, then the real one.
    Frame bogus;
    bogus.version = kProtocolVersion2;
    bogus.type = FrameType::kPong;
    bogus.request_id = request.request_id + 999;
    ASSERT_TRUE(write_frame(*socket, bogus));
    Frame reply = request;
    reply.type = FrameType::kPong;
    ASSERT_TRUE(write_frame(*socket, reply));
    // Hold the connection open until the client is done with it.
    Frame ignored;
    read_frame(*socket, ignored);
  });
  {
    MuxFrameClient client("127.0.0.1", listener->port());
    const std::optional<Frame> reply =
        client.call(make_frame(FrameType::kPing, "real"));
    ASSERT_TRUE(reply.has_value());
    EXPECT_EQ(reply->payload, "real");
    EXPECT_EQ(client.unknown_replies(), 1u);
    EXPECT_FALSE(client.suspect());
  }
  server.join();
}

TEST(MuxClientTest, MidStreamDeathFailsAllOutstandingPromises) {
  auto listener = Listener::open(0);
  ASSERT_TRUE(listener.has_value());
  constexpr int kOutstanding = 4;
  std::thread server([&listener] {
    auto socket = accept_and_negotiate_v2(*listener);
    ASSERT_TRUE(socket.has_value());
    for (int i = 0; i < kOutstanding; ++i) {
      Frame request;
      ASSERT_EQ(read_frame(*socket, request), FrameReadStatus::kOk);
    }
    socket->close();  // dies with every exchange still outstanding
  });
  FrameClientConfig config;
  config.reply_timeout_seconds = 30.0;  // death must come from EOF, not expiry
  MuxFrameClient client("127.0.0.1", listener->port(), config);
  std::vector<std::future<std::optional<Frame>>> futures;
  for (int i = 0; i < kOutstanding; ++i) {
    futures.push_back(
        client.call_async(make_frame(FrameType::kPing, std::to_string(i))));
  }
  for (auto& future : futures) {
    // Exactly once per waiter, promptly, with nullopt — never a hang.
    ASSERT_EQ(future.wait_for(std::chrono::seconds(10)),
              std::future_status::ready);
    EXPECT_FALSE(future.get().has_value());
  }
  EXPECT_TRUE(client.suspect());
  EXPECT_GE(client.stats().failures, static_cast<std::uint64_t>(kOutstanding));
  server.join();
}

TEST(MuxClientTest, PerRequestDeadlineExpiresWithoutKillingTheConnection) {
  ThreadPool pool(4);
  auto server = FrameServer::start(
      0,
      [](const Frame& request) -> std::optional<Frame> {
        if (request.payload == "glacial") {
          std::this_thread::sleep_for(std::chrono::milliseconds(600));
        }
        Frame reply = request;
        reply.type = FrameType::kPong;
        return reply;
      },
      pool);
  ASSERT_NE(server, nullptr);
  MuxFrameClient client("127.0.0.1", server->port());
  // A steady heartbeat keeps bytes flowing, so the expiring request is
  // "slow solve", not "silent peer" — only it may fail.
  auto warm = client.call(make_frame(FrameType::kPing, "warm"));
  ASSERT_TRUE(warm.has_value());
  auto doomed =
      client.call_async(make_frame(FrameType::kPing, "glacial"), 0.15);
  std::optional<Frame> heartbeat;
  for (int i = 0; i < 4; ++i) {
    heartbeat = client.call(make_frame(FrameType::kPing, "beat"));
    ASSERT_TRUE(heartbeat.has_value());
    std::this_thread::sleep_for(std::chrono::milliseconds(60));
  }
  ASSERT_EQ(doomed.wait_for(std::chrono::seconds(5)),
            std::future_status::ready);
  EXPECT_FALSE(doomed.get().has_value());
  EXPECT_GE(client.stats().timeouts, 1u);
  // The connection survived the expiry: later calls still answered,
  // and the glacial reply that eventually lands is dropped by id.
  EXPECT_TRUE(client.call(make_frame(FrameType::kPing, "after")).has_value());
  EXPECT_EQ(server->stats().connections, 1u);
}

TEST(MuxClientTest, V1PeerNegotiatesDownToLockStep) {
  auto listener = Listener::open(0);
  ASSERT_TRUE(listener.has_value());
  // A faithful v1 peer: rejects the v2 probe the way the old server
  // rejected unknown versions (v1 kError + close), then serves plain
  // v1 lock-step echo on the reconnect.
  std::thread server([&listener] {
    {
      auto probe = listener->accept();
      ASSERT_TRUE(probe.has_value());
      Frame request;
      ASSERT_EQ(read_frame(*probe, request), FrameReadStatus::kOk);
      EXPECT_EQ(request.version, kProtocolVersion2);
      Frame error;
      error.type = FrameType::kError;
      error.payload = "unsupported protocol version";
      ASSERT_TRUE(write_frame(*probe, error));
    }  // close: exactly what a v1 server does after a version error
    auto session = listener->accept();
    ASSERT_TRUE(session.has_value());
    for (;;) {
      Frame request;
      if (read_frame(*session, request) != FrameReadStatus::kOk) return;
      EXPECT_EQ(request.version, kProtocolVersion);  // ids stripped
      EXPECT_EQ(request.request_id, 0u);
      Frame reply = request;
      reply.type = FrameType::kPong;
      if (!write_frame(*session, reply)) return;
    }
  });
  {
    MuxFrameClient client("127.0.0.1", listener->port());
    for (int i = 0; i < 3; ++i) {
      const std::optional<Frame> reply =
          client.call(make_frame(FrameType::kPing, "v1 " + std::to_string(i)));
      ASSERT_TRUE(reply.has_value()) << "call " << i;
      EXPECT_EQ(reply->payload, "v1 " + std::to_string(i));
    }
    EXPECT_TRUE(client.peer_is_v1());
    // Lock-step by construction: the watermark never exceeds the
    // queue depth seen at enqueue, and exchanges serialize.
    listener->close();
  }
  server.join();
}

// ------------------------------------------------------ backoff jitter

TEST(BackoffJitter, DrawsStayInsideTheFractionBandAndActuallySpread) {
  std::uint64_t state = jitter_seed_for("127.0.0.1", 4242);
  ASSERT_NE(state, 0u);
  const double base = 0.2;
  const double jitter = 0.25;
  double lo = 1e9;
  double hi = 0.0;
  for (int i = 0; i < 64; ++i) {
    const double drawn = jittered_backoff(base, jitter, state);
    EXPECT_GE(drawn, base * (1.0 - jitter));
    EXPECT_LE(drawn, base * (1.0 + jitter));
    lo = std::min(lo, drawn);
    hi = std::max(hi, drawn);
  }
  // The herd-breaking property: the stream genuinely spreads over the
  // band instead of collapsing to the midpoint (64 uniform draws reach
  // both outer 15% tails with overwhelming probability).
  EXPECT_LT(lo, base * 0.85);
  EXPECT_GT(hi, base * 1.15);
}

TEST(BackoffJitter, SameSeedSameStreamDifferentSeedsDiverge) {
  std::uint64_t a = jitter_seed_for("10.0.0.1", 9000);
  std::uint64_t b = jitter_seed_for("10.0.0.1", 9000);
  std::uint64_t c = jitter_seed_for("10.0.0.1", 9001);
  bool diverged = false;
  for (int i = 0; i < 16; ++i) {
    const double from_a = jittered_backoff(1.0, 0.25, a);
    EXPECT_DOUBLE_EQ(from_a, jittered_backoff(1.0, 0.25, b));
    if (from_a != jittered_backoff(1.0, 0.25, c)) diverged = true;
  }
  EXPECT_TRUE(diverged);
}

TEST(BackoffJitter, ZeroJitterIsExactAndFractionIsClamped) {
  std::uint64_t state = 1;
  EXPECT_DOUBLE_EQ(jittered_backoff(0.5, 0.0, state), 0.5);
  // A fraction above 1 clamps to 1: a drawn window may reach 0 but
  // never goes negative.
  for (int i = 0; i < 32; ++i) {
    const double drawn = jittered_backoff(0.5, 7.0, state);
    EXPECT_GE(drawn, 0.0);
    EXPECT_LE(drawn, 1.0);
  }
}

// ------------------------------------------------------- authentication

TEST(FrameAuth, WrongTokenIsRejectedCountedAndRightTokenAdmits) {
  ThreadPool pool{4};
  obs::Registry metrics;
  auto server = FrameServer::start(
      0,
      [](const Frame& request) -> std::optional<Frame> {
        Frame reply = request;
        reply.type = FrameType::kPong;
        return reply;
      },
      pool, kDefaultMaxPayload, &metrics, nullptr, nullptr, "sesame");
  ASSERT_NE(server, nullptr);

  // No token: the first frame is not kAuth — answered with kError (or
  // already torn down), never handled.
  {
    FrameClient anonymous("127.0.0.1", server->port());
    const auto reply = anonymous.call(make_frame(FrameType::kPing, ""));
    EXPECT_TRUE(!reply.has_value() || reply->type == FrameType::kError);
  }
  // Wrong token: the handshake itself is refused.
  {
    FrameClientConfig config;
    config.auth_token = "wrong";
    FrameClient impostor("127.0.0.1", server->port(), config);
    EXPECT_FALSE(impostor.call(make_frame(FrameType::kPing, "")).has_value());
  }
  EXPECT_GE(server->stats().auth_failures, 2u);
  EXPECT_GE(metrics.counter("net_server_auth_failures_total").value(), 2u);

  // The right token admits lock-step and mux clients alike.
  FrameClientConfig config;
  config.auth_token = "sesame";
  FrameClient client("127.0.0.1", server->port(), config);
  const auto reply = client.call(make_frame(FrameType::kPing, "open"));
  ASSERT_TRUE(reply.has_value());
  EXPECT_EQ(reply->type, FrameType::kPong);
  EXPECT_EQ(reply->payload, "open");

  MuxFrameClient mux("127.0.0.1", server->port(), config);
  const auto mux_reply = mux.call(make_frame(FrameType::kPing, "mux"));
  ASSERT_TRUE(mux_reply.has_value());
  EXPECT_EQ(mux_reply->payload, "mux");
}

TEST(FrameAuth, TokenOnAnOpenServerIsHarmless) {
  // A client configured with a token against a server that never asked
  // for one: the kAuth frame is just another frame — the server must
  // acknowledge rather than choke, so one config can span mixed fleets.
  EchoFixture fixture;
  FrameClientConfig config;
  config.auth_token = "sesame";
  FrameClient client("127.0.0.1", fixture.server->port(), config);
  const auto reply = client.call(make_frame(FrameType::kPing, "hello"));
  ASSERT_TRUE(reply.has_value());
  EXPECT_EQ(reply->payload, "hello");
}

TEST(MuxClientTest, NoServerFailsCleanlyAndArmsBackoff) {
  FrameClientConfig config;
  config.connect_timeout_seconds = 0.5;
  config.backoff_initial_seconds = 60.0;  // window outlives the test
  MuxFrameClient client("127.0.0.1", 1, config);
  EXPECT_FALSE(client.call(make_frame(FrameType::kPing, "x")).has_value());
  EXPECT_TRUE(client.suspect());
  const auto start = std::chrono::steady_clock::now();
  EXPECT_FALSE(client.call(make_frame(FrameType::kPing, "y")).has_value());
  const double seconds = std::chrono::duration<double>(
                             std::chrono::steady_clock::now() - start)
                             .count();
  EXPECT_LT(seconds, 0.25);
  EXPECT_GE(client.stats().fast_failures, 1u);
}

}  // namespace
}  // namespace prts::net
