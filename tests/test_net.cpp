// The fabric transport: frame codec round trips, incremental decoding,
// and the robustness contract — malformed magic, truncated frames,
// oversized payloads, version mismatches and mid-stream disconnects
// produce clean errors on live sockets, never crashes or hangs.
#include "net/frame.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <future>
#include <thread>
#include <vector>

#include "common/rng.hpp"
#include "common/thread_pool.hpp"
#include "net/frame_client.hpp"
#include "net/frame_server.hpp"
#include "net/socket.hpp"

namespace prts::net {
namespace {

Frame make_frame(FrameType type, std::string payload) {
  Frame frame;
  frame.type = type;
  frame.payload = std::move(payload);
  return frame;
}

// ---------------------------------------------------------- frame codec

TEST(FrameCodec, EncodeDecodeRoundTrip) {
  const Frame frame = make_frame(FrameType::kSolveRequest, "hello fabric");
  const std::string bytes = encode_frame(frame);
  ASSERT_EQ(bytes.size(), kFrameHeaderBytes + frame.payload.size());

  const DecodeResult decoded = decode_frame(bytes);
  ASSERT_EQ(decoded.status, DecodeStatus::kFrame);
  EXPECT_EQ(decoded.frame.version, kProtocolVersion);
  EXPECT_EQ(decoded.frame.type, FrameType::kSolveRequest);
  EXPECT_EQ(decoded.frame.payload, "hello fabric");
  EXPECT_EQ(decoded.consumed, bytes.size());
}

TEST(FrameCodec, EmptyPayloadRoundTrips) {
  const std::string bytes = encode_frame(make_frame(FrameType::kPing, ""));
  const DecodeResult decoded = decode_frame(bytes);
  ASSERT_EQ(decoded.status, DecodeStatus::kFrame);
  EXPECT_TRUE(decoded.frame.payload.empty());
}

TEST(FrameCodec, TruncatedInputNeedsMore) {
  const std::string bytes =
      encode_frame(make_frame(FrameType::kSolveReply, "payload"));
  for (std::size_t cut = 0; cut < bytes.size(); ++cut) {
    const DecodeResult decoded =
        decode_frame(std::string_view(bytes).substr(0, cut));
    EXPECT_EQ(decoded.status, DecodeStatus::kNeedMore) << "cut=" << cut;
    EXPECT_EQ(decoded.consumed, 0u);
  }
}

TEST(FrameCodec, BadMagicIsRejected) {
  std::string bytes = encode_frame(make_frame(FrameType::kPing, "x"));
  bytes[0] = 'X';
  EXPECT_EQ(decode_frame(bytes).status, DecodeStatus::kBadMagic);
}

TEST(FrameCodec, VersionMismatchIsRejected) {
  Frame frame = make_frame(FrameType::kPing, "x");
  frame.version = kProtocolVersion + 1;
  EXPECT_EQ(decode_frame(encode_frame(frame)).status,
            DecodeStatus::kBadVersion);
}

TEST(FrameCodec, OversizedLengthIsRejectedNotAllocated) {
  Frame frame = make_frame(FrameType::kPing, "small");
  std::string bytes = encode_frame(frame);
  // Rewrite the length field to claim ~4 GiB.
  bytes[8] = static_cast<char>(0xff);
  bytes[9] = static_cast<char>(0xff);
  bytes[10] = static_cast<char>(0xff);
  bytes[11] = static_cast<char>(0xf0);
  EXPECT_EQ(decode_frame(bytes).status, DecodeStatus::kOversized);
  // A small cap applies to honest frames too.
  EXPECT_EQ(decode_frame(encode_frame(frame), 3).status,
            DecodeStatus::kOversized);
}

// -------------------------------------------- incremental decoder soak

/// Runs `stream` through a FrameDecoder in the given chunking,
/// collecting every decoded frame; fails the test on any error verdict.
void decode_chunked(const std::string& stream,
                    const std::vector<std::size_t>& cuts,
                    std::vector<Frame>& frames) {
  FrameDecoder decoder;
  const auto drain = [&] {
    for (;;) {
      const DecodeResult result = decoder.next();
      if (result.status == DecodeStatus::kNeedMore) return true;
      if (result.status != DecodeStatus::kFrame) return false;
      frames.push_back(result.frame);
    }
  };
  std::size_t start = 0;
  for (const std::size_t cut : cuts) {
    decoder.feed(std::string_view(stream).substr(start, cut - start));
    ASSERT_TRUE(drain()) << "error verdict after feeding [0, " << cut << ")";
    start = cut;
  }
  decoder.feed(std::string_view(stream).substr(start));
  ASSERT_TRUE(drain()) << "error verdict after the final chunk";
  EXPECT_EQ(decoder.buffered(), 0u);
}

void expect_same_frames(const std::vector<Frame>& decoded,
                        const std::vector<Frame>& sent) {
  ASSERT_EQ(decoded.size(), sent.size());
  for (std::size_t i = 0; i < sent.size(); ++i) {
    EXPECT_EQ(decoded[i].version, sent[i].version) << "frame " << i;
    EXPECT_EQ(decoded[i].type, sent[i].type) << "frame " << i;
    EXPECT_EQ(decoded[i].payload, sent[i].payload) << "frame " << i;
  }
}

TEST(FrameDecoderProperty, EverySplitPointOfATwoFrameStreamDecodesTheSame) {
  const std::vector<Frame> sent{
      make_frame(FrameType::kSolveRequest, "first payload"),
      make_frame(FrameType::kPong, ""),
  };
  std::string stream;
  for (const Frame& frame : sent) stream += encode_frame(frame);

  // Exhaustive: deliver the stream as [0, cut) + [cut, end) for every
  // cut — header split mid-magic, mid-length, payload split, frame
  // boundary, everything.
  for (std::size_t cut = 0; cut <= stream.size(); ++cut) {
    std::vector<Frame> decoded;
    decode_chunked(stream, {cut}, decoded);
    if (::testing::Test::HasFatalFailure()) FAIL() << "cut=" << cut;
    expect_same_frames(decoded, sent);
  }
}

TEST(FrameDecoderProperty, RandomChunkingsOfARandomStreamAreInvariant) {
  // Seeded generator: the soak is randomized but reproducible.
  prts::Rng rng(20260726);
  for (int round = 0; round < 50; ++round) {
    // A random valid stream: 1..8 frames, payloads 0..300 bytes of
    // arbitrary octets (framing must not care about payload content).
    std::vector<Frame> sent;
    const std::size_t frame_count =
        static_cast<std::size_t>(rng.uniform_int(1, 8));
    for (std::size_t f = 0; f < frame_count; ++f) {
      Frame frame;
      frame.type = static_cast<FrameType>(rng.uniform_int(0, 9));
      std::string payload(
          static_cast<std::size_t>(rng.uniform_int(0, 300)), '\0');
      for (char& byte : payload) {
        byte = static_cast<char>(rng.uniform_int(0, 255));
      }
      frame.payload = std::move(payload);
      sent.push_back(std::move(frame));
    }
    std::string stream;
    for (const Frame& frame : sent) stream += encode_frame(frame);

    // Random cut set: from byte-at-a-time dribble to one coalesced
    // delivery.
    std::vector<std::size_t> cuts;
    const std::size_t cut_count =
        static_cast<std::size_t>(rng.uniform_int(0, 12));
    for (std::size_t c = 0; c < cut_count; ++c) {
      cuts.push_back(static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(stream.size()))));
    }
    std::sort(cuts.begin(), cuts.end());

    std::vector<Frame> decoded;
    decode_chunked(stream, cuts, decoded);
    if (::testing::Test::HasFatalFailure()) {
      FAIL() << "round=" << round;
    }
    expect_same_frames(decoded, sent);
  }
}

TEST(FrameDecoderProperty, ByteAtATimeDribbleDecodesEverything) {
  std::vector<Frame> sent;
  for (int i = 0; i < 5; ++i) {
    sent.push_back(make_frame(FrameType::kGossipDigest,
                              std::string(static_cast<std::size_t>(i) * 7,
                                          static_cast<char>('a' + i))));
  }
  std::string stream;
  for (const Frame& frame : sent) stream += encode_frame(frame);

  std::vector<std::size_t> cuts(stream.size());
  for (std::size_t i = 0; i < stream.size(); ++i) cuts[i] = i;
  std::vector<Frame> decoded;
  decode_chunked(stream, cuts, decoded);
  expect_same_frames(decoded, sent);
}

TEST(FrameDecoder, ErrorVerdictsAreSticky) {
  FrameDecoder decoder;
  std::string bytes = encode_frame(make_frame(FrameType::kPing, "x"));
  bytes[0] = 'X';  // bad magic
  decoder.feed(bytes);
  EXPECT_EQ(decoder.next().status, DecodeStatus::kBadMagic);
  // Framing is lost for good: feeding a perfectly valid frame after the
  // poison changes nothing.
  decoder.feed(encode_frame(make_frame(FrameType::kPing, "y")));
  EXPECT_EQ(decoder.next().status, DecodeStatus::kBadMagic);
}

// ------------------------------------------------------- socket framing

/// A loopback listener + connected client pair.
struct Loopback {
  Listener listener;
  Socket client;
  Socket server;

  static Loopback open() {
    Loopback pair;
    auto listener = Listener::open(0);
    EXPECT_TRUE(listener.has_value());
    pair.listener = std::move(*listener);
    auto connected =
        tcp_connect("127.0.0.1", pair.listener.port(), 2.0);
    EXPECT_TRUE(connected.has_value());
    pair.client = std::move(*connected);
    auto accepted = pair.listener.accept();
    EXPECT_TRUE(accepted.has_value());
    pair.server = std::move(*accepted);
    return pair;
  }
};

TEST(SocketFraming, WriteReadRoundTrip) {
  Loopback pair = Loopback::open();
  const Frame sent = make_frame(FrameType::kSolveRequest,
                                std::string(100000, 'z'));
  ASSERT_TRUE(write_frame(pair.client, sent));
  Frame received;
  ASSERT_EQ(read_frame(pair.server, received), FrameReadStatus::kOk);
  EXPECT_EQ(received.type, sent.type);
  EXPECT_EQ(received.payload, sent.payload);
}

TEST(SocketFraming, CleanDisconnectBetweenFramesIsClosed) {
  Loopback pair = Loopback::open();
  pair.client.close();
  Frame frame;
  EXPECT_EQ(read_frame(pair.server, frame), FrameReadStatus::kClosed);
}

TEST(SocketFraming, MidFrameDisconnectIsTruncated) {
  Loopback pair = Loopback::open();
  const std::string bytes =
      encode_frame(make_frame(FrameType::kSolveRequest, "partial"));
  ASSERT_TRUE(pair.client.send_all(bytes.data(), bytes.size() - 3));
  pair.client.close();
  Frame frame;
  EXPECT_EQ(read_frame(pair.server, frame), FrameReadStatus::kTruncated);
}

TEST(SocketFraming, OversizedHeaderIsReportedBeforeReadingPayload) {
  Loopback pair = Loopback::open();
  Frame huge = make_frame(FrameType::kPing, "");
  std::string bytes = encode_frame(huge);
  bytes[8] = static_cast<char>(0x7f);  // ~2 GiB claimed, nothing sent
  ASSERT_TRUE(pair.client.send_all(bytes.data(), bytes.size()));
  Frame frame;
  EXPECT_EQ(read_frame(pair.server, frame), FrameReadStatus::kOversized);
}

// ------------------------------------------------------- server + client

/// An echo server on an ephemeral port with its own pool.
struct EchoFixture {
  ThreadPool pool{4};
  std::unique_ptr<FrameServer> server;

  EchoFixture() {
    server = FrameServer::start(
        0,
        [](const Frame& request) -> std::optional<Frame> {
          Frame reply = request;
          reply.type = FrameType::kPong;
          return reply;
        },
        pool);
    EXPECT_NE(server, nullptr);
  }
};

TEST(FrameServerTest, EchoRoundTripAndStats) {
  EchoFixture fixture;
  FrameClient client("127.0.0.1", fixture.server->port());
  for (int i = 0; i < 3; ++i) {
    const auto reply =
        client.call(make_frame(FrameType::kPing, "echo " + std::to_string(i)));
    ASSERT_TRUE(reply.has_value());
    EXPECT_EQ(reply->type, FrameType::kPong);
    EXPECT_EQ(reply->payload, "echo " + std::to_string(i));
  }
  const FrameServerStats stats = fixture.server->stats();
  EXPECT_EQ(stats.connections, 1u);  // one client, one connection reused
  EXPECT_EQ(stats.frames, 3u);
  EXPECT_EQ(stats.protocol_errors, 0u);
}

TEST(FrameServerTest, ManyConcurrentClients) {
  EchoFixture fixture;
  std::vector<std::future<bool>> results;
  for (int c = 0; c < 8; ++c) {
    results.push_back(std::async(std::launch::async, [&fixture, c] {
      FrameClient client("127.0.0.1", fixture.server->port());
      for (int i = 0; i < 5; ++i) {
        const auto reply = client.call(
            make_frame(FrameType::kPing, std::to_string(c * 100 + i)));
        if (!reply || reply->payload != std::to_string(c * 100 + i)) {
          return false;
        }
      }
      return true;
    }));
  }
  for (auto& result : results) EXPECT_TRUE(result.get());
}

TEST(FrameServerTest, BadMagicGetsErrorFrameAndServerSurvives) {
  EchoFixture fixture;
  auto raw = tcp_connect("127.0.0.1", fixture.server->port(), 2.0);
  ASSERT_TRUE(raw.has_value());
  const std::string garbage = "GET / HTTP/1.1\r\n\r\n";
  ASSERT_TRUE(raw->send_all(garbage.data(), garbage.size()));
  Frame reply;
  ASSERT_EQ(read_frame(*raw, reply), FrameReadStatus::kOk);
  EXPECT_EQ(reply.type, FrameType::kError);
  EXPECT_EQ(reply.payload, "bad magic");
  // The connection is closed after the error...
  EXPECT_EQ(read_frame(*raw, reply), FrameReadStatus::kClosed);
  // ...but the server keeps serving fresh connections.
  FrameClient client("127.0.0.1", fixture.server->port());
  EXPECT_TRUE(client.call(make_frame(FrameType::kPing, "alive")).has_value());
  EXPECT_GE(fixture.server->stats().protocol_errors, 1u);
}

TEST(FrameServerTest, VersionMismatchGetsErrorFrame) {
  EchoFixture fixture;
  auto raw = tcp_connect("127.0.0.1", fixture.server->port(), 2.0);
  ASSERT_TRUE(raw.has_value());
  Frame future_version = make_frame(FrameType::kPing, "from the future");
  future_version.version = kProtocolVersion + 7;
  ASSERT_TRUE(write_frame(*raw, future_version));
  Frame reply;
  ASSERT_EQ(read_frame(*raw, reply), FrameReadStatus::kOk);
  EXPECT_EQ(reply.type, FrameType::kError);
  EXPECT_EQ(reply.payload, "unsupported protocol version");
}

TEST(FrameServerTest, OversizedPayloadGetsErrorFrame) {
  ThreadPool pool(2);
  auto server = FrameServer::start(
      0, [](const Frame& f) { return f; }, pool, /*max_payload=*/64);
  ASSERT_NE(server, nullptr);
  auto raw = tcp_connect("127.0.0.1", server->port(), 2.0);
  ASSERT_TRUE(raw.has_value());
  const std::string big =
      encode_frame(make_frame(FrameType::kPing, std::string(65, 'x')));
  ASSERT_TRUE(raw->send_all(big.data(), big.size()));
  Frame reply;
  ASSERT_EQ(read_frame(*raw, reply), FrameReadStatus::kOk);
  EXPECT_EQ(reply.type, FrameType::kError);
  EXPECT_EQ(reply.payload, "payload too large");
}

TEST(FrameServerTest, TruncatedFrameThenDisconnectIsCountedNotFatal) {
  EchoFixture fixture;
  {
    auto raw = tcp_connect("127.0.0.1", fixture.server->port(), 2.0);
    ASSERT_TRUE(raw.has_value());
    const std::string bytes =
        encode_frame(make_frame(FrameType::kPing, "never finished"));
    ASSERT_TRUE(raw->send_all(bytes.data(), bytes.size() - 5));
  }  // disconnect mid-frame
  // The server must notice and keep serving; poll until the error is
  // counted (the connection task runs asynchronously).
  for (int spin = 0; spin < 200; ++spin) {
    if (fixture.server->stats().protocol_errors >= 1) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_GE(fixture.server->stats().protocol_errors, 1u);
  FrameClient client("127.0.0.1", fixture.server->port());
  EXPECT_TRUE(client.call(make_frame(FrameType::kPing, "alive")).has_value());
}

TEST(FrameServerTest, StopUnblocksIdleConnections) {
  auto fixture = std::make_unique<EchoFixture>();
  FrameClient client("127.0.0.1", fixture->server->port());
  ASSERT_TRUE(client.call(make_frame(FrameType::kPing, "warm")).has_value());
  // The server-side connection loop is now blocked in read_frame;
  // stop() must wake it and return promptly.
  fixture->server->stop();
  // After stop, the client's next call fails cleanly.
  EXPECT_FALSE(client.call(make_frame(FrameType::kPing, "gone")).has_value());
}

// -------------------------------------------------------------- client

TEST(FrameClientTest, NoServerFailsCleanlyAndArmsBackoff) {
  // Port 1 is essentially never listening on loopback.
  FrameClientConfig config;
  config.connect_timeout_seconds = 0.5;
  config.backoff_initial_seconds = 60.0;  // window outlives the test
  FrameClient client("127.0.0.1", 1, config);
  EXPECT_FALSE(client.call(make_frame(FrameType::kPing, "x")).has_value());
  EXPECT_TRUE(client.suspect());
  // Inside the window the failure is immediate (no connect attempt).
  const auto start = std::chrono::steady_clock::now();
  EXPECT_FALSE(client.call(make_frame(FrameType::kPing, "y")).has_value());
  const double seconds = std::chrono::duration<double>(
                             std::chrono::steady_clock::now() - start)
                             .count();
  EXPECT_LT(seconds, 0.25);
  EXPECT_GE(client.stats().fast_failures, 1u);
  EXPECT_EQ(client.stats().failures, 2u);
}

TEST(FrameClientTest, RecoversAfterBackoffWindow) {
  FrameClientConfig config;
  config.connect_timeout_seconds = 0.5;
  config.backoff_initial_seconds = 0.05;
  ThreadPool pool(2);
  // Fail once against a dead port, then bring a server up on that very
  // port and retry after the window.
  auto placeholder = Listener::open(0);
  ASSERT_TRUE(placeholder.has_value());
  const std::uint16_t port = placeholder->port();
  placeholder->close();

  FrameClient client("127.0.0.1", port, config);
  EXPECT_FALSE(client.call(make_frame(FrameType::kPing, "x")).has_value());

  auto server = FrameServer::start(
      port, [](const Frame& f) { return f; }, pool);
  ASSERT_NE(server, nullptr);
  std::this_thread::sleep_for(std::chrono::milliseconds(80));
  const auto reply = client.call(make_frame(FrameType::kPing, "back"));
  ASSERT_TRUE(reply.has_value());
  EXPECT_EQ(reply->payload, "back");
  EXPECT_FALSE(client.suspect());
}

TEST(FrameClientTest, MidStreamServerDeathYieldsNulloptNotHang) {
  auto fixture = std::make_unique<EchoFixture>();
  FrameClientConfig config;
  config.reply_timeout_seconds = 2.0;
  FrameClient client("127.0.0.1", fixture->server->port(), config);
  ASSERT_TRUE(client.call(make_frame(FrameType::kPing, "warm")).has_value());
  fixture.reset();  // kills the server, connection drops mid-stream
  EXPECT_FALSE(client.call(make_frame(FrameType::kPing, "x")).has_value());
  EXPECT_TRUE(client.suspect());
}

}  // namespace
}  // namespace prts::net
