#include "core/reliability_dp.hpp"

#include <gtest/gtest.h>

#include "eval/evaluation.hpp"
#include "model/generator.hpp"
#include "test_oracle.hpp"
#include "test_util.hpp"

namespace prts {
namespace {

TEST(ReliabilityDp, SingleTaskReplicatesFully) {
  const TaskChain chain({{10.0, 0.0}});
  const Platform platform = Platform::homogeneous(5, 1.0, 0.01, 1.0, 0.0, 3);
  const DpSolution solution = optimize_reliability(chain, platform);
  ASSERT_EQ(solution.mapping.interval_count(), 1u);
  // K = 3 replicas is optimal (replication always helps).
  EXPECT_EQ(solution.mapping.processors(0).size(), 3u);
}

TEST(ReliabilityDp, ReturnedValueMatchesMappingEvaluation) {
  Rng rng(1);
  for (int trial = 0; trial < 10; ++trial) {
    const TaskChain chain = testutil::small_chain(rng, 6);
    const Platform platform = testutil::small_hom_platform(5, 2);
    const DpSolution solution = optimize_reliability(chain, platform);
    ASSERT_FALSE(solution.mapping.validate(platform).has_value());
    EXPECT_NEAR(
        solution.reliability.log(),
        mapping_reliability(chain, platform, solution.mapping).log(),
        1e-10);
  }
}

TEST(ReliabilityDp, RejectsHeterogeneousPlatform) {
  Rng rng(2);
  const TaskChain chain = testutil::small_chain(rng, 4);
  const Platform platform = testutil::small_het_platform(rng, 4, 2);
  EXPECT_THROW(optimize_reliability(chain, platform), std::invalid_argument);
}

class ReliabilityDpOptimality : public ::testing::TestWithParam<int> {};

TEST_P(ReliabilityDpOptimality, MatchesExhaustiveSearch) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) + 100);
  const auto n = static_cast<std::size_t>(rng.uniform_int(2, 6));
  const auto p = static_cast<std::size_t>(rng.uniform_int(1, 6));
  const auto k = static_cast<unsigned>(rng.uniform_int(1, 3));
  const TaskChain chain = testutil::small_chain(rng, n);
  const Platform platform = testutil::small_hom_platform(p, k);
  const DpSolution solution = optimize_reliability(chain, platform);
  const auto oracle =
      testutil::brute_force_best_log_reliability(chain, platform);
  ASSERT_TRUE(oracle.has_value());
  EXPECT_NEAR(solution.reliability.log(), *oracle, 1e-9)
      << "n=" << n << " p=" << p << " K=" << k;
}

INSTANTIATE_TEST_SUITE_P(Seeds, ReliabilityDpOptimality,
                         ::testing::Range(0, 40));

TEST(ReliabilityDp, MorePlatformNeverHurts) {
  Rng rng(3);
  const TaskChain chain = testutil::small_chain(rng, 6);
  double previous = -1e300;
  for (std::size_t p = 1; p <= 8; ++p) {
    const Platform platform = testutil::small_hom_platform(p, 3);
    const DpSolution solution = optimize_reliability(chain, platform);
    EXPECT_GE(solution.reliability.log(), previous - 1e-12);
    previous = solution.reliability.log();
  }
}

TEST(ReliabilityDp, UsesAtMostAllProcessors) {
  Rng rng(4);
  const TaskChain chain = testutil::small_chain(rng, 8);
  const Platform platform = testutil::small_hom_platform(4, 3);
  const DpSolution solution = optimize_reliability(chain, platform);
  EXPECT_LE(solution.mapping.processors_used(), 4u);
  ASSERT_FALSE(solution.mapping.validate(platform).has_value());
}

TEST(ReliabilityDp, PaperScaleRunsFast) {
  Rng rng(5);
  const TaskChain chain = paper::chain(rng);
  const Platform platform = paper::hom_platform();
  const DpSolution solution = optimize_reliability(chain, platform);
  EXPECT_GT(solution.reliability.log(), -1.0);
  EXPECT_LE(solution.mapping.interval_count(), 10u);
}

}  // namespace
}  // namespace prts
