#include "core/local_search.hpp"

#include <gtest/gtest.h>

#include <limits>

#include "core/exact.hpp"
#include "core/heuristics.hpp"
#include "core/reliability_dp.hpp"
#include "test_util.hpp"

namespace prts {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

TEST(LocalSearch, NeverWorsensTheStart) {
  Rng rng(1);
  for (int trial = 0; trial < 20; ++trial) {
    const TaskChain chain = testutil::small_chain(rng, 6);
    const Platform platform = testutil::small_het_platform(rng, 6, 3);
    const Mapping start = testutil::random_mapping(rng, chain, platform);
    const auto improved = improve_mapping(chain, platform, start);
    ASSERT_TRUE(improved.has_value());
    EXPECT_GE(improved->metrics.reliability.log(),
              mapping_reliability(chain, platform, start).log() - 1e-12);
    EXPECT_FALSE(improved->mapping.validate(platform).has_value());
  }
}

TEST(LocalSearch, RespectsBounds) {
  Rng rng(2);
  for (int trial = 0; trial < 20; ++trial) {
    const TaskChain chain = testutil::small_chain(rng, 6);
    const Platform platform = testutil::small_het_platform(rng, 6, 2);
    HeuristicOptions heuristic_options;
    heuristic_options.period_bound = rng.uniform_real(8.0, 40.0);
    heuristic_options.latency_bound = rng.uniform_real(25.0, 120.0);
    const auto start = run_heuristic(chain, platform,
                                     HeuristicKind::kHeurP,
                                     heuristic_options);
    if (!start) continue;
    LocalSearchOptions options;
    options.period_bound = heuristic_options.period_bound;
    options.latency_bound = heuristic_options.latency_bound;
    const auto improved =
        improve_mapping(chain, platform, start->mapping, options);
    ASSERT_TRUE(improved.has_value());
    EXPECT_LE(improved->metrics.worst_period,
              options.period_bound + 1e-9);
    EXPECT_LE(improved->metrics.worst_latency,
              options.latency_bound + 1e-9);
    EXPECT_GE(improved->metrics.reliability.log(),
              start->metrics.reliability.log() - 1e-12);
  }
}

TEST(LocalSearch, InfeasibleStartRejected) {
  Rng rng(3);
  const TaskChain chain = testutil::small_chain(rng, 5);
  const Platform platform = testutil::small_hom_platform(5, 2);
  const Mapping start = testutil::random_mapping(rng, chain, platform);
  LocalSearchOptions options;
  options.period_bound = 1e-9;  // nothing satisfies this
  EXPECT_FALSE(improve_mapping(chain, platform, start, options).has_value());
}

TEST(LocalSearch, ReachesOptimumFromPoorStartOnSmallInstances) {
  // Hill climbing will not always reach the global optimum, but from a
  // deliberately poor start (everything in one interval on one slow
  // processor pair) it must close most of the gap; on many small
  // homogeneous instances it lands exactly on the optimum.
  Rng rng(4);
  std::size_t exact_hits = 0;
  const int trials = 20;
  for (int trial = 0; trial < trials; ++trial) {
    const TaskChain chain = testutil::small_chain(rng, 5);
    const Platform platform = testutil::small_hom_platform(6, 3);
    const Mapping start(IntervalPartition::single(5), {{0}});
    const auto improved = improve_mapping(chain, platform, start);
    ASSERT_TRUE(improved.has_value());
    const auto optimum = optimize_reliability(chain, platform);
    EXPECT_LE(improved->metrics.reliability.log(),
              optimum.reliability.log() + 1e-12);
    if (improved->metrics.reliability.log() >=
        optimum.reliability.log() - 1e-9) {
      ++exact_hits;
    }
    // The start had one replica on one interval; any improvement implies
    // the climb worked at all.
    EXPECT_GT(improved->metrics.reliability.log(),
              mapping_reliability(chain, platform, start).log());
  }
  EXPECT_GE(exact_hits, static_cast<std::size_t>(trials / 2));
}

TEST(LocalSearch, ImprovesHeuristicsOnHeterogeneousInstances) {
  // Aggregate check: across instances, local search starting from the
  // best heuristic result is never worse and sometimes strictly better.
  Rng rng(5);
  std::size_t strict_improvements = 0;
  for (int trial = 0; trial < 25; ++trial) {
    const TaskChain chain = testutil::small_chain(rng, 7);
    const Platform platform = testutil::small_het_platform(rng, 7, 3);
    HeuristicOptions heuristic_options;
    heuristic_options.period_bound = 30.0;
    heuristic_options.latency_bound = 150.0;
    const auto start = run_heuristic(chain, platform,
                                     HeuristicKind::kHeurP,
                                     heuristic_options);
    if (!start) continue;
    LocalSearchOptions options;
    options.period_bound = heuristic_options.period_bound;
    options.latency_bound = heuristic_options.latency_bound;
    const auto improved =
        improve_mapping(chain, platform, start->mapping, options);
    ASSERT_TRUE(improved.has_value());
    if (improved->metrics.reliability.log() >
        start->metrics.reliability.log() + 1e-9) {
      ++strict_improvements;
    }
  }
  EXPECT_GT(strict_improvements, 0u);
}

TEST(LocalSearch, HonorsAllocationConstraints) {
  Rng rng(6);
  const TaskChain chain = testutil::small_chain(rng, 4);
  const Platform platform = testutil::small_hom_platform(4, 2);
  auto constraints = AllocationConstraints::all_allowed(4, 4);
  // Task 0 may only run on processor 0.
  for (std::size_t u : {1u, 2u, 3u}) constraints.forbid(0, u);
  const Mapping start(IntervalPartition::single(4), {{0}});
  LocalSearchOptions options;
  options.constraints = &constraints;
  const auto improved = improve_mapping(chain, platform, start, options);
  ASSERT_TRUE(improved.has_value());
  // Whatever the result, the interval containing task 0 only uses P0.
  const std::size_t j =
      improved->mapping.partition().interval_of(0);
  for (std::size_t u : improved->mapping.processors(j)) {
    EXPECT_EQ(u, 0u);
  }
}

TEST(LocalSearch, TerminatesWithinRoundLimit) {
  Rng rng(7);
  const TaskChain chain = testutil::small_chain(rng, 6);
  const Platform platform = testutil::small_het_platform(rng, 6, 3);
  const Mapping start = testutil::random_mapping(rng, chain, platform);
  LocalSearchOptions options;
  options.max_rounds = 2;
  const auto improved = improve_mapping(chain, platform, start, options);
  ASSERT_TRUE(improved.has_value());
  EXPECT_LE(improved->rounds, 2u);
}

TEST(LocalSearch, UnboundedSearchOnHomInstancesMatchesAlgorithm1Often) {
  Rng rng(8);
  std::size_t matches = 0;
  const int trials = 15;
  for (int trial = 0; trial < trials; ++trial) {
    const TaskChain chain = testutil::small_chain(rng, 6);
    const Platform platform = testutil::small_hom_platform(6, 2);
    HeuristicOptions heuristic_options;
    const auto start = run_heuristic(chain, platform,
                                     HeuristicKind::kHeurL,
                                     heuristic_options);
    ASSERT_TRUE(start.has_value());
    const auto improved =
        improve_mapping(chain, platform, start->mapping);
    ASSERT_TRUE(improved.has_value());
    const auto optimum = optimize_reliability(chain, platform);
    if (improved->metrics.reliability.log() >=
        optimum.reliability.log() - 1e-9) {
      ++matches;
    }
  }
  EXPECT_GE(matches, static_cast<std::size_t>(trials * 2 / 3));
}

}  // namespace
}  // namespace prts
