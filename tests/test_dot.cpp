#include "model/dot.hpp"
#include "rbd/dot.hpp"

#include <gtest/gtest.h>

#include <string>

#include "rbd/builder.hpp"
#include "test_util.hpp"

namespace prts {
namespace {

std::size_t count_occurrences(const std::string& haystack,
                              const std::string& needle) {
  std::size_t count = 0;
  for (std::size_t pos = haystack.find(needle); pos != std::string::npos;
       pos = haystack.find(needle, pos + needle.size())) {
    ++count;
  }
  return count;
}

struct Fixture {
  Fixture() : rng(7), chain(testutil::small_chain(rng, 4)),
              platform(testutil::small_hom_platform(6, 2)),
              mapping(testutil::random_mapping(rng, chain, platform)) {}
  Rng rng;
  TaskChain chain;
  Platform platform;
  Mapping mapping;
};

TEST(RbdDot, ContainsEveryBlockAndEndpoints) {
  const Fixture fx;
  const auto graph =
      rbd::build_routing_graph(fx.chain, fx.platform, fx.mapping);
  const std::string dot = rbd::to_dot(graph);
  EXPECT_NE(dot.find("digraph rbd"), std::string::npos);
  EXPECT_NE(dot.find("S [shape=circle]"), std::string::npos);
  EXPECT_NE(dot.find("D [shape=circle]"), std::string::npos);
  EXPECT_EQ(count_occurrences(dot, "shape=box"), graph.block_count());
  // One S-arc per entry, one D-arc per exit.
  EXPECT_EQ(count_occurrences(dot, "S -> "), graph.entries().size());
  EXPECT_EQ(count_occurrences(dot, " -> D"), graph.exits().size());
}

TEST(RbdDot, EscapesQuotes) {
  rbd::Graph graph;
  const auto block =
      graph.add_block("say \"hi\"", LogReliability::certain());
  graph.mark_entry(block);
  graph.mark_exit(block);
  const std::string dot = rbd::to_dot(graph);
  EXPECT_NE(dot.find("say \\\"hi\\\""), std::string::npos);
}

TEST(RbdDot, SpExprExportMatchesItsGraph) {
  const Fixture fx;
  const auto sp = rbd::build_routing_sp(fx.chain, fx.platform, fx.mapping);
  const std::string dot = rbd::to_dot(sp);
  EXPECT_EQ(count_occurrences(dot, "shape=box"), sp.block_count());
}

TEST(MappingDot, OneRecordPerIntervalAndLabeledEdges) {
  const Fixture fx;
  const std::string dot =
      mapping_to_dot(fx.chain, fx.platform, fx.mapping);
  EXPECT_NE(dot.find("digraph mapping"), std::string::npos);
  EXPECT_EQ(count_occurrences(dot, "[label=\"I"),
            fx.mapping.interval_count());
  // m-1 inter-interval edges, each labeled with its o.
  EXPECT_EQ(count_occurrences(dot, "o="),
            fx.mapping.interval_count() - 1 +
                (fx.chain.out_size(fx.chain.size() - 1) > 0.0 ? 1 : 0));
  // Every replica processor appears.
  for (std::size_t j = 0; j < fx.mapping.interval_count(); ++j) {
    for (std::size_t u : fx.mapping.processors(j)) {
      std::string proc_label = "P";
      proc_label += std::to_string(u);
      EXPECT_NE(dot.find(proc_label), std::string::npos);
    }
  }
}

TEST(MappingDot, EnvironmentEndpointsPresent) {
  const Fixture fx;
  const std::string dot =
      mapping_to_dot(fx.chain, fx.platform, fx.mapping);
  EXPECT_NE(dot.find("env_in -> i0"), std::string::npos);
  EXPECT_NE(dot.find("-> env_out"), std::string::npos);
}

}  // namespace
}  // namespace prts
