// Additional RBD coverage: multi-entry/multi-exit shapes, deep series
// chains, degenerate reliabilities, and cross-evaluator agreement on the
// exact Figure 4 example of the paper.
#include <gtest/gtest.h>

#include <cmath>

#include "rbd/bdd.hpp"
#include "rbd/brute_force.hpp"
#include "rbd/graph.hpp"
#include "rbd/mincut.hpp"
#include "rbd/series_parallel.hpp"

namespace prts::rbd {
namespace {

LogReliability rel(double r) { return LogReliability::from_reliability(r); }

TEST(RbdExtra, Figure4NumbersAllEvaluatorsAgree) {
  // The paper's Figure 4: I1 on {P1,P2}, I2 on {P3,P4}, links L13 L14
  // L23 L24. Assign distinct reliabilities and compare brute force, BDD
  // and the inclusion-exclusion value computed by hand over the four
  // minimal paths.
  Graph graph;
  const auto i1p1 = graph.add_block("I1/P1", rel(0.9));
  const auto i1p2 = graph.add_block("I1/P2", rel(0.8));
  const auto l13 = graph.add_block("L13", rel(0.95));
  const auto l14 = graph.add_block("L14", rel(0.9));
  const auto l23 = graph.add_block("L23", rel(0.85));
  const auto l24 = graph.add_block("L24", rel(0.99));
  const auto i2p3 = graph.add_block("I2/P3", rel(0.7));
  const auto i2p4 = graph.add_block("I2/P4", rel(0.75));
  graph.add_arc(i1p1, l13);
  graph.add_arc(i1p1, l14);
  graph.add_arc(i1p2, l23);
  graph.add_arc(i1p2, l24);
  graph.add_arc(l13, i2p3);
  graph.add_arc(l23, i2p3);
  graph.add_arc(l14, i2p4);
  graph.add_arc(l24, i2p4);
  graph.mark_entry(i1p1);
  graph.mark_entry(i1p2);
  graph.mark_exit(i2p3);
  graph.mark_exit(i2p4);

  const double exact = brute_force_reliability(graph).reliability();
  const double via_bdd = bdd_reliability(graph).reliability();
  EXPECT_NEAR(exact, via_bdd, 1e-12);

  // Min-cut approximation bounds it from below.
  const double approx =
      mincut_reliability_approximation(graph).reliability();
  EXPECT_LE(approx, exact + 1e-12);

  // The four minimal paths are the (replica, link, replica) triples.
  const auto paths = graph.minimal_paths();
  EXPECT_EQ(paths.size(), 4u);

  // Minimal cuts of this shape (11 in total): the replica cuts
  // {I1P1,I1P2} and {I2P3,I2P4}; the full link cut {L13,L14,L23,L24};
  // two "replica + other's links" cuts per side ({I1P1,L23,L24},
  // {I1P2,L13,L14}, {I2P3,L14,L24}, {I2P4,L13,L23}); and four mixed
  // replica/link/replica cuts such as {I1P1,L23,I2P4}.
  const auto cuts = minimal_cut_sets(graph);
  EXPECT_EQ(cuts.size(), 11u);
  // Each is a genuine minimal cut (disconnects; restoring any block
  // reconnects).
  for (const auto& cut : cuts) {
    std::vector<bool> working(graph.block_count(), true);
    for (std::size_t block : cut) working[block] = false;
    EXPECT_FALSE(graph.operational(working));
    for (std::size_t block : cut) {
      working[block] = true;
      EXPECT_TRUE(graph.operational(working));
      working[block] = false;
    }
  }
}

TEST(RbdExtra, DeepSeriesChainStaysLinearAndStable) {
  // 10k blocks in series with tiny failures: evaluation must not lose
  // the aggregate failure (naive products would).
  std::vector<SpExpr> blocks;
  for (int i = 0; i < 10000; ++i) {
    blocks.push_back(
        SpExpr::block("b", LogReliability::from_failure(1e-12)));
  }
  const auto expr = SpExpr::series(std::move(blocks));
  EXPECT_NEAR(expr.reliability().failure() / 1e-8, 1.0, 1e-3);
}

TEST(RbdExtra, WideParallelGroup) {
  std::vector<SpExpr> branches;
  for (int i = 0; i < 20; ++i) {
    branches.push_back(
        SpExpr::block("b", LogReliability::from_failure(0.5)));
  }
  const auto expr = SpExpr::parallel(std::move(branches));
  EXPECT_NEAR(expr.reliability().failure(), std::pow(0.5, 20), 1e-18);
}

TEST(RbdExtra, CertainBlockShortCircuitsParallel) {
  const auto expr = SpExpr::parallel(
      {SpExpr::block("flaky", rel(0.1)),
       SpExpr::block("perfect", LogReliability::certain())});
  EXPECT_DOUBLE_EQ(expr.reliability().failure(), 0.0);
}

TEST(RbdExtra, DeadBlockKillsSeries) {
  const auto expr = SpExpr::series(
      {SpExpr::block("fine", rel(0.99)),
       SpExpr::block("dead", rel(0.0))});
  EXPECT_DOUBLE_EQ(expr.reliability().reliability(), 0.0);
}

TEST(RbdExtra, EntryEqualsExitSingleBlock) {
  Graph graph;
  const auto only = graph.add_block("only", rel(0.6));
  graph.mark_entry(only);
  graph.mark_exit(only);
  EXPECT_TRUE(graph.validate());
  EXPECT_NEAR(brute_force_reliability(graph).reliability(), 0.6, 1e-12);
  EXPECT_NEAR(bdd_reliability(graph).reliability(), 0.6, 1e-12);
  const auto cuts = minimal_cut_sets(graph);
  ASSERT_EQ(cuts.size(), 1u);
  EXPECT_EQ(cuts[0], (std::vector<std::size_t>{0}));
}

TEST(RbdExtra, DisconnectedGraphHasZeroReliability) {
  Graph graph;
  graph.add_block("island", rel(0.9));
  const auto entry = graph.add_block("entry", rel(0.9));
  graph.mark_entry(entry);  // no exits anywhere
  EXPECT_NEAR(bdd_reliability(graph).reliability(), 0.0, 1e-12);
}

TEST(RbdExtra, BddSharesAcrossPaths) {
  // Two paths through a shared middle block: the BDD must not double
  // count it (inclusion-exclusion check: r = rm*(1-(1-ra)(1-rb)) for
  // S->{a|b}->m->D).
  Graph graph;
  const auto a = graph.add_block("a", rel(0.7));
  const auto b = graph.add_block("b", rel(0.6));
  const auto m = graph.add_block("m", rel(0.9));
  graph.add_arc(a, m);
  graph.add_arc(b, m);
  graph.mark_entry(a);
  graph.mark_entry(b);
  graph.mark_exit(m);
  const double expected = 0.9 * (1.0 - 0.3 * 0.4);
  EXPECT_NEAR(bdd_reliability(graph).reliability(), expected, 1e-12);
  EXPECT_NEAR(brute_force_reliability(graph).reliability(), expected,
              1e-12);
}

}  // namespace
}  // namespace prts::rbd
