#include "model/interval.hpp"

#include <gtest/gtest.h>

#include <array>
#include <stdexcept>

namespace prts {
namespace {

TEST(Interval, SizeAndContains) {
  const Interval ival{2, 5};
  EXPECT_EQ(ival.size(), 4u);
  EXPECT_TRUE(ival.contains(2));
  EXPECT_TRUE(ival.contains(5));
  EXPECT_FALSE(ival.contains(1));
  EXPECT_FALSE(ival.contains(6));
}

TEST(IntervalPartition, FromBoundaries) {
  const std::array<std::size_t, 3> lasts{2, 5, 8};
  const auto part = IntervalPartition::from_boundaries(lasts, 9);
  ASSERT_EQ(part.interval_count(), 3u);
  EXPECT_EQ(part.interval(0), (Interval{0, 2}));
  EXPECT_EQ(part.interval(1), (Interval{3, 5}));
  EXPECT_EQ(part.interval(2), (Interval{6, 8}));
  EXPECT_EQ(part.task_count(), 9u);
}

TEST(IntervalPartition, BoundariesRoundTrip) {
  const std::array<std::size_t, 3> lasts{0, 3, 6};
  const auto part = IntervalPartition::from_boundaries(lasts, 7);
  const auto back = part.boundaries();
  ASSERT_EQ(back.size(), 3u);
  EXPECT_EQ(back[0], 0u);
  EXPECT_EQ(back[1], 3u);
  EXPECT_EQ(back[2], 6u);
}

TEST(IntervalPartition, Single) {
  const auto part = IntervalPartition::single(5);
  ASSERT_EQ(part.interval_count(), 1u);
  EXPECT_EQ(part.interval(0), (Interval{0, 4}));
}

TEST(IntervalPartition, Singletons) {
  const auto part = IntervalPartition::singletons(4);
  ASSERT_EQ(part.interval_count(), 4u);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(part.interval(i), (Interval{i, i}));
  }
}

TEST(IntervalPartition, IntervalOf) {
  const std::array<std::size_t, 3> lasts{2, 5, 8};
  const auto part = IntervalPartition::from_boundaries(lasts, 9);
  EXPECT_EQ(part.interval_of(0), 0u);
  EXPECT_EQ(part.interval_of(2), 0u);
  EXPECT_EQ(part.interval_of(3), 1u);
  EXPECT_EQ(part.interval_of(5), 1u);
  EXPECT_EQ(part.interval_of(8), 2u);
}

TEST(IntervalPartition, WorkAndOutSize) {
  const TaskChain chain({{1.0, 5.0}, {2.0, 6.0}, {4.0, 7.0}, {8.0, 0.0}});
  const std::array<std::size_t, 2> lasts{1, 3};
  const auto part = IntervalPartition::from_boundaries(lasts, 4);
  EXPECT_DOUBLE_EQ(part.work(chain, 0), 3.0);
  EXPECT_DOUBLE_EQ(part.work(chain, 1), 12.0);
  EXPECT_DOUBLE_EQ(part.out_size(chain, 0), 6.0);
  EXPECT_DOUBLE_EQ(part.out_size(chain, 1), 0.0);
}

TEST(IntervalPartition, RejectsGap) {
  EXPECT_THROW(IntervalPartition({{0, 1}, {3, 4}}, 5), std::invalid_argument);
}

TEST(IntervalPartition, RejectsOverlap) {
  EXPECT_THROW(IntervalPartition({{0, 2}, {2, 4}}, 5), std::invalid_argument);
}

TEST(IntervalPartition, RejectsIncompleteCover) {
  EXPECT_THROW(IntervalPartition({{0, 2}}, 5), std::invalid_argument);
}

TEST(IntervalPartition, RejectsOutOfRange) {
  EXPECT_THROW(IntervalPartition({{0, 5}}, 5), std::invalid_argument);
}

TEST(IntervalPartition, RejectsEmpty) {
  EXPECT_THROW(IntervalPartition({}, 5), std::invalid_argument);
}

TEST(IntervalPartition, RejectsBadBoundaries) {
  const std::array<std::size_t, 2> not_ending_at_last{1, 2};
  EXPECT_THROW(IntervalPartition::from_boundaries(not_ending_at_last, 5),
               std::invalid_argument);
}

}  // namespace
}  // namespace prts
