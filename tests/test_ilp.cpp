#include "core/ilp.hpp"

#include <gtest/gtest.h>

#include <limits>
#include <vector>

#include "core/exact.hpp"
#include "eval/evaluation.hpp"
#include "test_util.hpp"

namespace prts {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

TEST(IlpFormulation, VariableCount) {
  Rng rng(1);
  const TaskChain chain = testutil::small_chain(rng, 4);
  const Platform platform = testutil::small_hom_platform(5, 3);
  const IlpFormulation ilp(chain, platform, kInf, kInf);
  // n(n+1)/2 intervals x K replication choices = 10 * 3.
  EXPECT_EQ(ilp.variables().size(), 30u);
}

TEST(IlpFormulation, RejectsHeterogeneous) {
  Rng rng(2);
  const TaskChain chain = testutil::small_chain(rng, 4);
  const Platform platform = testutil::small_het_platform(rng, 4, 2);
  EXPECT_THROW(IlpFormulation(chain, platform, kInf, kInf),
               std::invalid_argument);
}

TEST(IlpFormulation, DetectsUncoveredTask) {
  Rng rng(3);
  const TaskChain chain = testutil::small_chain(rng, 3);
  const Platform platform = testutil::small_hom_platform(4, 2);
  const IlpFormulation ilp(chain, platform, kInf, kInf);
  std::vector<std::uint8_t> nothing(ilp.variables().size(), 0);
  const auto violation = ilp.violated_constraint(nothing);
  ASSERT_TRUE(violation.has_value());
  EXPECT_NE(violation->find("covered 0 times"), std::string::npos);
}

TEST(IlpFormulation, DetectsDoubleCover) {
  Rng rng(4);
  const TaskChain chain = testutil::small_chain(rng, 3);
  const Platform platform = testutil::small_hom_platform(4, 2);
  const IlpFormulation ilp(chain, platform, kInf, kInf);
  std::vector<std::uint8_t> assignment(ilp.variables().size(), 0);
  // Choose the whole chain twice (k=1): indices of [0..2] with k=1 and
  // k=2 variants cover the same tasks.
  std::size_t count = 0;
  for (std::size_t v = 0; v < ilp.variables().size() && count < 2; ++v) {
    const auto& var = ilp.variables()[v];
    if (var.first == 0 && var.last == 2) {
      assignment[v] = 1;
      ++count;
    }
  }
  ASSERT_EQ(count, 2u);
  const auto violation = ilp.violated_constraint(assignment);
  ASSERT_TRUE(violation.has_value());
  EXPECT_NE(violation->find("covered"), std::string::npos);
}

TEST(IlpFormulation, DetectsProcessorOveruse) {
  Rng rng(5);
  const TaskChain chain = testutil::small_chain(rng, 3);
  const Platform platform = testutil::small_hom_platform(2, 3);
  const IlpFormulation ilp(chain, platform, kInf, kInf);
  // Pick each singleton task with 2 replicas: 6 > p = 2, while every task
  // stays covered exactly once, so the violation must mention processors.
  std::vector<std::uint8_t> assignment(ilp.variables().size(), 0);
  for (std::size_t v = 0; v < ilp.variables().size(); ++v) {
    const auto& var = ilp.variables()[v];
    if (var.first == var.last && var.replicas == 2) assignment[v] = 1;
  }
  const auto violation = ilp.violated_constraint(assignment);
  ASSERT_TRUE(violation.has_value());
  EXPECT_NE(violation->find("processors"), std::string::npos);
}

TEST(IlpFormulation, PeriodInfeasibleVariablesFlagged) {
  const TaskChain chain({{10.0, 0.0}, {2.0, 0.0}});
  const Platform platform = Platform::homogeneous(3, 1.0, 0.01, 1.0, 0.0, 2);
  const IlpFormulation ilp(chain, platform, 5.0, kInf);
  bool found_infeasible = false;
  for (const auto& var : ilp.variables()) {
    const double work = chain.work_sum(var.first, var.last);
    if (work > 5.0) {
      EXPECT_FALSE(var.period_feasible);
      found_infeasible = true;
    } else {
      EXPECT_TRUE(var.period_feasible);
    }
  }
  EXPECT_TRUE(found_infeasible);
}

TEST(SolveIlp, SolutionSatisfiesEveryConstraint) {
  Rng rng(6);
  for (int trial = 0; trial < 10; ++trial) {
    const TaskChain chain = testutil::small_chain(rng, 5);
    const Platform platform = testutil::small_hom_platform(5, 2);
    const double period_bound = rng.uniform_real(8.0, 40.0);
    const double latency_bound = rng.uniform_real(20.0, 90.0);
    const IlpFormulation ilp(chain, platform, period_bound, latency_bound);
    const auto solution = solve_ilp(ilp);
    if (!solution) continue;
    std::vector<std::uint8_t> assignment(ilp.variables().size(), 0);
    for (std::size_t v : solution->chosen) assignment[v] = 1;
    EXPECT_FALSE(ilp.violated_constraint(assignment).has_value());
    EXPECT_NEAR(ilp.objective_value(assignment), solution->objective,
                1e-10);
  }
}

class IlpMatchesEnumeration : public ::testing::TestWithParam<int> {};

TEST_P(IlpMatchesEnumeration, BranchAndBoundIsExact) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) + 800);
  const auto n = static_cast<std::size_t>(rng.uniform_int(2, 7));
  const auto p = static_cast<std::size_t>(rng.uniform_int(2, 7));
  const TaskChain chain = testutil::small_chain(rng, n);
  const Platform platform = testutil::small_hom_platform(p, 3);
  const double period_bound = rng.uniform_real(5.0, 40.0);
  const double latency_bound = rng.uniform_real(15.0, 90.0);
  const IlpFormulation ilp(chain, platform, period_bound, latency_bound);
  const auto via_bb = solve_ilp(ilp);
  const HomogeneousExactSolver solver(chain, platform);
  const auto via_enum =
      solver.best_log_reliability(period_bound, latency_bound);
  ASSERT_EQ(via_bb.has_value(), via_enum.has_value());
  if (via_bb) {
    EXPECT_NEAR(via_bb->objective, *via_enum, 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, IlpMatchesEnumeration,
                         ::testing::Range(0, 40));

TEST(SolveIlp, ObjectiveMatchesMappingReliability) {
  Rng rng(7);
  const TaskChain chain = testutil::small_chain(rng, 5);
  const Platform platform = testutil::small_hom_platform(5, 2);
  const IlpFormulation ilp(chain, platform, kInf, kInf);
  const auto solution = solve_ilp(ilp);
  ASSERT_TRUE(solution.has_value());
  EXPECT_NEAR(
      solution->objective,
      mapping_reliability(chain, platform, solution->mapping).log(), 1e-10);
}

TEST(SolveIlp, LiteralPaperObjectiveIgnoresComms) {
  // With include_comm_reliability = false the coefficients only involve
  // computation failures, so a mapping's objective differs from Eq. (9)
  // whenever links are unreliable.
  Rng rng(8);
  const TaskChain chain = testutil::small_chain(rng, 4);
  const Platform platform = testutil::small_hom_platform(4, 2, 0.01, 0.05);
  const IlpFormulation literal(chain, platform, kInf, kInf, false);
  const auto solution = solve_ilp(literal);
  ASSERT_TRUE(solution.has_value());
  const double eq9 =
      mapping_reliability(chain, platform, solution->mapping).log();
  EXPECT_GT(solution->objective, eq9);  // comm failures are extra
}

}  // namespace
}  // namespace prts
