// Edge cases and scale checks that don't fit the per-module files.
#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <limits>

#include "core/exact.hpp"
#include "core/heuristics.hpp"
#include "core/period_dp.hpp"
#include "core/reliability_dp.hpp"
#include "eval/evaluation.hpp"
#include "model/generator.hpp"
#include "sim/pipeline_sim.hpp"
#include "test_util.hpp"

namespace prts {
namespace {

TEST(EdgeCases, SingleTaskSingleProcessor) {
  const TaskChain chain({{7.0, 0.0}});
  const Platform platform = Platform::homogeneous(1, 2.0, 1e-4, 1.0, 0.0, 1);
  const auto dp = optimize_reliability(chain, platform);
  EXPECT_EQ(dp.mapping.interval_count(), 1u);
  EXPECT_EQ(dp.mapping.processors_used(), 1u);
  const MappingMetrics metrics = evaluate(chain, platform, dp.mapping);
  EXPECT_NEAR(metrics.worst_latency, 3.5, 1e-12);
  EXPECT_NEAR(metrics.worst_period, 3.5, 1e-12);
  EXPECT_NEAR(metrics.failure, failure_from_rate(1e-4, 3.5), 1e-15);
}

TEST(EdgeCases, HugeCommunicationForcesMerging) {
  // Task 0's output (50 units) blows any period bound it crosses: every
  // mapping that cuts after task 0 has worst period >= 50 (Eq. (6)
  // includes each interval's outgoing communication), so under P = 10
  // the only feasible shape merges both tasks into one interval — which
  // hides the transfer entirely (intra-interval data never crosses a
  // link).
  const TaskChain chain({{1.0, 50.0}, {1.0, 0.0}});
  const Platform platform = Platform::homogeneous(4, 1.0, 1e-6, 1.0, 0.0, 2);

  const Mapping cut(IntervalPartition::singletons(2), {{0}, {1}});
  EXPECT_GE(evaluate(chain, platform, cut).worst_period, 50.0);

  const auto dp = optimize_reliability_period(chain, platform, 10.0);
  ASSERT_TRUE(dp.has_value());
  EXPECT_EQ(dp->mapping.interval_count(), 1u);

  const HomogeneousExactSolver solver(chain, platform);
  const auto best = solver.solve(10.0, 1e9);
  ASSERT_TRUE(best.has_value());
  EXPECT_EQ(best->mapping.interval_count(), 1u);
  // But a period bound below the merged work is infeasible outright.
  EXPECT_FALSE(solver.solve(1.5, 1e9).has_value());
  EXPECT_FALSE(
      optimize_reliability_period(chain, platform, 1.5).has_value());
}

TEST(EdgeCases, Algorithm2AgreesWithExactOnCommBoundedInstance) {
  const TaskChain chain({{1.0, 50.0}, {1.0, 0.0}});
  const Platform platform = Platform::homogeneous(4, 1.0, 1e-6, 1.0, 0.0, 2);
  const auto dp = optimize_reliability_period(chain, platform, 10.0);
  const HomogeneousExactSolver solver(chain, platform);
  const auto exact = solver.best_log_reliability(10.0, 1e9);
  ASSERT_EQ(dp.has_value(), exact.has_value());
  if (dp) {
    EXPECT_NEAR(dp->reliability.log(), *exact, 1e-12);
  }
}

TEST(EdgeCases, ExactRecordsMatchEvaluator) {
  Rng rng(5);
  const TaskChain chain = testutil::small_chain(rng, 6);
  const Platform platform = testutil::small_hom_platform(5, 2);
  const HomogeneousExactSolver solver(chain, platform);
  for (const auto& record : solver.records()) {
    std::vector<std::vector<std::size_t>> procs;
    std::size_t next = 0;
    for (unsigned q : record.replicas) {
      std::vector<std::size_t> set(q);
      for (unsigned r = 0; r < q; ++r) set[r] = next++;
      procs.push_back(std::move(set));
    }
    const Mapping mapping(
        IntervalPartition::from_boundaries(record.lasts, chain.size()),
        std::move(procs));
    const MappingMetrics metrics = evaluate(chain, platform, mapping);
    ASSERT_NEAR(metrics.worst_period, record.period, 1e-9);
    ASSERT_NEAR(metrics.worst_latency, record.latency, 1e-9);
    ASSERT_NEAR(metrics.reliability.log(), record.log_reliability, 1e-9);
  }
}

TEST(EdgeCases, ExpectedTimeWithSpeedTiesIsStable) {
  // Two processors of equal speed: order must not matter (and the value
  // equals the common duration regardless of failure rates).
  const Platform platform({{2.0, 0.1}, {2.0, 0.3}}, 1.0, 0.0, 2);
  const std::array<std::size_t, 2> forward{0, 1};
  const std::array<std::size_t, 2> backward{1, 0};
  EXPECT_NEAR(expected_computation_time(platform, 10.0, forward),
              expected_computation_time(platform, 10.0, backward), 1e-12);
  EXPECT_NEAR(expected_computation_time(platform, 10.0, forward), 5.0,
              1e-12);
}

TEST(EdgeCases, Algorithm1ScalesToLongChains) {
  // n = 60, p = 20: well beyond the paper's 15x10; self-consistency only
  // (exhaustive oracles are unreachable at this size).
  Rng rng(6);
  ChainConfig config;
  config.task_count = 60;
  const TaskChain chain = random_chain(rng, config);
  const Platform platform = Platform::homogeneous(20, 1.0, 1e-8, 1.0,
                                                  1e-5, 3);
  const auto dp = optimize_reliability(chain, platform);
  ASSERT_FALSE(dp.mapping.validate(platform).has_value());
  EXPECT_NEAR(dp.reliability.log(),
              mapping_reliability(chain, platform, dp.mapping).log(),
              1e-10);
  // And Algorithm 2 tightens monotonically at this scale too.
  const auto loose = optimize_reliability_period(chain, platform, 400.0);
  const auto tight = optimize_reliability_period(chain, platform, 200.0);
  if (loose && tight) {
    EXPECT_GE(loose->reliability.log(), tight->reliability.log() - 1e-12);
  }
}

TEST(EdgeCases, HeurPartitionsAtMaximumIntervalCount) {
  Rng rng(7);
  const TaskChain chain = testutil::small_chain(rng, 6);
  EXPECT_EQ(heur_l_partition(chain, 6).interval_count(), 6u);
  EXPECT_EQ(heur_p_partition(chain, 6).interval_count(), 6u);
  for (std::size_t j = 0; j < 6; ++j) {
    EXPECT_EQ(heur_p_partition(chain, 6).interval(j).size(), 1u);
  }
}

TEST(EdgeCases, SimulatorSerializesPortContentionAcrossDatasets) {
  // One stage pair with a big transfer and K = 1: the single channel
  // serializes consecutive data sets' transfers, so completions space at
  // the communication time even though computation is fast.
  const TaskChain chain({{1.0, 10.0}, {1.0, 0.0}});
  const Platform platform = Platform::homogeneous(2, 1.0, 0.0, 1.0, 0.0, 1);
  const Mapping mapping(IntervalPartition::singletons(2), {{0}, {1}});
  sim::SimulationConfig config;
  config.dataset_count = 20;
  config.input_period = 1.0;  // released far faster than the link drains
  config.inject_failures = false;
  config.use_routing = false;
  const auto result =
      sim::simulate_pipeline(chain, platform, mapping, config);
  EXPECT_EQ(result.successes, 20u);
  // Steady-state spacing = transfer time (10), not the input period (1).
  EXPECT_NEAR(result.inter_completion.max(), 10.0, 1e-9);
}

TEST(EdgeCases, ZeroLinkFailureMakesCommReliabilityFree) {
  Rng rng(8);
  const TaskChain chain = testutil::small_chain(rng, 5);
  const Platform platform = Platform::homogeneous(5, 1.0, 1e-3, 1.0, 0.0, 2);
  const Mapping mapping = testutil::random_mapping(rng, chain, platform);
  // Reliability must equal the product over stages of compute-only
  // parallel groups.
  double expected_log = 0.0;
  const auto& part = mapping.partition();
  for (std::size_t j = 0; j < part.interval_count(); ++j) {
    double group_failure = 1.0;
    for (std::size_t u : mapping.processors(j)) {
      group_failure *=
          failure_from_rate(1e-3, part.work(chain, j) / platform.speed(u));
    }
    expected_log += std::log1p(-group_failure);
  }
  EXPECT_NEAR(mapping_reliability(chain, platform, mapping).log(),
              expected_log, 1e-12);
}

TEST(EdgeCases, RunHeuristicInfeasibleBoundsReturnNullopt) {
  Rng rng(9);
  const TaskChain chain = testutil::small_chain(rng, 5);
  const Platform platform = testutil::small_hom_platform(5, 2);
  HeuristicOptions options;
  options.latency_bound = 0.5;  // below any computation time
  for (HeuristicKind kind : {HeuristicKind::kHeurL, HeuristicKind::kHeurP}) {
    EXPECT_FALSE(run_heuristic(chain, platform, kind, options).has_value());
  }
}

}  // namespace
}  // namespace prts
