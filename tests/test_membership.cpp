// The elastic membership layer, bottom to top: the consistent-hash
// ring's minimal-disruption and balance properties, the epoch-stamped
// anti-entropy protocol (join, union merge, higher-epoch adoption,
// self-rejoin, suspect -> dead ticks against injected clocks), the
// membership/handoff wire codecs, the background checkpointer, and the
// live fabric itself: a rank joining a serving fleet receives its ring
// slice by handoff, a retired rank is detected through silence, and
// answers stay byte-identical across every reshape.
#include "service/membership.hpp"

#include <gtest/gtest.h>

#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "eval/evaluation.hpp"
#include "fabric_harness.hpp"
#include "service/checkpoint.hpp"
#include "service/ring.hpp"
#include "service/wire.hpp"

namespace prts::service {
namespace {

using testing::FabricHarness;

CanonicalHash key_of(int i) {
  return fingerprint("membership-key-" + std::to_string(i));
}

// ------------------------------------------------------------- ring

std::map<int, std::size_t> owners_under(const HashRing& ring, int keys) {
  std::map<int, std::size_t> owners;
  for (int i = 0; i < keys; ++i) owners[i] = ring.owner_of(key_of(i));
  return owners;
}

TEST(HashRing, IdenticalAcrossIndependentBuilds) {
  // Every rank computes the ring locally from the member set alone;
  // routing only works if the builds agree point for point.
  HashRing a;
  HashRing b;
  a.rebuild({0, 1, 2, 5});
  b.rebuild({5, 2, 1, 0});  // order must not matter
  for (int i = 0; i < 500; ++i) {
    EXPECT_EQ(a.owner_of(key_of(i)), b.owner_of(key_of(i)));
  }
}

TEST(HashRing, JoinMovesKeysOnlyToTheNewMember) {
  HashRing ring;
  ring.rebuild({0, 1, 2});
  const auto before = owners_under(ring, 2000);
  ring.rebuild({0, 1, 2, 3});
  const auto after = owners_under(ring, 2000);
  std::size_t moved = 0;
  for (const auto& [key, owner] : after) {
    if (owner != before.at(key)) {
      ++moved;
      // Minimal disruption: a reassigned key may only have moved TO the
      // joiner, never between surviving members.
      EXPECT_EQ(owner, 3u);
    }
  }
  // The joiner takes roughly a quarter of the space — definitely some
  // keys, definitely not most of them (mod-world would reshuffle ~75%).
  EXPECT_GT(moved, 0u);
  EXPECT_LT(moved, 1000u);
}

TEST(HashRing, LeaveMovesOnlyTheDepartedKeys) {
  HashRing ring;
  ring.rebuild({0, 1, 2});
  const auto before = owners_under(ring, 2000);
  ring.rebuild({0, 2});
  const auto after = owners_under(ring, 2000);
  for (const auto& [key, owner] : after) {
    if (before.at(key) != 1) {
      // A surviving member's keys never move on someone else's death.
      EXPECT_EQ(owner, before.at(key));
    } else {
      EXPECT_NE(owner, 1u);
    }
  }
}

TEST(HashRing, BalanceWithinTolerance) {
  HashRing ring;
  ring.rebuild({0, 1, 2});
  std::map<std::size_t, int> share;
  const int keys = 6000;
  for (int i = 0; i < keys; ++i) ++share[ring.owner_of(key_of(i))];
  ASSERT_EQ(share.size(), 3u);
  for (const auto& [rank, count] : share) {
    const double fraction = static_cast<double>(count) / keys;
    // Fair share is 1/3; 64 virtual nodes keep every member well inside
    // a factor-2 band of it.
    EXPECT_GT(fraction, 1.0 / 6.0) << "rank " << rank;
    EXPECT_LT(fraction, 2.0 / 3.0) << "rank " << rank;
  }
}

// ------------------------------------------------------- membership

Member member_at(std::size_t rank, std::uint16_t port = 9000) {
  Member member;
  member.rank = rank;
  member.host = "10.0.0." + std::to_string(rank + 1);
  member.port = port;
  return member;
}

Membership::Config fast_config(std::size_t self) {
  Membership::Config config;
  config.self_rank = self;
  config.suspect_after_seconds = 2.0;
  config.dead_after_seconds = 5.0;
  return config;
}

TEST(MembershipProtocol, BootstrapInstallsSelfAtEpochOne) {
  Membership membership(fast_config(0));
  membership.bootstrap({member_at(0)});
  EXPECT_EQ(membership.epoch(), 1u);
  EXPECT_EQ(membership.member_count(), 1u);
  EXPECT_TRUE(membership.contains(0));
}

TEST(MembershipProtocol, JoinBumpsEpochReannounceDoesNot) {
  Membership membership(fast_config(0));
  membership.bootstrap({member_at(0)});

  const auto joined = membership.handle_join(member_at(1));
  EXPECT_TRUE(joined.changed);
  ASSERT_EQ(joined.joined.size(), 1u);
  EXPECT_EQ(joined.joined[0].rank, 1u);
  EXPECT_EQ(membership.epoch(), 2u);

  // The same announcement again: heartbeat refresh, nothing changes.
  const auto again = membership.handle_join(member_at(1));
  EXPECT_FALSE(again.changed);
  EXPECT_EQ(membership.epoch(), 2u);

  // Same rank, new address: a restarted process — treated as a fresh
  // joiner (handoff re-triggers; entries are immutable so that is safe).
  const auto restarted = membership.handle_join(member_at(1, 9001));
  EXPECT_TRUE(restarted.changed);
  EXPECT_EQ(membership.epoch(), 3u);
  EXPECT_EQ(membership.member(1)->port, 9001);
}

TEST(MembershipProtocol, JoinClaimingSelfRankIsIgnored) {
  Membership membership(fast_config(0));
  membership.bootstrap({member_at(0)});
  // A duplicate --rank in the fleet must not overwrite our own record.
  const auto changes = membership.handle_join(member_at(0, 4242));
  EXPECT_FALSE(changes.changed);
  EXPECT_EQ(membership.epoch(), 1u);
  EXPECT_EQ(membership.member(0)->port, 9000);
}

TEST(MembershipProtocol, EqualEpochViewsMergeByUnion) {
  // Two ranks each admitted a different joiner at the same epoch; a
  // view exchange converges both without an epoch-bump race.
  Membership a(fast_config(0));
  Membership b(fast_config(1));
  a.bootstrap({member_at(0), member_at(1)});
  b.bootstrap({member_at(0), member_at(1)});
  a.handle_join(member_at(2));  // a is at epoch 2 with {0,1,2}
  b.handle_join(member_at(3));  // b is at epoch 2 with {0,1,3}

  const auto merged_b = b.handle_update(a.view());
  EXPECT_TRUE(merged_b.changed);
  EXPECT_EQ(b.member_count(), 4u);
  const auto merged_a = a.handle_update(b.view());
  EXPECT_TRUE(merged_a.changed);
  EXPECT_EQ(a.member_count(), 4u);
  EXPECT_EQ(a.view().members, b.view().members);
}

TEST(MembershipProtocol, HigherEpochAdoptedLowerIgnored) {
  Membership a(fast_config(0));
  Membership b(fast_config(1));
  a.bootstrap({member_at(0), member_at(1)});
  b.bootstrap({member_at(0), member_at(1)});
  a.handle_join(member_at(2));
  a.handle_join(member_at(3));  // a: epoch 3

  EXPECT_TRUE(b.handle_update(a.view()).changed);
  EXPECT_EQ(b.epoch(), 3u);
  EXPECT_EQ(b.member_count(), 4u);

  // A stale view (b's old epoch-1 shape) changes nothing on a.
  MembershipView stale;
  stale.epoch = 1;
  stale.members = {member_at(0), member_at(1)};
  EXPECT_FALSE(a.handle_update(stale).changed);
  EXPECT_EQ(a.member_count(), 4u);
}

TEST(MembershipProtocol, DroppedSelfRejoinsAboveIncomingEpoch) {
  Membership membership(fast_config(2));
  membership.bootstrap({member_at(0), member_at(1), member_at(2)});

  // The fleet moved on without us (we were silent past dead_after).
  MembershipView without_us;
  without_us.epoch = 7;
  without_us.members = {member_at(0), member_at(1)};
  const auto changes = membership.handle_update(without_us);
  EXPECT_TRUE(changes.changed);
  EXPECT_TRUE(changes.rejoined_self);
  EXPECT_TRUE(membership.contains(2));
  // Bumped PAST the incoming epoch so our presence wins the next
  // exchange instead of being adopted away again.
  EXPECT_EQ(membership.epoch(), 8u);
}

TEST(MembershipProtocol, SilenceSuspectsThenRemoves) {
  const auto t0 = Membership::Clock::now();
  const auto at = [&](double seconds) {
    return t0 + std::chrono::duration_cast<Membership::Clock::duration>(
                    std::chrono::duration<double>(seconds));
  };
  Membership membership(fast_config(0));
  membership.bootstrap({member_at(0), member_at(1), member_at(2)}, t0);
  const std::uint64_t epoch_before = membership.epoch();

  // Rank 1 keeps talking, rank 2 goes silent.
  membership.note_heard_from(1, at(2.5));
  auto ticked = membership.tick(at(3.0));
  ASSERT_EQ(ticked.suspected.size(), 1u);
  EXPECT_EQ(ticked.suspected[0], 2u);
  EXPECT_TRUE(ticked.died.empty());
  EXPECT_TRUE(membership.is_suspect(2));
  EXPECT_EQ(membership.epoch(), epoch_before);  // suspects stay in the ring

  // A suspect that speaks again is cleared — slow is not dead.
  membership.note_heard_from(2, at(3.5));
  EXPECT_FALSE(membership.is_suspect(2));

  // Then it really dies: silent past dead_after, removed, epoch bump.
  membership.note_heard_from(1, at(8.0));
  ticked = membership.tick(at(9.0));
  ASSERT_EQ(ticked.died.size(), 1u);
  EXPECT_EQ(ticked.died[0], 2u);
  EXPECT_FALSE(membership.contains(2));
  EXPECT_EQ(membership.epoch(), epoch_before + 1);
  EXPECT_EQ(membership.member_count(), 2u);
}

// ------------------------------------------------------------ codecs

TEST(MembershipWire, JoinRequestRoundTrip) {
  const Member member = member_at(3, 7777);
  std::string error;
  const auto decoded = decode_join_request(encode_join_request(member), error);
  ASSERT_TRUE(decoded.has_value()) << error;
  EXPECT_EQ(*decoded, member);

  EXPECT_FALSE(decode_join_request("prts-join v9\n", error).has_value());
  EXPECT_FALSE(error.empty());
}

TEST(MembershipWire, MembershipUpdateRoundTrip) {
  MembershipUpdate update;
  update.from = 2;
  update.view.epoch = 41;
  update.view.members = {member_at(0), member_at(2, 8081), member_at(5)};
  std::string error;
  const auto decoded =
      decode_membership_update(encode_membership_update(update), error);
  ASSERT_TRUE(decoded.has_value()) << error;
  EXPECT_EQ(decoded->from, 2u);
  EXPECT_EQ(decoded->view, update.view);
}

TEST(MembershipWire, HandoffStampAndChunkRoundTrip) {
  HandoffStamp stamp;
  stamp.epoch = 9;
  stamp.from = 1;
  stamp.entries = 128;
  std::string error;
  const auto begin = decode_handoff_stamp(encode_handoff_begin(stamp), error);
  ASSERT_TRUE(begin.has_value()) << error;
  EXPECT_EQ(begin->epoch, 9u);
  EXPECT_EQ(begin->from, 1u);
  EXPECT_EQ(begin->entries, 128u);
  const auto done = decode_handoff_stamp(encode_handoff_done(stamp), error);
  ASSERT_TRUE(done.has_value()) << error;
  EXPECT_EQ(done->entries, 128u);

  HandoffChunk chunk;
  chunk.epoch = 9;
  chunk.from = 1;
  chunk.entries.emplace_back(key_of(1), CachedSolution{});  // infeasible
  chunk.entries.emplace_back(key_of(2), CachedSolution{{}, 0.25});
  const auto round =
      decode_handoff_chunk(encode_handoff_chunk(chunk), error);
  ASSERT_TRUE(round.has_value()) << error;
  EXPECT_EQ(round->epoch, 9u);
  EXPECT_EQ(round->from, 1u);
  ASSERT_EQ(round->entries.size(), 2u);
  EXPECT_EQ(round->entries[0].first, key_of(1));
  EXPECT_FALSE(round->entries[0].second.solution.has_value());
  EXPECT_DOUBLE_EQ(round->entries[1].second.cost_seconds, 0.25);

  EXPECT_FALSE(decode_handoff_chunk("garbage", error).has_value());
}

// ------------------------------------------------------ checkpointer

Instance tiny_instance() {
  std::vector<Task> tasks{{5.0, 1.0}, {7.0, 0.0}};
  std::vector<Processor> procs{{1.0, 1e-8}, {1.0, 1e-8}, {1.0, 1e-8}};
  return Instance{TaskChain(std::move(tasks)),
                  Platform(std::move(procs), 1.0, 1e-5, 2)};
}

CachedSolution feasible_entry(const Instance& instance) {
  Mapping mapping(IntervalPartition::single(2), {{0, 2}});
  const MappingMetrics metrics =
      evaluate(instance.chain, instance.platform, mapping);
  return CachedSolution{solver::Solution{std::move(mapping), metrics}};
}

std::string temp_checkpoint_path(const char* tag) {
  return ::testing::TempDir() + "prts_checkpoint_" + tag + "_" +
         std::to_string(::getpid()) + ".bin";
}

TEST(Checkpointer, SnapshotReloadsBitIdentically) {
  const Instance instance = tiny_instance();
  ShardedSolutionCache cache;
  const CachedSolution entry = feasible_entry(instance);
  cache.insert(key_of(10), entry);
  cache.insert(key_of(11), CachedSolution{});  // cached infeasible

  const std::string path = temp_checkpoint_path("roundtrip");
  Checkpointer::Config config;
  config.path = path;
  Checkpointer checkpointer(cache, config);  // no timer: interval 0
  std::string error;
  ASSERT_TRUE(checkpointer.checkpoint_now(&error)) << error;
  const Checkpointer::Stats stats = checkpointer.stats();
  EXPECT_EQ(stats.checkpoints, 1u);
  EXPECT_EQ(stats.last_entries, 2u);
  EXPECT_GT(stats.last_bytes, 0u);

  ShardedSolutionCache reloaded;
  std::ifstream in(path, std::ios::binary);
  ASSERT_TRUE(in.good());
  const auto result = reloaded.load_binary(in);
  EXPECT_TRUE(result.error.empty()) << result.error;
  EXPECT_EQ(result.loaded, 2u);
  const auto warm = reloaded.lookup(key_of(10));
  ASSERT_TRUE(warm.has_value());
  ASSERT_TRUE(warm->solution.has_value());
  EXPECT_EQ(warm->solution->mapping, entry.solution->mapping);
  EXPECT_EQ(warm->solution->metrics, entry.solution->metrics);
  ASSERT_TRUE(reloaded.lookup(key_of(11)).has_value());
  EXPECT_FALSE(reloaded.lookup(key_of(11))->solution.has_value());
  std::remove(path.c_str());
}

TEST(Checkpointer, FailedWriteKeepsThePreviousSnapshot) {
  ShardedSolutionCache cache;
  cache.insert(key_of(20), CachedSolution{});

  const std::string path = temp_checkpoint_path("atomic");
  {
    Checkpointer::Config config;
    config.path = path;
    Checkpointer good(cache, config);
    ASSERT_TRUE(good.checkpoint_now());
  }

  // A checkpointer pointed into a directory that does not exist fails
  // cleanly and counts it; the original file is untouched (the tmp +
  // rename discipline never opens the destination itself).
  Checkpointer::Config broken_config;
  broken_config.path = ::testing::TempDir() +
                       "prts_no_such_dir_xyzzy/checkpoint.bin";
  Checkpointer broken(cache, broken_config);
  std::string error;
  EXPECT_FALSE(broken.checkpoint_now(&error));
  EXPECT_FALSE(error.empty());
  EXPECT_EQ(broken.stats().failures, 1u);

  ShardedSolutionCache reloaded;
  std::ifstream in(path, std::ios::binary);
  ASSERT_TRUE(in.good());
  EXPECT_EQ(reloaded.load_binary(in).loaded, 1u);
  std::remove(path.c_str());
}

TEST(Checkpointer, IntervalTimerSnapshotsInTheBackground) {
  ShardedSolutionCache cache;
  cache.insert(key_of(30), CachedSolution{});
  const std::string path = temp_checkpoint_path("timer");
  Checkpointer::Config config;
  config.path = path;
  config.interval_seconds = 0.05;
  Checkpointer checkpointer(cache, config);
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (checkpointer.stats().checkpoints == 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_GE(checkpointer.stats().checkpoints, 1u);
  std::remove(path.c_str());
}

// ------------------------------------------------------ live fabric

FabricHarness::Options elastic_options(std::size_t world) {
  FabricHarness::Options options;
  options.world = world;
  options.elastic = true;
  options.service.threads = 2;
  options.router.client.connect_timeout_seconds = 1.0;
  options.router.client.reply_timeout_seconds = 10.0;
  options.router.client.backoff_initial_seconds = 0.05;
  options.router.heartbeat_interval_seconds = 0.05;
  options.router.membership.suspect_after_seconds = 0.4;
  options.router.membership.dead_after_seconds = 0.8;
  return options;
}

Instance hom_instance() {
  std::vector<Task> tasks{{10.0, 2.0}, {4.0, 1.0}, {20.0, 1.0}, {6.0, 0.0}};
  return Instance{TaskChain(std::move(tasks)),
                  Platform::homogeneous(5, 1.0, 1e-8, 1.0, 1e-5, 2)};
}

TEST(ElasticFabric, FleetConvergesAndRoutesByRing) {
  FabricHarness harness(elastic_options(3));
  const Instance instance = hom_instance();
  for (std::size_t r = 0; r < 3; ++r) {
    const MembershipView view = harness.router(r).membership_view();
    EXPECT_EQ(view.members.size(), 3u) << "rank " << r;
    EXPECT_TRUE(harness.router(r).elastic());
    EXPECT_TRUE(harness.router(r).distributed());
  }
  // Ring agreement: every rank routes a key to the same owner.
  const SolveRequest request{
      instance, "heur-p",
      harness.bounds_on_rank(instance, "heur-p", /*owner=*/1)};
  const CanonicalHash key =
      request_key(canonicalize(instance), "heur-p", request.bounds);
  for (std::size_t r = 0; r < 3; ++r) {
    EXPECT_EQ(harness.router(r).shard_of(key), 1u);
  }
  // And the request is actually answered by its owner.
  const SolveReply reply = harness.router(0).submit(request).get();
  ASSERT_EQ(reply.status, ReplyStatus::kSolved);
  EXPECT_EQ(harness.service(1).stats().submitted, 1u);
  EXPECT_EQ(harness.router(0).stats().forwarded, 1u);
}

TEST(ElasticFabric, JoinStreamsHandoffAndAnswersStayByteIdentical) {
  FabricHarness harness(elastic_options(2));
  const Instance instance = hom_instance();

  // Warm both original ranks with answers across the keyspace.
  std::vector<SolveRequest> requests;
  std::vector<SolveReply> before;
  for (int i = 0; i < 24; ++i) {
    const std::size_t owner = static_cast<std::size_t>(i % 2);
    requests.push_back(SolveRequest{
        instance, "heur-p",
        harness.bounds_on_rank(instance, "heur-p", owner, 10.0 * i)});
    before.push_back(harness.router(i % 2).submit(requests.back()).get());
    ASSERT_EQ(before.back().status, ReplyStatus::kSolved);
  }

  // Grow the fleet; the originals stream the joiner's slice to it.
  const std::size_t joined = harness.add_rank();
  harness.wait_for_members(3);
  harness.router(0).wait_handoffs_idle();
  harness.router(1).wait_handoffs_idle();

  std::uint64_t streamed = 0;
  for (std::size_t r = 0; r < 2; ++r) {
    const MembershipStats stats = harness.router(r).membership_stats();
    EXPECT_GE(stats.joins, 1u) << "rank " << r;
    streamed += stats.handoff_entries_sent;
  }
  const MembershipStats joiner = harness.router(joined).membership_stats();
  EXPECT_EQ(joiner.members, 3u);
  // The joiner owns ~1/3 of a 24-key working set; at least one entry
  // must have moved, and whatever was sent arrived.
  EXPECT_GE(streamed, 1u);
  EXPECT_GE(joiner.handoff_entries_received, 1u);
  EXPECT_GE(harness.service(joined).cache().stats().entries, 1u);

  // Every answer minted before the join replays byte-identically from
  // whoever owns the key now — including keys that migrated.
  for (std::size_t i = 0; i < requests.size(); ++i) {
    const SolveReply after = harness.router(0).submit(requests[i]).get();
    ASSERT_EQ(after.status, ReplyStatus::kSolved);
    ASSERT_TRUE(after.solution.has_value());
    EXPECT_EQ(after.solution->mapping, before[i].solution->mapping);
    EXPECT_EQ(after.solution->metrics, before[i].solution->metrics);
    EXPECT_EQ(after.key, before[i].key);
  }
}

TEST(ElasticFabric, RetiredRankIsDetectedAndEpochAdvances) {
  FabricHarness harness(elastic_options(3));
  const std::uint64_t epoch_before = harness.router(0).epoch();

  harness.retire(1);
  harness.wait_for_members(2, /*timeout_seconds=*/10.0,
                           /*min_epoch=*/epoch_before + 1);

  for (const std::size_t r : {std::size_t{0}, std::size_t{2}}) {
    const MembershipStats stats = harness.router(r).membership_stats();
    EXPECT_EQ(stats.members, 2u) << "rank " << r;
    EXPECT_GE(stats.deaths, 1u) << "rank " << r;
    EXPECT_GE(stats.suspects, 1u) << "rank " << r;
    EXPECT_GT(stats.epoch, epoch_before) << "rank " << r;
  }

  // The shrunken fleet still answers; the dead rank owns nothing.
  const Instance instance = hom_instance();
  const SolveRequest request{
      instance, "heur-p",
      harness.bounds_on_rank(instance, "heur-p", /*owner=*/2)};
  EXPECT_EQ(harness.router(0).submit(request).get().status,
            ReplyStatus::kSolved);
  const CanonicalHash key =
      request_key(canonicalize(instance), "heur-p", request.bounds);
  EXPECT_NE(harness.router(0).shard_of(key), 1u);
}

}  // namespace
}  // namespace prts::service
