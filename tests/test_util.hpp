// Shared helpers for randomized cross-validation tests: small random
// instances, random mappings, and tiny brute-force oracles.
#pragma once

#include <algorithm>
#include <cstdint>
#include <numeric>
#include <vector>

#include "common/rng.hpp"
#include "model/mapping.hpp"
#include "model/platform.hpp"
#include "model/task_chain.hpp"

namespace prts::testutil {

/// Random chain with n tasks, integer works in [1, 20] and integer output
/// sizes in [0, 5]; last output forced to 0 (paper convention).
inline TaskChain small_chain(Rng& rng, std::size_t n) {
  std::vector<Task> tasks;
  for (std::size_t i = 0; i < n; ++i) {
    Task task;
    task.work = static_cast<double>(rng.uniform_int(1, 20));
    task.out_size = i + 1 == n
                        ? 0.0
                        : static_cast<double>(rng.uniform_int(0, 5));
    tasks.push_back(task);
  }
  return TaskChain(std::move(tasks));
}

/// Homogeneous platform with aggressive failure rates so Monte-Carlo and
/// brute-force differences are visible.
inline Platform small_hom_platform(std::size_t p, unsigned k,
                                   double lambda = 0.01,
                                   double link_lambda = 0.02) {
  return Platform::homogeneous(p, 1.0, lambda, 1.0, link_lambda, k);
}

/// Heterogeneous platform with random speeds in [1, 10] and random failure
/// rates around `lambda`.
inline Platform small_het_platform(Rng& rng, std::size_t p, unsigned k,
                                   double lambda = 0.01,
                                   double link_lambda = 0.02) {
  std::vector<Processor> procs;
  for (std::size_t u = 0; u < p; ++u) {
    Processor proc;
    proc.speed = static_cast<double>(rng.uniform_int(1, 10));
    proc.failure_rate = lambda * rng.uniform_real(0.2, 3.0);
    procs.push_back(proc);
  }
  return Platform(std::move(procs), 1.0, link_lambda, k);
}

/// Random partition of n tasks into m intervals (1 <= m <= n).
inline IntervalPartition random_partition(Rng& rng, std::size_t n,
                                          std::size_t m) {
  std::vector<std::size_t> cuts(n - 1);
  std::iota(cuts.begin(), cuts.end(), std::size_t{0});
  // Partial Fisher-Yates to pick m-1 distinct cut positions.
  for (std::size_t i = 0; i + 1 < m; ++i) {
    const auto j = static_cast<std::size_t>(
        rng.uniform_int(static_cast<std::int64_t>(i),
                        static_cast<std::int64_t>(cuts.size() - 1)));
    std::swap(cuts[i], cuts[j]);
  }
  std::vector<std::size_t> lasts(cuts.begin(),
                                 cuts.begin() + static_cast<std::ptrdiff_t>(
                                                    m - 1));
  std::sort(lasts.begin(), lasts.end());
  lasts.push_back(n - 1);
  return IntervalPartition::from_boundaries(lasts, n);
}

/// Random valid mapping: random partition with m <= min(n, p) intervals,
/// each replicated 1..K times with disjoint processors.
inline Mapping random_mapping(Rng& rng, const TaskChain& chain,
                              const Platform& platform) {
  const std::size_t n = chain.size();
  const std::size_t p = platform.processor_count();
  const std::size_t m = static_cast<std::size_t>(
      rng.uniform_int(1, static_cast<std::int64_t>(std::min(n, p))));
  IntervalPartition partition = random_partition(rng, n, m);

  std::vector<std::size_t> pool(p);
  std::iota(pool.begin(), pool.end(), std::size_t{0});
  // Shuffle the processor pool.
  for (std::size_t i = p; i > 1; --i) {
    const auto j = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(i - 1)));
    std::swap(pool[i - 1], pool[j]);
  }
  std::size_t next = 0;
  std::size_t spare = p - m;  // processors beyond the mandatory one each
  std::vector<std::vector<std::size_t>> procs;
  for (std::size_t j = 0; j < m; ++j) {
    const std::size_t extra_cap =
        std::min<std::size_t>(platform.max_replication() - 1, spare);
    const auto extra = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(extra_cap)));
    spare -= extra;
    std::vector<std::size_t> replica_set;
    for (std::size_t r = 0; r < 1 + extra; ++r) {
      replica_set.push_back(pool[next++]);
    }
    procs.push_back(std::move(replica_set));
  }
  return Mapping(std::move(partition), std::move(procs));
}

}  // namespace prts::testutil
