#include "rbd/series_parallel.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/rng.hpp"
#include "rbd/brute_force.hpp"

namespace prts::rbd {
namespace {

SpExpr leaf(double r) {
  return SpExpr::block("b", LogReliability::from_reliability(r));
}

TEST(SpExpr, SingleBlock) {
  EXPECT_NEAR(leaf(0.7).reliability().reliability(), 0.7, 1e-12);
  EXPECT_EQ(leaf(0.7).block_count(), 1u);
}

TEST(SpExpr, SeriesMultiplies) {
  const auto expr = SpExpr::series({leaf(0.9), leaf(0.8), leaf(0.5)});
  EXPECT_NEAR(expr.reliability().reliability(), 0.36, 1e-12);
  EXPECT_EQ(expr.block_count(), 3u);
}

TEST(SpExpr, ParallelComplements) {
  const auto expr = SpExpr::parallel({leaf(0.9), leaf(0.8)});
  EXPECT_NEAR(expr.reliability().failure(), 0.1 * 0.2, 1e-12);
}

TEST(SpExpr, NestedExpression) {
  // series(parallel(a, series(b, c)), d)
  const auto expr = SpExpr::series(
      {SpExpr::parallel({leaf(0.9), SpExpr::series({leaf(0.8), leaf(0.7)})}),
       leaf(0.95)});
  const double inner = 1.0 - (1.0 - 0.9) * (1.0 - 0.8 * 0.7);
  EXPECT_NEAR(expr.reliability().reliability(), inner * 0.95, 1e-12);
  EXPECT_EQ(expr.block_count(), 4u);
}

TEST(SpExpr, RejectsEmptyComposition) {
  EXPECT_THROW(SpExpr::series({}), std::invalid_argument);
  EXPECT_THROW(SpExpr::parallel({}), std::invalid_argument);
}

TEST(SpExpr, TinyFailuresKeepPrecision) {
  // Three replicated stages, each branch failure 1e-7: system failure
  // must be ~3e-14, not 0.
  const auto branch = LogReliability::from_failure(1e-7);
  const auto stage = SpExpr::parallel({SpExpr::block("x", branch),
                                       SpExpr::block("y", branch)});
  const auto expr = SpExpr::series({stage, stage, stage});
  EXPECT_NEAR(expr.reliability().failure() / 3e-14, 1.0, 1e-6);
}

TEST(SpExpr, ToGraphSeries) {
  const auto expr = SpExpr::series({leaf(0.9), leaf(0.8)});
  const Graph graph = expr.to_graph();
  EXPECT_TRUE(graph.validate());
  EXPECT_NEAR(brute_force_reliability(graph).reliability(),
              expr.reliability().reliability(), 1e-12);
}

TEST(SpExpr, ToGraphParallelOfSeries) {
  const auto expr = SpExpr::parallel(
      {SpExpr::series({leaf(0.9), leaf(0.8)}),
       SpExpr::series({leaf(0.7), leaf(0.6)})});
  const Graph graph = expr.to_graph();
  EXPECT_TRUE(graph.validate());
  EXPECT_NEAR(brute_force_reliability(graph).reliability(),
              expr.reliability().reliability(), 1e-12);
}

/// Random SP expression with at most `budget` leaves.
SpExpr random_sp(Rng& rng, int depth, int& budget) {
  if (depth == 0 || budget <= 1 || rng.bernoulli(0.4)) {
    --budget;
    return leaf(rng.uniform_real(0.3, 0.999));
  }
  const auto arity = static_cast<int>(rng.uniform_int(2, 3));
  std::vector<SpExpr> children;
  for (int c = 0; c < arity && budget > 0; ++c) {
    children.push_back(random_sp(rng, depth - 1, budget));
  }
  if (children.empty()) {
    --budget;
    return leaf(rng.uniform_real(0.3, 0.999));
  }
  return rng.bernoulli(0.5) ? SpExpr::series(std::move(children))
                            : SpExpr::parallel(std::move(children));
}

class SpRandomCrossCheck : public ::testing::TestWithParam<int> {};

TEST_P(SpRandomCrossCheck, LinearEvalMatchesBruteForceOnExpandedGraph) {
  Rng rng(static_cast<std::uint64_t>(GetParam()));
  int budget = 14;  // keep 2^blocks enumeration fast
  const SpExpr expr = random_sp(rng, 3, budget);
  const Graph graph = expr.to_graph();
  ASSERT_TRUE(graph.validate());
  const double fast = expr.reliability().reliability();
  const double exact = brute_force_reliability(graph).reliability();
  EXPECT_NEAR(fast, exact, 1e-10);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SpRandomCrossCheck,
                         ::testing::Range(0, 25));

}  // namespace
}  // namespace prts::rbd
