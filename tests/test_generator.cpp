#include "model/generator.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace prts {
namespace {

TEST(Generator, ChainRespectsRanges) {
  Rng rng(1);
  ChainConfig config;
  config.task_count = 200;
  const TaskChain chain = random_chain(rng, config);
  ASSERT_EQ(chain.size(), 200u);
  for (std::size_t i = 0; i < chain.size(); ++i) {
    EXPECT_GE(chain.work(i), 1.0);
    EXPECT_LE(chain.work(i), 100.0);
    EXPECT_DOUBLE_EQ(chain.work(i), std::floor(chain.work(i)));
    if (i + 1 < chain.size()) {
      EXPECT_GE(chain.out_size(i), 1.0);
      EXPECT_LE(chain.out_size(i), 10.0);
    }
  }
}

TEST(Generator, LastTaskHasNoOutput) {
  Rng rng(2);
  const TaskChain chain = random_chain(rng, ChainConfig{});
  EXPECT_DOUBLE_EQ(chain.out_size(chain.size() - 1), 0.0);
}

TEST(Generator, ChainIsDeterministicPerSeed) {
  Rng a(7);
  Rng b(7);
  const TaskChain chain_a = random_chain(a, ChainConfig{});
  const TaskChain chain_b = random_chain(b, ChainConfig{});
  for (std::size_t i = 0; i < chain_a.size(); ++i) {
    EXPECT_DOUBLE_EQ(chain_a.work(i), chain_b.work(i));
    EXPECT_DOUBLE_EQ(chain_a.out_size(i), chain_b.out_size(i));
  }
}

TEST(Generator, DifferentSeedsDiffer) {
  Rng a(7);
  Rng b(8);
  const TaskChain chain_a = random_chain(a, ChainConfig{});
  const TaskChain chain_b = random_chain(b, ChainConfig{});
  bool different = false;
  for (std::size_t i = 0; i < chain_a.size(); ++i) {
    if (chain_a.work(i) != chain_b.work(i)) different = true;
  }
  EXPECT_TRUE(different);
}

TEST(Generator, HetPlatformRespectsRanges) {
  Rng rng(3);
  const Platform platform = random_het_platform(rng, HetPlatformConfig{});
  EXPECT_EQ(platform.processor_count(), 10u);
  for (std::size_t u = 0; u < platform.processor_count(); ++u) {
    EXPECT_GE(platform.speed(u), 1.0);
    EXPECT_LE(platform.speed(u), 100.0);
    EXPECT_DOUBLE_EQ(platform.failure_rate(u), 1e-8);
  }
  EXPECT_EQ(platform.max_replication(), 3u);
}

TEST(Generator, PaperHomPlatform) {
  const Platform platform = paper::hom_platform();
  EXPECT_EQ(platform.processor_count(), paper::kProcessorCount);
  EXPECT_TRUE(platform.is_homogeneous());
  EXPECT_DOUBLE_EQ(platform.speed(0), 1.0);
  EXPECT_DOUBLE_EQ(platform.failure_rate(0), 1e-8);
  EXPECT_DOUBLE_EQ(platform.link_failure_rate(), 1e-5);
}

TEST(Generator, PaperHomComparisonPlatform) {
  const Platform platform = paper::hom_comparison_platform();
  EXPECT_TRUE(platform.is_homogeneous());
  EXPECT_DOUBLE_EQ(platform.speed(0), 5.0);
}

TEST(Generator, PaperChainShape) {
  Rng rng(4);
  const TaskChain chain = paper::chain(rng);
  EXPECT_EQ(chain.size(), paper::kTaskCount);
}

TEST(Generator, PaperHetPlatformUsuallyHeterogeneous) {
  // With 10 speeds uniform in [1,100], all-equal is vanishingly unlikely.
  Rng rng(5);
  int het = 0;
  for (int i = 0; i < 10; ++i) {
    if (!paper::het_platform(rng).is_homogeneous()) ++het;
  }
  EXPECT_GE(het, 9);
}

TEST(ShapedChains, AllShapesValidAndTerminated) {
  Rng rng(10);
  for (ChainShape shape :
       {ChainShape::kUniform, ChainShape::kIncreasing,
        ChainShape::kDecreasing, ChainShape::kHotspot,
        ChainShape::kCommHeavy}) {
    const TaskChain chain = shaped_chain(rng, 12, shape);
    ASSERT_EQ(chain.size(), 12u);
    for (std::size_t i = 0; i < chain.size(); ++i) {
      EXPECT_GT(chain.work(i), 0.0);
      EXPECT_GE(chain.out_size(i), 0.0);
    }
    EXPECT_DOUBLE_EQ(chain.out_size(11), 0.0);
  }
}

TEST(ShapedChains, IncreasingRampsUp) {
  Rng rng(11);
  const TaskChain chain = shaped_chain(rng, 20, ChainShape::kIncreasing);
  // The ramp dominates the noise: the last quarter outweighs the first.
  double head = 0.0;
  double tail = 0.0;
  for (std::size_t i = 0; i < 5; ++i) head += chain.work(i);
  for (std::size_t i = 15; i < 20; ++i) tail += chain.work(i);
  EXPECT_GT(tail, head);
}

TEST(ShapedChains, DecreasingRampsDown) {
  Rng rng(12);
  const TaskChain chain = shaped_chain(rng, 20, ChainShape::kDecreasing);
  double head = 0.0;
  double tail = 0.0;
  for (std::size_t i = 0; i < 5; ++i) head += chain.work(i);
  for (std::size_t i = 15; i < 20; ++i) tail += chain.work(i);
  EXPECT_GT(head, tail);
}

TEST(ShapedChains, HotspotHasOneDominantTask) {
  Rng rng(13);
  const TaskChain chain = shaped_chain(rng, 15, ChainShape::kHotspot);
  double max_work = 0.0;
  double second = 0.0;
  for (std::size_t i = 0; i < chain.size(); ++i) {
    if (chain.work(i) > max_work) {
      second = max_work;
      max_work = chain.work(i);
    } else if (chain.work(i) > second) {
      second = chain.work(i);
    }
  }
  EXPECT_GE(max_work, 2.0 * second);
}

TEST(ShapedChains, CommHeavyOutputsRivalWorks) {
  Rng rng(14);
  const TaskChain chain = shaped_chain(rng, 15, ChainShape::kCommHeavy);
  double total_out = 0.0;
  for (std::size_t i = 0; i + 1 < chain.size(); ++i) {
    total_out += chain.out_size(i);
  }
  EXPECT_GT(total_out, chain.total_work());
}

}  // namespace
}  // namespace prts
