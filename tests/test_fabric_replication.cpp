// Hot-entry replication and gossip prefetch over the in-process fabric
// harness: repeat remote-shard hits are absorbed by the replica tier
// (byte-identically), TTLs expire, the replica cache stays bounded,
// gossip digests trigger prefetches, and rank death — mid-gossip or
// mid-forward with dedup waiters attached — degrades cleanly with
// exactly one local failover solve.
#include "fabric_harness.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <future>
#include <set>
#include <thread>
#include <utility>

#include "service/wire.hpp"

namespace prts::service {
namespace {

using testing::FabricHarness;

Instance hom_instance() {
  std::vector<Task> tasks{{10.0, 2.0}, {4.0, 1.0}, {20.0, 1.0}, {6.0, 0.0}};
  return Instance{TaskChain(std::move(tasks)),
                  Platform::homogeneous(5, 1.0, 1e-8, 1.0, 1e-5, 2)};
}

FabricHarness::Options fast_options(std::size_t world) {
  FabricHarness::Options options;
  options.world = world;
  options.service.threads = 2;
  options.router.client.connect_timeout_seconds = 1.0;
  options.router.client.reply_timeout_seconds = 10.0;
  options.router.client.backoff_initial_seconds = 0.05;
  return options;
}

SolveRequest remote_request(FabricHarness& harness, const Instance& instance,
                            std::size_t owner, double salt = 0.0) {
  return SolveRequest{instance, "heur-p",
                      harness.bounds_on_rank(instance, "heur-p", owner, salt)};
}

// ------------------------------------------------------- replica tier

TEST(FabricReplication, RepeatRemoteHitServedFromReplicaByteIdentically) {
  FabricHarness harness(fast_options(2));
  const Instance instance = hom_instance();
  SolveRequest request = remote_request(harness, instance, /*owner=*/1);

  // Cold: forwarded to the owner, solved there, replicated here.
  const SolveReply cold = harness.router(0).submit(request).get();
  ASSERT_EQ(cold.status, ReplyStatus::kSolved);
  EXPECT_FALSE(cold.cache_hit);
  EXPECT_EQ(harness.router(0).stats().forwarded, 1u);
  EXPECT_EQ(harness.service(1).stats().submitted, 1u);

  // Repeat: answered from the replica tier — zero network round trips,
  // the owner's engine never hears about it.
  const SolveReply warm = harness.router(0).submit(request).get();
  ASSERT_EQ(warm.status, ReplyStatus::kSolved);
  EXPECT_TRUE(warm.cache_hit);
  const RouterStats stats = harness.router(0).stats();
  EXPECT_EQ(stats.forwarded, 1u);  // unchanged
  EXPECT_EQ(stats.replica_hits, 1u);
  EXPECT_EQ(harness.service(1).stats().submitted, 1u);  // unchanged

  // The acceptance guarantee: the replica answer replays the owner's
  // answer bit-for-bit — same mapping, exactly equal metric doubles.
  ASSERT_TRUE(warm.solution.has_value());
  EXPECT_EQ(warm.solution->mapping, cold.solution->mapping);
  EXPECT_EQ(warm.solution->metrics, cold.solution->metrics);
  EXPECT_EQ(warm.key, cold.key);
}

TEST(FabricReplication, InfeasibleAnswersReplicateToo) {
  FabricHarness harness(fast_options(2));
  const Instance instance = hom_instance();
  solver::Bounds impossible;
  impossible.period_bound = 1e-3;  // unreachable
  const SolveRequest request{
      instance, "heur-p",
      harness.bounds_on_rank(instance, "heur-p", 1, 0.0, impossible)};

  EXPECT_EQ(harness.router(0).submit(request).get().status,
            ReplyStatus::kInfeasible);
  const SolveReply warm = harness.router(0).submit(request).get();
  EXPECT_EQ(warm.status, ReplyStatus::kInfeasible);
  EXPECT_TRUE(warm.cache_hit);
  EXPECT_EQ(harness.router(0).stats().replica_hits, 1u);
  EXPECT_EQ(harness.router(0).stats().forwarded, 1u);
}

TEST(FabricReplication, ReplicaTtlExpiryForwardsAgain) {
  FabricHarness::Options options = fast_options(2);
  options.router.replica.ttl_seconds = 0.05;
  FabricHarness harness(options);
  const Instance instance = hom_instance();
  const SolveRequest request = remote_request(harness, instance, 1);

  ASSERT_EQ(harness.router(0).submit(request).get().status,
            ReplyStatus::kSolved);
  EXPECT_EQ(harness.router(0).stats().forwarded, 1u);

  // Let the TTL lapse: the replica is stale, the repeat pays the
  // network again (and re-replicates).
  std::this_thread::sleep_for(std::chrono::milliseconds(120));
  ASSERT_EQ(harness.router(0).submit(request).get().status,
            ReplyStatus::kSolved);
  EXPECT_EQ(harness.router(0).stats().forwarded, 2u);
  EXPECT_EQ(harness.router(0).stats().replica_hits, 0u);
  EXPECT_GE(harness.router(0).replica_stats().expirations, 1u);

  // Within the fresh TTL the repeat is a replica hit again.
  ASSERT_EQ(harness.router(0).submit(request).get().status,
            ReplyStatus::kSolved);
  EXPECT_EQ(harness.router(0).stats().forwarded, 2u);
  EXPECT_EQ(harness.router(0).stats().replica_hits, 1u);
}

TEST(FabricReplication, ReplicaCacheStaysWithinItsByteBudget) {
  FabricHarness::Options options = fast_options(2);
  // Room for only a handful of ~200-byte entries.
  options.router.replica.capacity_bytes = 1000;
  FabricHarness harness(options);
  const Instance instance = hom_instance();

  for (int i = 0; i < 10; ++i) {
    ASSERT_EQ(harness.router(0)
                  .submit(remote_request(harness, instance, 1,
                                         /*salt=*/i * 5000.0))
                  .get()
                  .status,
              ReplyStatus::kSolved);
  }
  const ReplicaStats stats = harness.router(0).replica_stats();
  EXPECT_EQ(stats.insertions, 10u);
  EXPECT_GE(stats.evictions, 1u);
  EXPECT_LT(stats.entries, 10u);
  EXPECT_LE(stats.bytes, 1000u);
}

TEST(FabricReplication, KilledRankReplicatedKeysAreStillServed) {
  FabricHarness harness(fast_options(2));
  const Instance instance = hom_instance();
  const SolveRequest request = remote_request(harness, instance, 1);

  ASSERT_EQ(harness.router(0).submit(request).get().status,
            ReplyStatus::kSolved);
  harness.kill(1);

  // The replicated key survives its owner's death...
  const SolveReply warm = harness.router(0).submit(request).get();
  ASSERT_EQ(warm.status, ReplyStatus::kSolved);
  EXPECT_TRUE(warm.cache_hit);
  EXPECT_EQ(harness.router(0).stats().replica_hits, 1u);
  EXPECT_EQ(harness.router(0).stats().local_fallbacks, 0u);

  // ...and a fresh key owned by the dead rank degrades to a clean
  // local solve.
  const SolveReply fresh =
      harness.router(0)
          .submit(remote_request(harness, instance, 1, /*salt=*/9000.0))
          .get();
  ASSERT_EQ(fresh.status, ReplyStatus::kSolved);
  EXPECT_EQ(harness.router(0).stats().local_fallbacks, 1u);
  EXPECT_TRUE(harness.router(0).peer_suspect(1));
}

// ---------------------------------------------------- gossip prefetch

TEST(FabricGossip, PeersPrefetchHotKeysAfterDigest) {
  FabricHarness harness(fast_options(3));
  const Instance instance = hom_instance();

  // Make one of rank 1's own keys hot *on rank 1* (two local hits cross
  // the default gossip_min_hits).
  const SolveRequest hot = remote_request(harness, instance, 1);
  ASSERT_EQ(harness.router(1).submit(hot).get().status, ReplyStatus::kSolved);
  ASSERT_EQ(harness.router(1).submit(hot).get().status, ReplyStatus::kSolved);
  EXPECT_EQ(harness.router(1).stats().local, 2u);

  // One gossip round: rank 1 announces the key to ranks 0 and 2, which
  // prefetch it in the background.
  harness.router(1).gossip_now();
  EXPECT_EQ(harness.router(1).stats().gossip_sent, 2u);
  harness.router(0).wait_prefetches_idle();
  harness.router(2).wait_prefetches_idle();
  EXPECT_EQ(harness.router(0).stats().gossip_received, 1u);
  EXPECT_EQ(harness.router(0).stats().prefetched, 1u);
  EXPECT_EQ(harness.router(2).stats().prefetched, 1u);

  // The first request for the hot key on rank 0 never touches the
  // network: the prefetched replica answers it.
  const SolveReply reply = harness.router(0).submit(hot).get();
  ASSERT_EQ(reply.status, ReplyStatus::kSolved);
  EXPECT_TRUE(reply.cache_hit);
  const RouterStats stats = harness.router(0).stats();
  EXPECT_EQ(stats.forwarded, 0u);
  EXPECT_EQ(stats.replica_hits, 1u);
}

TEST(FabricGossip, ColdKeysAreNotGossiped) {
  FabricHarness harness(fast_options(2));
  const Instance instance = hom_instance();

  // A single hit stays below gossip_min_hits: nothing to announce, no
  // digest goes out.
  ASSERT_EQ(harness.router(1)
                .submit(remote_request(harness, instance, 1))
                .get()
                .status,
            ReplyStatus::kSolved);
  harness.router(1).gossip_now();
  EXPECT_EQ(harness.router(1).stats().gossip_sent, 0u);
  EXPECT_EQ(harness.router(0).stats().gossip_received, 0u);
}

TEST(FabricGossip, GossipTimerRunsRoundsWithoutExplicitCalls) {
  FabricHarness::Options options = fast_options(2);
  options.router.gossip_interval_seconds = 0.05;
  FabricHarness harness(options);
  const Instance instance = hom_instance();

  const SolveRequest hot = remote_request(harness, instance, 1);
  ASSERT_EQ(harness.router(1).submit(hot).get().status, ReplyStatus::kSolved);
  ASSERT_EQ(harness.router(1).submit(hot).get().status, ReplyStatus::kSolved);

  // The timer must pick the hot key up within a few intervals.
  for (int spin = 0; spin < 100; ++spin) {
    if (harness.router(0).stats().prefetched >= 1) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  harness.router(0).wait_prefetches_idle();
  EXPECT_GE(harness.router(0).stats().prefetched, 1u);
  EXPECT_TRUE(harness.router(0)
                  .submit(remote_request(harness, instance, 1))
                  .get()
                  .cache_hit);
}

TEST(FabricGossip, RankDeathMidGossipDegradesCleanly) {
  FabricHarness harness(fast_options(3));
  const Instance instance = hom_instance();

  const SolveRequest hot = remote_request(harness, instance, /*owner=*/0);
  ASSERT_EQ(harness.router(0).submit(hot).get().status, ReplyStatus::kSolved);
  ASSERT_EQ(harness.router(0).submit(hot).get().status, ReplyStatus::kSolved);

  // Rank 1 dies before the round; the digest to it fails fast, the
  // digest to rank 2 still lands and is acted upon.
  harness.kill(1);
  harness.router(0).gossip_now();
  const RouterStats stats = harness.router(0).stats();
  EXPECT_EQ(stats.gossip_sent, 1u);
  EXPECT_EQ(stats.gossip_failures, 1u);
  harness.router(2).wait_prefetches_idle();
  EXPECT_EQ(harness.router(2).stats().prefetched, 1u);
  EXPECT_TRUE(harness.router(2).submit(hot).get().cache_hit);
}

// ------------------------------------------ dedup failover regression

TEST(FabricFailover, InFlightDedupWaitersFailOverExactlyOnce) {
  FabricHarness harness(fast_options(2));
  const Instance instance = hom_instance();
  SolveRequest patient = remote_request(harness, instance, 1);
  SolveRequest impatient = patient;
  impatient.deadline_seconds = 0.0;
  impatient.deadline_policy = DeadlinePolicy::kReject;

  // Hold the owner: the first submit's forward stays in flight while
  // the second attaches as a router-level dedup waiter.
  harness.faults(1).pause();
  std::future<SolveReply> first = harness.router(0).submit(impatient);
  std::future<SolveReply> second = harness.router(0).submit(patient);
  EXPECT_EQ(harness.router(0).stats().deduplicated, 1u);

  // The owner swallows the forward (a death mid-exchange): the
  // connection closes without a reply and the forward fails over.
  harness.faults(1).drop_next(1);
  harness.faults(1).resume();

  const SolveReply a = first.get();
  const SolveReply b = second.get();
  // The patient waiter must be solved — before the per-waiter failover
  // fix it inherited the impatient first submitter's (deadline 0,
  // reject) options and was wrongly rejected.
  ASSERT_EQ(b.status, ReplyStatus::kSolved);
  EXPECT_TRUE(b.deduplicated);
  // The impatient waiter gets its own policy's outcome: rejected, or
  // solved if the shared answer was computed before its expiry check.
  EXPECT_TRUE(a.status == ReplyStatus::kSolved ||
              a.status == ReplyStatus::kRejectedDeadline);
  EXPECT_FALSE(a.deduplicated);

  // Exactly one local solve, and the dead owner's engine never ran.
  EXPECT_EQ(harness.service(0).cache_stats().insertions, 1u);
  EXPECT_EQ(harness.service(1).stats().submitted, 0u);
  EXPECT_EQ(harness.router(0).stats().local_fallbacks, 1u);
  EXPECT_EQ(harness.faults(1).dropped(), 1u);
}

TEST(FabricFailover, RevivedRankServesAgainAfterBackoff) {
  FabricHarness harness(fast_options(2));
  const Instance instance = hom_instance();

  harness.kill(1);
  ASSERT_EQ(harness.router(0)
                .submit(remote_request(harness, instance, 1))
                .get()
                .status,
            ReplyStatus::kSolved);  // degraded locally
  EXPECT_EQ(harness.router(0).stats().local_fallbacks, 1u);

  harness.revive(1);
  std::this_thread::sleep_for(std::chrono::milliseconds(120));  // backoff
  const SolveReply reply =
      harness.router(0)
          .submit(remote_request(harness, instance, 1, /*salt=*/7000.0))
          .get();
  ASSERT_EQ(reply.status, ReplyStatus::kSolved);
  EXPECT_EQ(harness.router(0).stats().forwarded, 1u);
  EXPECT_GE(harness.service(1).stats().submitted, 1u);
}

// ------------------------------------------- pipelined forwards (mux)

TEST(FabricMux, ConcurrentForwardsPipelineOnOneConnection) {
  FabricHarness::Options options = fast_options(2);
  options.router.forward_threads = 8;
  FabricHarness harness(options);
  const Instance instance = hom_instance();
  // A slightly slow owner, so the eight forwards genuinely overlap on
  // the wire instead of winning the race one at a time.
  harness.faults(1).delay(0.05);

  std::vector<std::future<SolveReply>> futures;
  for (int i = 0; i < 8; ++i) {
    // Disjoint salt windows guarantee eight distinct request keys.
    futures.push_back(harness.router(0).submit(
        remote_request(harness, instance, 1, /*salt=*/i * 5000.0)));
  }
  std::set<std::pair<std::uint64_t, std::uint64_t>> keys;
  for (auto& future : futures) {
    const SolveReply reply = future.get();
    ASSERT_EQ(reply.status, ReplyStatus::kSolved);
    ASSERT_TRUE(reply.solution.has_value());
    keys.insert({reply.key.hi, reply.key.lo});
  }
  // Eight distinct answers for eight distinct keys — correlation by
  // request id, not arrival order.
  EXPECT_EQ(keys.size(), 8u);
  EXPECT_EQ(harness.router(0).stats().forwarded, 8u);
  EXPECT_EQ(harness.service(1).stats().submitted, 8u);
  // All of it rode ONE TCP connection to the owner...
  EXPECT_EQ(harness.telemetry(1)
                .metrics.counter("net_server_connections_total")
                .value(),
            1u);
  // ...with several exchanges in flight at once on that connection.
  for (const auto& [rank, stats] : harness.router(0).client_stats()) {
    if (rank == 1) EXPECT_GT(stats.max_inflight, 1u);
  }
}

// ------------------------------------ failover deadline-budget charge

TEST(FabricFailover, FailoverChargesElapsedTimeAgainstTheDeadline) {
  FabricHarness::Options options = fast_options(2);
  // The forward must burn longer on the wire than the waiter's whole
  // deadline: reply timeout 0.2s > deadline 0.15s.
  options.router.client.reply_timeout_seconds = 0.2;
  FabricHarness harness(options);
  const Instance instance = hom_instance();

  // Warm the connection first so negotiation is out of the way, then
  // wedge the owner: every inbound frame sleeps 1s at the gate.
  ASSERT_EQ(harness.router(0)
                .submit(remote_request(harness, instance, 1, /*salt=*/9000.0))
                .get()
                .status,
            ReplyStatus::kSolved);
  harness.faults(1).delay(1.0);

  SolveRequest request = remote_request(harness, instance, 1);
  request.deadline_seconds = 0.15;
  request.deadline_policy = DeadlinePolicy::kReject;
  const SolveReply reply = harness.router(0).submit(request).get();

  // By the time the forward fails over (~0.2s), the 0.15s deadline is
  // already spent. The local fallback must be charged the elapsed time
  // — zero budget remains, so a kReject waiter is rejected. Before the
  // fix, failover re-granted the full deadline and this tiny instance
  // solved instantly, hiding the SLO breach.
  EXPECT_EQ(reply.status, ReplyStatus::kRejectedDeadline);
  EXPECT_GE(harness.router(0).stats().forward_failures, 1u);
}

// ------------------------------------------------- gossip wire codecs

TEST(GossipWire, DigestRoundTrips) {
  GossipDigest digest;
  digest.rank = 3;
  digest.entries.push_back({fingerprint("key-a"), 17});
  digest.entries.push_back({fingerprint("key-b"), 2});

  std::string error;
  const auto decoded =
      decode_gossip_digest(encode_gossip_digest(digest), error);
  ASSERT_TRUE(decoded.has_value()) << error;
  EXPECT_EQ(decoded->rank, 3u);
  ASSERT_EQ(decoded->entries.size(), 2u);
  EXPECT_EQ(decoded->entries[0].key, digest.entries[0].key);
  EXPECT_EQ(decoded->entries[0].hits, 17u);
  EXPECT_EQ(decoded->entries[1].key, digest.entries[1].key);

  EXPECT_FALSE(decode_gossip_digest("junk", error).has_value());
  EXPECT_FALSE(
      decode_gossip_digest("prts-gossip v1\nrank 0\nkeys 2\n", error)
          .has_value());  // truncated list
}

TEST(GossipWire, ReplicaFetchRoundTrips) {
  const std::vector<CanonicalHash> keys{fingerprint("x"), fingerprint("y")};
  std::string error;
  const auto decoded =
      decode_replica_fetch(encode_replica_fetch(keys), error);
  ASSERT_TRUE(decoded.has_value()) << error;
  EXPECT_EQ(*decoded, keys);

  EXPECT_FALSE(decode_replica_fetch("nope", error).has_value());
  EXPECT_FALSE(
      decode_replica_fetch("prts-replica-fetch v1\nkeys x\n", error)
          .has_value());
}

TEST(GossipWire, ReplicaEntriesRoundTripBitIdentically) {
  // A real solution entry: solve once, ship the cached solution.
  ServiceConfig config;
  config.threads = 1;
  SolveService service(config);
  const SolveReply reply =
      service.submit(SolveRequest{hom_instance(), "heur-p", {}}).get();
  ASSERT_EQ(reply.status, ReplyStatus::kSolved);
  const auto cached = service.cache().peek(reply.key);
  ASSERT_TRUE(cached.has_value());

  std::vector<std::pair<CanonicalHash, CachedSolution>> entries;
  entries.emplace_back(reply.key, *cached);
  entries.emplace_back(fingerprint("infeasible"), CachedSolution{});

  std::string error;
  const auto decoded =
      decode_replica_entries(encode_replica_entries(entries), error);
  ASSERT_TRUE(decoded.has_value()) << error;
  ASSERT_EQ(decoded->size(), 2u);
  EXPECT_EQ((*decoded)[0].first, reply.key);
  ASSERT_TRUE((*decoded)[0].second.solution.has_value());
  EXPECT_EQ((*decoded)[0].second.solution->mapping,
            cached->solution->mapping);
  EXPECT_EQ((*decoded)[0].second.solution->metrics,
            cached->solution->metrics);
  EXPECT_FALSE((*decoded)[1].second.solution.has_value());
}

}  // namespace
}  // namespace prts::service
