// The sharded LRU solution cache: hit/miss/eviction behavior, byte
// bounds, stats, and TSV persistence replaying bit-identical solutions.
#include "service/cache.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "eval/evaluation.hpp"

namespace prts::service {
namespace {

CanonicalHash key_of(int i) {
  return fingerprint("key-" + std::to_string(i));
}

Instance tiny_instance() {
  std::vector<Task> tasks{{5.0, 1.0}, {7.0, 0.0}};
  std::vector<Processor> procs{{1.0, 1e-8}, {1.0, 1e-8}, {1.0, 1e-8}};
  return Instance{TaskChain(std::move(tasks)),
                  Platform(std::move(procs), 1.0, 1e-5, 2)};
}

/// A real evaluated solution so persisted metrics have realistic values.
CachedSolution feasible_entry(const Instance& instance) {
  Mapping mapping(IntervalPartition::single(2), {{0, 2}});
  const MappingMetrics metrics =
      evaluate(instance.chain, instance.platform, mapping);
  return CachedSolution{solver::Solution{std::move(mapping), metrics}};
}

TEST(SolutionCache, MissThenHit) {
  ShardedSolutionCache cache;
  EXPECT_FALSE(cache.lookup(key_of(1)).has_value());
  cache.insert(key_of(1), CachedSolution{});
  const auto hit = cache.lookup(key_of(1));
  ASSERT_TRUE(hit.has_value());
  EXPECT_FALSE(hit->solution.has_value());  // cached infeasible

  const CacheStats stats = cache.stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.insertions, 1u);
  EXPECT_EQ(stats.entries, 1u);
  EXPECT_DOUBLE_EQ(stats.hit_rate(), 0.5);
}

TEST(SolutionCache, StoresAndReturnsSolutions) {
  const Instance instance = tiny_instance();
  ShardedSolutionCache cache;
  const CachedSolution entry = feasible_entry(instance);
  cache.insert(key_of(7), entry);
  const auto hit = cache.lookup(key_of(7));
  ASSERT_TRUE(hit.has_value());
  ASSERT_TRUE(hit->solution.has_value());
  EXPECT_EQ(hit->solution->mapping, entry.solution->mapping);
  EXPECT_EQ(hit->solution->metrics, entry.solution->metrics);
}

TEST(SolutionCache, EvictsLeastRecentlyUsedUnderByteBound) {
  ShardedSolutionCache::Config config;
  config.shards = 1;  // single shard: LRU order is global
  // Room for two infeasible entries (~160 bytes each), not three.
  config.capacity_bytes = 2 * cached_solution_bytes(CachedSolution{});
  ShardedSolutionCache cache(config);

  cache.insert(key_of(1), CachedSolution{});
  cache.insert(key_of(2), CachedSolution{});
  ASSERT_TRUE(cache.lookup(key_of(1)).has_value());  // 1 now most recent
  cache.insert(key_of(3), CachedSolution{});         // evicts 2

  EXPECT_TRUE(cache.lookup(key_of(1)).has_value());
  EXPECT_FALSE(cache.lookup(key_of(2)).has_value());
  EXPECT_TRUE(cache.lookup(key_of(3)).has_value());
  EXPECT_EQ(cache.stats().evictions, 1u);
  EXPECT_EQ(cache.stats().entries, 2u);
}

TEST(SolutionCache, KeepsASingleOversizedEntry) {
  ShardedSolutionCache::Config config;
  config.shards = 1;
  config.capacity_bytes = 1;  // below any entry's footprint
  ShardedSolutionCache cache(config);
  cache.insert(key_of(1), CachedSolution{});
  EXPECT_TRUE(cache.lookup(key_of(1)).has_value());
  cache.insert(key_of(2), CachedSolution{});  // displaces the first
  EXPECT_FALSE(cache.lookup(key_of(1)).has_value());
  EXPECT_TRUE(cache.lookup(key_of(2)).has_value());
}

TEST(SolutionCache, ReinsertRefreshesInsteadOfDuplicating) {
  ShardedSolutionCache cache;
  cache.insert(key_of(1), CachedSolution{});
  cache.insert(key_of(1), CachedSolution{});
  EXPECT_EQ(cache.stats().entries, 1u);
  EXPECT_EQ(cache.stats().insertions, 1u);
}

TEST(SolutionCache, ClearDropsEntriesKeepsCounters) {
  ShardedSolutionCache cache;
  cache.insert(key_of(1), CachedSolution{});
  cache.clear();
  EXPECT_EQ(cache.stats().entries, 0u);
  EXPECT_EQ(cache.stats().insertions, 1u);
  EXPECT_FALSE(cache.lookup(key_of(1)).has_value());
}

TEST(SolutionCachePersistence, TsvRoundTripIsBitIdentical) {
  const Instance instance = tiny_instance();
  ShardedSolutionCache cache;
  const CachedSolution entry = feasible_entry(instance);
  cache.insert(key_of(1), entry);
  cache.insert(key_of(2), CachedSolution{});  // negative entry

  std::stringstream file;
  cache.save_tsv(file);

  ShardedSolutionCache reloaded;
  const auto result = reloaded.load_tsv(file);
  EXPECT_EQ(result.error, "");
  EXPECT_EQ(result.loaded, 2u);

  const auto hit = reloaded.lookup(key_of(1));
  ASSERT_TRUE(hit.has_value());
  ASSERT_TRUE(hit->solution.has_value());
  EXPECT_EQ(hit->solution->mapping, entry.solution->mapping);
  // Exact double equality: canonical_number round-trips every field.
  EXPECT_EQ(hit->solution->metrics, entry.solution->metrics);

  const auto negative = reloaded.lookup(key_of(2));
  ASSERT_TRUE(negative.has_value());
  EXPECT_FALSE(negative->solution.has_value());
}

TEST(SolutionCachePersistence, MalformedLineIsReported) {
  ShardedSolutionCache cache;
  std::stringstream file("not-a-hash\t1\t0\t0\n");
  const auto result = cache.load_tsv(file);
  EXPECT_EQ(result.loaded, 0u);
  EXPECT_NE(result.error.find("line 1"), std::string::npos);
}

TEST(SolutionCacheStats, JsonSnapshotNamesEveryCounter) {
  ShardedSolutionCache cache;
  cache.insert(key_of(1), CachedSolution{});
  cache.lookup(key_of(1));
  std::ostringstream out;
  ShardedSolutionCache::write_stats_json(out, cache.stats());
  const std::string json = out.str();
  EXPECT_NE(json.find("\"hits\":1"), std::string::npos);
  EXPECT_NE(json.find("\"insertions\":1"), std::string::npos);
  EXPECT_NE(json.find("\"shards\":16"), std::string::npos);
  EXPECT_NE(json.find("\"hit_rate\":1"), std::string::npos);
}

}  // namespace
}  // namespace prts::service
