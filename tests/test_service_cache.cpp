// The sharded LRU solution cache: hit/miss/eviction behavior, byte
// bounds, stats, and TSV persistence replaying bit-identical solutions.
// Plus the fabric's replica tier: TTL expiry against injected clocks,
// byte-bounded LRU eviction, and side-effect-free peeks.
#include "service/cache.hpp"

#include <chrono>
#include <sstream>

#include <gtest/gtest.h>

#include "eval/evaluation.hpp"

namespace prts::service {
namespace {

CanonicalHash key_of(int i) {
  return fingerprint("key-" + std::to_string(i));
}

Instance tiny_instance() {
  std::vector<Task> tasks{{5.0, 1.0}, {7.0, 0.0}};
  std::vector<Processor> procs{{1.0, 1e-8}, {1.0, 1e-8}, {1.0, 1e-8}};
  return Instance{TaskChain(std::move(tasks)),
                  Platform(std::move(procs), 1.0, 1e-5, 2)};
}

/// A real evaluated solution so persisted metrics have realistic values.
CachedSolution feasible_entry(const Instance& instance) {
  Mapping mapping(IntervalPartition::single(2), {{0, 2}});
  const MappingMetrics metrics =
      evaluate(instance.chain, instance.platform, mapping);
  return CachedSolution{solver::Solution{std::move(mapping), metrics}};
}

TEST(SolutionCache, MissThenHit) {
  ShardedSolutionCache cache;
  EXPECT_FALSE(cache.lookup(key_of(1)).has_value());
  cache.insert(key_of(1), CachedSolution{});
  const auto hit = cache.lookup(key_of(1));
  ASSERT_TRUE(hit.has_value());
  EXPECT_FALSE(hit->solution.has_value());  // cached infeasible

  const CacheStats stats = cache.stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.insertions, 1u);
  EXPECT_EQ(stats.entries, 1u);
  EXPECT_DOUBLE_EQ(stats.hit_rate(), 0.5);
}

TEST(SolutionCache, StoresAndReturnsSolutions) {
  const Instance instance = tiny_instance();
  ShardedSolutionCache cache;
  const CachedSolution entry = feasible_entry(instance);
  cache.insert(key_of(7), entry);
  const auto hit = cache.lookup(key_of(7));
  ASSERT_TRUE(hit.has_value());
  ASSERT_TRUE(hit->solution.has_value());
  EXPECT_EQ(hit->solution->mapping, entry.solution->mapping);
  EXPECT_EQ(hit->solution->metrics, entry.solution->metrics);
}

TEST(SolutionCache, EvictsLeastRecentlyUsedUnderByteBound) {
  ShardedSolutionCache::Config config;
  config.shards = 1;  // single shard: LRU order is global
  // Room for two infeasible entries (~160 bytes each), not three.
  config.capacity_bytes = 2 * cached_solution_bytes(CachedSolution{});
  ShardedSolutionCache cache(config);

  cache.insert(key_of(1), CachedSolution{});
  cache.insert(key_of(2), CachedSolution{});
  ASSERT_TRUE(cache.lookup(key_of(1)).has_value());  // 1 now most recent
  cache.insert(key_of(3), CachedSolution{});         // evicts 2

  EXPECT_TRUE(cache.lookup(key_of(1)).has_value());
  EXPECT_FALSE(cache.lookup(key_of(2)).has_value());
  EXPECT_TRUE(cache.lookup(key_of(3)).has_value());
  EXPECT_EQ(cache.stats().evictions, 1u);
  EXPECT_EQ(cache.stats().entries, 2u);
}

TEST(SolutionCache, KeepsASingleOversizedEntry) {
  ShardedSolutionCache::Config config;
  config.shards = 1;
  config.capacity_bytes = 1;  // below any entry's footprint
  ShardedSolutionCache cache(config);
  cache.insert(key_of(1), CachedSolution{});
  EXPECT_TRUE(cache.lookup(key_of(1)).has_value());
  cache.insert(key_of(2), CachedSolution{});  // displaces the first
  EXPECT_FALSE(cache.lookup(key_of(1)).has_value());
  EXPECT_TRUE(cache.lookup(key_of(2)).has_value());
}

TEST(SolutionCache, ReinsertRefreshesInsteadOfDuplicating) {
  ShardedSolutionCache cache;
  cache.insert(key_of(1), CachedSolution{});
  cache.insert(key_of(1), CachedSolution{});
  EXPECT_EQ(cache.stats().entries, 1u);
  EXPECT_EQ(cache.stats().insertions, 1u);
}

TEST(SolutionCache, ClearDropsEntriesKeepsCounters) {
  ShardedSolutionCache cache;
  cache.insert(key_of(1), CachedSolution{});
  cache.clear();
  EXPECT_EQ(cache.stats().entries, 0u);
  EXPECT_EQ(cache.stats().insertions, 1u);
  EXPECT_FALSE(cache.lookup(key_of(1)).has_value());
}

TEST(SolutionCachePersistence, TsvRoundTripIsBitIdentical) {
  const Instance instance = tiny_instance();
  ShardedSolutionCache cache;
  const CachedSolution entry = feasible_entry(instance);
  cache.insert(key_of(1), entry);
  cache.insert(key_of(2), CachedSolution{});  // negative entry

  std::stringstream file;
  cache.save_tsv(file);

  ShardedSolutionCache reloaded;
  const auto result = reloaded.load_tsv(file);
  EXPECT_EQ(result.error, "");
  EXPECT_EQ(result.loaded, 2u);

  const auto hit = reloaded.lookup(key_of(1));
  ASSERT_TRUE(hit.has_value());
  ASSERT_TRUE(hit->solution.has_value());
  EXPECT_EQ(hit->solution->mapping, entry.solution->mapping);
  // Exact double equality: canonical_number round-trips every field.
  EXPECT_EQ(hit->solution->metrics, entry.solution->metrics);

  const auto negative = reloaded.lookup(key_of(2));
  ASSERT_TRUE(negative.has_value());
  EXPECT_FALSE(negative->solution.has_value());
}

TEST(SolutionCachePersistence, MalformedLineIsReported) {
  ShardedSolutionCache cache;
  std::stringstream file("not-a-hash\t1\t0\t0\n");
  const auto result = cache.load_tsv(file);
  EXPECT_EQ(result.loaded, 0u);
  EXPECT_NE(result.error.find("line 1"), std::string::npos);
}

TEST(SolutionCachePersistence, TsvRoundTripPreservesSolveCost) {
  ShardedSolutionCache cache;
  CachedSolution entry = feasible_entry(tiny_instance());
  entry.cost_seconds = 0.0625;  // exactly representable
  cache.insert(key_of(1), entry);
  CachedSolution negative;
  negative.cost_seconds = 1.5;
  cache.insert(key_of(2), negative);

  std::stringstream file;
  cache.save_tsv(file);
  ShardedSolutionCache reloaded;
  ASSERT_EQ(reloaded.load_tsv(file).error, "");
  EXPECT_EQ(reloaded.lookup(key_of(1))->cost_seconds, 0.0625);
  EXPECT_EQ(reloaded.lookup(key_of(2))->cost_seconds, 1.5);
}

TEST(SolutionCachePersistence, LegacyTsvLinesWithoutCostStillLoad) {
  ShardedSolutionCache cache;
  // A pre-cost-field negative entry (4 fields).
  std::stringstream file(to_hex(key_of(3)) + "\t0\t-\t-\n");
  const auto result = cache.load_tsv(file);
  EXPECT_EQ(result.error, "");
  EXPECT_EQ(result.loaded, 1u);
  EXPECT_EQ(cache.lookup(key_of(3))->cost_seconds, 0.0);
}

TEST(SolutionCachePersistence, BinaryRoundTripIsBitIdentical) {
  const Instance instance = tiny_instance();
  ShardedSolutionCache cache;
  CachedSolution entry = feasible_entry(instance);
  entry.cost_seconds = 0.25;
  cache.insert(key_of(1), entry);
  cache.insert(key_of(2), CachedSolution{});  // negative entry

  std::stringstream file(std::ios::in | std::ios::out | std::ios::binary);
  cache.save_binary(file);

  ShardedSolutionCache reloaded;
  const auto result = reloaded.load_binary(file);
  EXPECT_EQ(result.error, "");
  EXPECT_EQ(result.loaded, 2u);
  EXPECT_EQ(result.skipped, 0u);

  const auto hit = reloaded.lookup(key_of(1));
  ASSERT_TRUE(hit.has_value());
  ASSERT_TRUE(hit->solution.has_value());
  EXPECT_EQ(hit->solution->mapping, entry.solution->mapping);
  EXPECT_EQ(hit->solution->metrics, entry.solution->metrics);
  EXPECT_EQ(hit->cost_seconds, 0.25);
  const auto negative = reloaded.lookup(key_of(2));
  ASSERT_TRUE(negative.has_value());
  EXPECT_FALSE(negative->solution.has_value());
}

TEST(SolutionCachePersistence, BinarySelectiveLoadReadsOnlyOwnShard) {
  ShardedSolutionCache cache;
  std::size_t mine = 0;
  for (int i = 0; i < 32; ++i) {
    cache.insert(key_of(i), CachedSolution{});
    if (key_of(i).hi % 2 == 0) ++mine;
  }
  std::stringstream file(std::ios::in | std::ios::out | std::ios::binary);
  cache.save_binary(file);

  // A rank-0-of-2 fabric node loads only the keys it owns.
  ShardedSolutionCache shard0;
  const auto result = shard0.load_binary(
      file, [](const CanonicalHash& key) { return key.hi % 2 == 0; });
  EXPECT_EQ(result.error, "");
  EXPECT_EQ(result.loaded, mine);
  EXPECT_EQ(result.skipped, 32u - mine);
  for (int i = 0; i < 32; ++i) {
    EXPECT_EQ(shard0.lookup(key_of(i)).has_value(), key_of(i).hi % 2 == 0);
  }
}

TEST(SolutionCachePersistence, BinaryRejectsGarbage) {
  ShardedSolutionCache cache;
  std::stringstream wrong("definitely not a PRTS1 snapshot, long enough");
  EXPECT_NE(cache.load_binary(wrong).error.find("bad magic"),
            std::string::npos);

  std::stringstream truncated(std::string("PRTS1\n"));
  EXPECT_NE(cache.load_binary(truncated).error.find("truncated"),
            std::string::npos);

  // A valid header whose index promises more entries than exist.
  std::stringstream cut(std::ios::in | std::ios::out | std::ios::binary);
  cache.insert(key_of(1), CachedSolution{});
  cache.save_binary(cut);
  std::string bytes = cut.str();
  bytes.resize(bytes.size() - 4);  // chop the blob
  std::stringstream chopped(bytes);
  ShardedSolutionCache fresh;
  EXPECT_FALSE(fresh.load_binary(chopped).error.empty());
}

TEST(SolutionCacheRetention, CostAwareEvictionKeepsExpensiveSolves) {
  const Instance instance = tiny_instance();
  // Entry footprint is ~160 bytes (negative) / ~250 (feasible); a tight
  // single-shard budget forces evictions from the third insert on.
  ShardedSolutionCache::Config config;
  config.shards = 1;
  config.capacity_bytes = 1000;
  config.retention = ShardedSolutionCache::Retention::kCost;
  ShardedSolutionCache cache(config);

  CachedSolution expensive = feasible_entry(instance);
  expensive.cost_seconds = 30.0;  // an exact solve worth keeping
  cache.insert(key_of(0), expensive);
  for (int i = 1; i <= 12; ++i) {
    CachedSolution cheap = feasible_entry(instance);
    cheap.cost_seconds = 1e-4;  // heuristic answers
    cache.insert(key_of(i), cheap);
  }
  EXPECT_GT(cache.stats().evictions, 0u);
  // Under strict LRU key 0 would be the first victim; cost-aware
  // retention keeps it and sheds cheap entries instead.
  EXPECT_TRUE(cache.lookup(key_of(0)).has_value());

  ShardedSolutionCache::Config lru_config = config;
  lru_config.retention = ShardedSolutionCache::Retention::kLru;
  ShardedSolutionCache lru(lru_config);
  lru.insert(key_of(0), expensive);
  for (int i = 1; i <= 12; ++i) {
    CachedSolution cheap = feasible_entry(instance);
    cheap.cost_seconds = 1e-4;
    lru.insert(key_of(i), cheap);
  }
  EXPECT_FALSE(lru.lookup(key_of(0)).has_value());
}

TEST(SolutionCacheStats, JsonSnapshotNamesEveryCounter) {
  ShardedSolutionCache cache;
  cache.insert(key_of(1), CachedSolution{});
  cache.lookup(key_of(1));
  std::ostringstream out;
  ShardedSolutionCache::write_stats_json(out, cache.stats());
  const std::string json = out.str();
  EXPECT_NE(json.find("\"hits\":1"), std::string::npos);
  EXPECT_NE(json.find("\"insertions\":1"), std::string::npos);
  EXPECT_NE(json.find("\"shards\":16"), std::string::npos);
  EXPECT_NE(json.find("\"hit_rate\":1"), std::string::npos);
}

// ----------------------------------------------- bounds-monotone index

CachedSolution indexed_entry(const Instance& instance,
                             const CanonicalHash& instance_key,
                             double period_bound, double latency_bound) {
  CachedSolution entry = feasible_entry(instance);
  entry.instance_key = instance_key;
  entry.bounds = solver::Bounds{period_bound, latency_bound};
  return entry;
}

TEST(NearMissIndex, DominatingEntryServesTighterBounds) {
  const Instance instance = tiny_instance();
  const CanonicalHash ikey = fingerprint("instance-a");
  ShardedSolutionCache cache;
  // Solved at (period 50, latency 100); the solution's own metrics
  // satisfy much tighter bounds.
  CachedSolution entry = indexed_entry(instance, ikey, 50.0, 100.0);
  cache.insert(key_of(1), entry);

  const MappingMetrics& metrics = entry.solution->metrics;
  solver::Bounds tighter{metrics.worst_period + 1.0,
                         metrics.worst_latency + 1.0};
  const auto hit = cache.find_dominating(ikey, tighter);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->solution->mapping, entry.solution->mapping);
  EXPECT_EQ(hit->solution->metrics, entry.solution->metrics);
  EXPECT_EQ(cache.stats().near_hits, 1u);
  EXPECT_EQ(cache.stats().near_entries, 1u);

  // Bounds looser than the recorded ones never match (the entry does
  // not dominate them), and neither does a foreign instance key.
  EXPECT_FALSE(cache.find_dominating(ikey, {60.0, 100.0}).has_value());
  EXPECT_FALSE(
      cache.find_dominating(fingerprint("instance-b"), tighter).has_value());
}

TEST(NearMissIndex, DominatingEntryWhoseSolutionDoesNotFitIsSkipped) {
  const Instance instance = tiny_instance();
  const CanonicalHash ikey = fingerprint("instance-a");
  ShardedSolutionCache cache;
  CachedSolution entry = indexed_entry(instance, ikey, 50.0, 100.0);
  cache.insert(key_of(1), entry);
  // Tighter than the solution's own period: the cached answer does not
  // transfer, so this must MISS (a fresh solve could do better).
  solver::Bounds tighter{entry.solution->metrics.worst_period * 0.5, 100.0};
  EXPECT_FALSE(cache.find_dominating(ikey, tighter).has_value());
}

TEST(NearMissIndex, LooserInfeasibilityDominates) {
  const CanonicalHash ikey = fingerprint("instance-a");
  ShardedSolutionCache cache;
  CachedSolution infeasible;
  infeasible.instance_key = ikey;
  infeasible.bounds = solver::Bounds{10.0, 100.0};
  cache.insert(key_of(1), infeasible);

  const auto hit = cache.find_dominating(ikey, {5.0, 50.0});
  ASSERT_TRUE(hit.has_value());
  EXPECT_FALSE(hit->solution.has_value());
  // The infeasibility does not transfer to *looser* bounds.
  EXPECT_FALSE(cache.find_dominating(ikey, {20.0, 100.0}).has_value());
}

TEST(NearMissIndex, FindFeasibleReturnsTheMostReliableFit) {
  const Instance instance = tiny_instance();
  const CanonicalHash ikey = fingerprint("instance-a");
  ShardedSolutionCache cache;
  CachedSolution weak = indexed_entry(instance, ikey, 5.0, 100.0);
  weak.solution->metrics.reliability = LogReliability::from_log(-1.0);
  CachedSolution strong = indexed_entry(instance, ikey, 8.0, 100.0);
  strong.solution->metrics.reliability = LogReliability::from_log(-0.5);
  cache.insert(key_of(1), weak);
  cache.insert(key_of(2), strong);

  // Both solutions fit loose request bounds; the stronger floor wins.
  const auto best = cache.find_feasible(ikey, {1e9, 1e9});
  ASSERT_TRUE(best.has_value());
  EXPECT_EQ(best->solution->metrics.reliability.log(), -0.5);

  // Bounds no cached solution satisfies yield nothing.
  EXPECT_FALSE(cache.find_feasible(ikey, {1e-6, 1e-6}).has_value());
}

TEST(NearMissIndex, EvictedEntriesAreDroppedLazily) {
  const Instance instance = tiny_instance();
  const CanonicalHash ikey = fingerprint("instance-a");
  ShardedSolutionCache::Config config;
  config.shards = 1;
  config.capacity_bytes = 2 * cached_solution_bytes(
                                  indexed_entry(instance, ikey, 50.0, 100.0));
  ShardedSolutionCache cache(config);
  for (int i = 0; i < 8; ++i) {
    cache.insert(key_of(i), indexed_entry(instance, ikey, 50.0 + i, 100.0));
  }
  EXPECT_GT(cache.stats().evictions, 0u);
  // Stale index references are pruned as the lookup walks them; the
  // survivors still answer.
  const auto hit = cache.find_dominating(ikey, {1.0, 1.0});
  (void)hit;  // feasibility depends on the entry metrics; the walk ran
  EXPECT_LE(cache.stats().near_entries, cache.stats().entries);
}

TEST(NearMissIndex, PerInstanceHistoryIsBounded) {
  const Instance instance = tiny_instance();
  const CanonicalHash ikey = fingerprint("instance-a");
  ShardedSolutionCache::Config config;
  config.near_index_per_instance = 4;
  ShardedSolutionCache cache(config);
  for (int i = 0; i < 32; ++i) {
    cache.insert(key_of(i), indexed_entry(instance, ikey, 50.0 + i, 100.0));
  }
  EXPECT_LE(cache.stats().near_entries, 4u);
}

TEST(NearMissIndex, ClearDropsTheIndexToo) {
  const Instance instance = tiny_instance();
  const CanonicalHash ikey = fingerprint("instance-a");
  ShardedSolutionCache cache;
  cache.insert(key_of(1), indexed_entry(instance, ikey, 50.0, 100.0));
  cache.clear();
  EXPECT_EQ(cache.stats().near_entries, 0u);
  EXPECT_FALSE(cache.find_dominating(ikey, {1.0, 1.0}).has_value());
}

// ----------------------------------------------------- replica tier

using ReplicaClock = ReplicaCache::Clock;

TEST(ReplicaTier, PeekDoesNotDisturbLruOrStats) {
  ShardedSolutionCache cache;
  cache.insert(key_of(1), CachedSolution{});
  const auto before = cache.stats();
  ASSERT_TRUE(cache.peek(key_of(1)).has_value());
  EXPECT_FALSE(cache.peek(key_of(2)).has_value());
  const auto after = cache.stats();
  EXPECT_EQ(after.hits, before.hits);
  EXPECT_EQ(after.misses, before.misses);
}

TEST(ReplicaTier, TtlExpiresAgainstInjectedClock) {
  ReplicaCache::Config config;
  config.ttl_seconds = 10.0;
  ReplicaCache cache(config);
  const auto t0 = ReplicaClock::now();

  cache.insert(key_of(1), CachedSolution{}, t0);
  EXPECT_TRUE(cache.lookup(key_of(1), t0 + std::chrono::seconds(9))
                  .has_value());
  // At exactly the TTL the entry is stale: dropped and counted.
  EXPECT_FALSE(cache.lookup(key_of(1), t0 + std::chrono::seconds(10))
                   .has_value());
  const ReplicaStats stats = cache.stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.expirations, 1u);
  EXPECT_EQ(stats.entries, 0u);
}

TEST(ReplicaTier, ReinsertRestartsTheTtl) {
  ReplicaCache::Config config;
  config.ttl_seconds = 10.0;
  ReplicaCache cache(config);
  const auto t0 = ReplicaClock::now();

  cache.insert(key_of(1), CachedSolution{}, t0);
  cache.insert(key_of(1), CachedSolution{}, t0 + std::chrono::seconds(8));
  EXPECT_TRUE(cache.lookup(key_of(1), t0 + std::chrono::seconds(15))
                  .has_value());
  EXPECT_EQ(cache.stats().insertions, 1u);  // refresh, not a new entry
}

TEST(ReplicaTier, AdaptiveTtlScalesWithRecordedSolveCost) {
  ReplicaCache::Config config;
  config.ttl_seconds = 10.0;
  config.ttl_cost_factor = 5.0;  // +5s of lifetime per solve second
  ReplicaCache cache(config);
  const auto t0 = ReplicaClock::now();

  CachedSolution cheap;  // cost 0: flat TTL
  cache.insert(key_of(1), cheap, t0);
  CachedSolution expensive;
  expensive.cost_seconds = 4.0;  // 10 + 4*5 = 30s lifetime
  cache.insert(key_of(2), expensive, t0);

  EXPECT_FALSE(cache.contains(key_of(1), t0 + std::chrono::seconds(15)));
  EXPECT_TRUE(cache.contains(key_of(2), t0 + std::chrono::seconds(15)));
  EXPECT_TRUE(cache.contains(key_of(2), t0 + std::chrono::seconds(29)));
  EXPECT_FALSE(cache.contains(key_of(2), t0 + std::chrono::seconds(30)));
}

TEST(ReplicaTier, AdaptiveTtlIsCapped) {
  ReplicaCache::Config config;
  config.ttl_seconds = 10.0;
  config.ttl_cost_factor = 1.0;
  config.ttl_max_seconds = 60.0;
  ReplicaCache cache(config);
  const auto t0 = ReplicaClock::now();
  CachedSolution pathological;
  pathological.cost_seconds = 1e9;
  cache.insert(key_of(1), pathological, t0);
  EXPECT_TRUE(cache.contains(key_of(1), t0 + std::chrono::seconds(59)));
  EXPECT_FALSE(cache.contains(key_of(1), t0 + std::chrono::seconds(60)));

  // Without an explicit cap, 16x the base TTL bounds the extension.
  ReplicaCache::Config uncapped = config;
  uncapped.ttl_max_seconds = 0.0;
  ReplicaCache fallback(uncapped);
  fallback.insert(key_of(2), pathological, t0);
  EXPECT_TRUE(fallback.contains(key_of(2), t0 + std::chrono::seconds(159)));
  EXPECT_FALSE(fallback.contains(key_of(2), t0 + std::chrono::seconds(161)));

  // A cap below the base TTL bounds only the extension: an expensive
  // entry must never expire before a free one would.
  ReplicaCache::Config inverted = config;
  inverted.ttl_max_seconds = 2.0;  // below ttl_seconds = 10
  ReplicaCache clamped(inverted);
  clamped.insert(key_of(3), pathological, t0);
  EXPECT_TRUE(clamped.contains(key_of(3), t0 + std::chrono::seconds(9)));
  EXPECT_FALSE(clamped.contains(key_of(3), t0 + std::chrono::seconds(10)));
}

TEST(ReplicaTier, NonPositiveTtlNeverExpires) {
  ReplicaCache::Config config;
  config.ttl_seconds = 0.0;
  ReplicaCache cache(config);
  const auto t0 = ReplicaClock::now();
  cache.insert(key_of(1), CachedSolution{}, t0);
  EXPECT_TRUE(cache.lookup(key_of(1), t0 + std::chrono::hours(24 * 365))
                  .has_value());
}

TEST(ReplicaTier, EvictsLeastRecentlyUsedUnderByteBound) {
  const Instance instance = tiny_instance();
  ReplicaCache::Config config;
  config.capacity_bytes = 3 * cached_solution_bytes(feasible_entry(instance));
  ReplicaCache cache(config);

  for (int i = 0; i < 3; ++i) cache.insert(key_of(i), feasible_entry(instance));
  ASSERT_TRUE(cache.lookup(key_of(0)).has_value());  // 0 now most recent
  cache.insert(key_of(3), feasible_entry(instance));

  // Key 1 was the least recently used; 0 survived its refresh.
  EXPECT_FALSE(cache.contains(key_of(1)));
  EXPECT_TRUE(cache.contains(key_of(0)));
  EXPECT_TRUE(cache.contains(key_of(3)));
  const ReplicaStats stats = cache.stats();
  EXPECT_EQ(stats.evictions, 1u);
  EXPECT_EQ(stats.entries, 3u);
  EXPECT_LE(stats.bytes, stats.capacity_bytes);
}

TEST(ReplicaTier, ZeroCapacityDisablesTheTier) {
  ReplicaCache::Config config;
  config.capacity_bytes = 0;
  ReplicaCache cache(config);
  EXPECT_FALSE(cache.enabled());
  cache.insert(key_of(1), CachedSolution{});
  EXPECT_FALSE(cache.lookup(key_of(1)).has_value());
  EXPECT_EQ(cache.stats().insertions, 0u);
}

TEST(ReplicaTier, SolutionsRoundTripThroughTheTier) {
  const Instance instance = tiny_instance();
  ReplicaCache cache;
  const CachedSolution entry = feasible_entry(instance);
  cache.insert(key_of(5), entry);
  const auto hit = cache.lookup(key_of(5));
  ASSERT_TRUE(hit.has_value());
  ASSERT_TRUE(hit->solution.has_value());
  EXPECT_EQ(hit->solution->mapping, entry.solution->mapping);
  EXPECT_EQ(hit->solution->metrics, entry.solution->metrics);
}

TEST(ReplicaTier, JsonSnapshotNamesEveryCounter) {
  ReplicaCache cache;
  cache.insert(key_of(1), CachedSolution{});
  cache.lookup(key_of(1));
  cache.lookup(key_of(2));
  std::ostringstream out;
  ReplicaCache::write_stats_json(out, cache.stats());
  const std::string json = out.str();
  EXPECT_NE(json.find("\"hits\":1"), std::string::npos);
  EXPECT_NE(json.find("\"misses\":1"), std::string::npos);
  EXPECT_NE(json.find("\"insertions\":1"), std::string::npos);
  EXPECT_NE(json.find("\"expirations\":0"), std::string::npos);
  EXPECT_NE(json.find("\"entries\":1"), std::string::npos);
}

}  // namespace
}  // namespace prts::service
