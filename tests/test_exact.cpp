#include "core/exact.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "core/heuristics.hpp"
#include "core/reliability_dp.hpp"
#include "model/generator.hpp"
#include "test_oracle.hpp"
#include "test_util.hpp"

namespace prts {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

TEST(ExactSolver, RejectsHeterogeneous) {
  Rng rng(1);
  const TaskChain chain = testutil::small_chain(rng, 4);
  const Platform platform = testutil::small_het_platform(rng, 4, 2);
  EXPECT_THROW(HomogeneousExactSolver(chain, platform),
               std::invalid_argument);
}

TEST(ExactSolver, EnumeratesAllPartitions) {
  Rng rng(2);
  const TaskChain chain = testutil::small_chain(rng, 5);
  const Platform platform = testutil::small_hom_platform(6, 2);
  const HomogeneousExactSolver solver(chain, platform);
  // All 2^(n-1) = 16 partitions fit within min(n,p) = 5 intervals... the
  // 1 partition with 5 intervals included.
  EXPECT_EQ(solver.records().size(), 16u);
}

TEST(ExactSolver, LimitsIntervalCountToProcessors) {
  Rng rng(3);
  const TaskChain chain = testutil::small_chain(rng, 5);
  const Platform platform = testutil::small_hom_platform(2, 2);
  const HomogeneousExactSolver solver(chain, platform);
  for (const auto& record : solver.records()) {
    EXPECT_LE(record.lasts.size(), 2u);
  }
}

TEST(ExactSolver, UnboundedMatchesAlgorithm1) {
  Rng rng(4);
  for (int trial = 0; trial < 10; ++trial) {
    const TaskChain chain = testutil::small_chain(rng, 6);
    const Platform platform = testutil::small_hom_platform(5, 2);
    const HomogeneousExactSolver solver(chain, platform);
    const auto best = solver.best_log_reliability(kInf, kInf);
    const auto dp = optimize_reliability(chain, platform);
    ASSERT_TRUE(best.has_value());
    EXPECT_NEAR(*best, dp.reliability.log(), 1e-10);
  }
}

class ExactSolverOptimality : public ::testing::TestWithParam<int> {};

TEST_P(ExactSolverOptimality, MatchesBruteForceUnderBothBounds) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) + 600);
  const auto n = static_cast<std::size_t>(rng.uniform_int(2, 6));
  const auto p = static_cast<std::size_t>(rng.uniform_int(2, 6));
  const TaskChain chain = testutil::small_chain(rng, n);
  const Platform platform = testutil::small_hom_platform(p, 2);
  const double period_bound = rng.uniform_real(5.0, 40.0);
  const double latency_bound = rng.uniform_real(15.0, 90.0);
  const HomogeneousExactSolver solver(chain, platform);
  const auto fast =
      solver.best_log_reliability(period_bound, latency_bound);
  const auto oracle = testutil::brute_force_best_log_reliability(
      chain, platform, period_bound, latency_bound);
  ASSERT_EQ(fast.has_value(), oracle.has_value())
      << "P=" << period_bound << " L=" << latency_bound;
  if (fast) {
    EXPECT_NEAR(*fast, *oracle, 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ExactSolverOptimality,
                         ::testing::Range(0, 40));

TEST(ExactSolver, SolveReturnsConsistentMapping) {
  Rng rng(5);
  const TaskChain chain = testutil::small_chain(rng, 6);
  const Platform platform = testutil::small_hom_platform(5, 2);
  const HomogeneousExactSolver solver(chain, platform);
  const auto solution = solver.solve(30.0, 80.0);
  if (!solution) GTEST_SKIP() << "bounds infeasible for this seed";
  ASSERT_FALSE(solution->mapping.validate(platform).has_value());
  EXPECT_LE(solution->metrics.worst_period, 30.0 + 1e-9);
  EXPECT_LE(solution->metrics.worst_latency, 80.0 + 1e-9);
  const auto best = solver.best_log_reliability(30.0, 80.0);
  EXPECT_NEAR(solution->metrics.reliability.log(), *best, 1e-10);
}

TEST(ExactSolver, NeverWorseThanHeuristics) {
  Rng rng(6);
  for (int trial = 0; trial < 10; ++trial) {
    const TaskChain chain = testutil::small_chain(rng, 6);
    const Platform platform = testutil::small_hom_platform(6, 3);
    const double period_bound = rng.uniform_real(10.0, 50.0);
    const double latency_bound = rng.uniform_real(30.0, 100.0);
    const HomogeneousExactSolver solver(chain, platform);
    const auto exact =
        solver.best_log_reliability(period_bound, latency_bound);
    HeuristicOptions options;
    options.period_bound = period_bound;
    options.latency_bound = latency_bound;
    for (HeuristicKind kind :
         {HeuristicKind::kHeurL, HeuristicKind::kHeurP}) {
      const auto heuristic = run_heuristic(chain, platform, kind, options);
      if (heuristic) {
        ASSERT_TRUE(exact.has_value());
        EXPECT_GE(*exact, heuristic->metrics.reliability.log() - 1e-9);
      }
    }
  }
}

TEST(ExactDp, AgreesWithEnumerationOnIntegerInstances) {
  Rng rng(7);
  for (int trial = 0; trial < 15; ++trial) {
    const TaskChain chain = testutil::small_chain(rng, 6);
    const Platform platform = testutil::small_hom_platform(5, 2);
    const double period_bound = std::floor(rng.uniform_real(5.0, 40.0));
    const double latency_bound = std::floor(rng.uniform_real(15.0, 90.0));
    const HomogeneousExactSolver solver(chain, platform);
    const auto via_enum =
        solver.best_log_reliability(period_bound, latency_bound);
    const auto via_dp = exact_dp_log_reliability(chain, platform,
                                                 period_bound,
                                                 latency_bound);
    ASSERT_EQ(via_enum.has_value(), via_dp.has_value());
    if (via_enum) {
      EXPECT_NEAR(*via_enum, *via_dp, 1e-9);
    }
  }
}

TEST(ExactDp, RejectsNonIntegralDurations) {
  const TaskChain chain({{1.5, 0.0}});
  const Platform platform = Platform::homogeneous(1, 1.0, 0.01, 1.0, 0.0, 1);
  EXPECT_THROW(exact_dp_log_reliability(chain, platform, kInf, kInf),
               std::invalid_argument);
}

TEST(ExactSolver, PaperScaleCompletesQuickly) {
  Rng rng(8);
  const TaskChain chain = paper::chain(rng);
  const Platform platform = paper::hom_platform();
  const HomogeneousExactSolver solver(chain, platform);
  // All partitions with <= 10 intervals out of 2^14.
  EXPECT_GT(solver.records().size(), 14000u);
  EXPECT_LE(solver.records().size(), 16384u);
  const auto best = solver.best_log_reliability(250.0, 750.0);
  // A mid-range bound pair from the paper's sweeps is usually feasible.
  if (best) {
    EXPECT_LT(*best, 0.0);
  }
}

}  // namespace
}  // namespace prts
