// In-process multi-rank fabric simulation harness: spins N *real*
// fabric nodes (SolveService + FrameServer + ShardRouter, each with its
// own pools) over loopback sockets inside one process, with
// deterministic fault injection. This is what makes the replication /
// gossip layer testable at all — every network exchange is real TCP,
// but ranks can be killed, revived, paused mid-frame or made to drop
// frames on cue, and every rank's counters and caches are directly
// inspectable.
//
// Deliberately gtest-free: reused verbatim by bench/fabric_replication
// (failures throw std::runtime_error instead of asserting).
//
// Fault injection levers (per rank, applied to *inbound* frames before
// the fabric handler sees them):
//   - pause()/resume(): hold every arriving frame at the gate —
//     freezes a rank so forwards to it stay in flight while the test
//     arranges dedup waiters or kills the rank;
//   - drop_next(n): swallow the next n admitted frames without a reply
//     (the connection closes, exactly like a peer dying mid-exchange);
//   - delay(seconds): sleep every admitted frame at the gate before the
//     handler runs — a *slow* peer (overloaded, GC-pausing, swapping)
//     rather than a dead one, so requesters see long wire round trips
//     that should attribute as blocked time, not compute;
//   - kill()/revive(): stop the rank's FrameServer / restart it on the
//     same port (SO_REUSEADDR makes the rebind reliable).
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "common/thread_pool.hpp"
#include "net/frame_server.hpp"
#include "obs/trace.hpp"
#include "service/engine.hpp"
#include "service/router.hpp"

namespace prts::service::testing {

/// Per-rank switchboard the harness's handler wrapper consults for
/// every inbound frame. Thread-safe; levers can be flipped while frames
/// are in flight.
class FaultInjector {
 public:
  /// Holds subsequent frames at the gate until resume().
  void pause() {
    const std::lock_guard<std::mutex> lock(mutex_);
    paused_ = true;
  }

  /// Releases held frames (they then honor the drop counter).
  void resume() {
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      paused_ = false;
    }
    cv_.notify_all();
  }

  /// The next `count` admitted frames are dropped: no reply, the
  /// connection closes — indistinguishable from a peer dying
  /// mid-exchange.
  void drop_next(std::size_t count) {
    const std::lock_guard<std::mutex> lock(mutex_);
    drop_remaining_ += count;
  }

  std::uint64_t dropped() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    return dropped_;
  }

  /// Every admitted frame sleeps this long at the gate before the
  /// handler runs (0 restores full speed). Models a slow-but-alive
  /// peer; the delay is inbound, so the *requester's* wire round trip
  /// stretches while its own solver stays idle.
  void delay(double seconds) {
    delay_ns_.store(seconds <= 0.0
                        ? 0
                        : static_cast<std::int64_t>(seconds * 1e9),
                    std::memory_order_relaxed);
  }

  /// Called by the handler wrapper: waits out a pause, then reports
  /// whether the frame may proceed (false = drop it). Admitted frames
  /// additionally serve the configured slow-peer delay.
  bool admit() {
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return !paused_; });
      if (drop_remaining_ > 0) {
        --drop_remaining_;
        ++dropped_;
        return false;
      }
    }
    // Sleep outside the lock: a slow rank must still be pausable and
    // must not serialize its concurrent inbound frames on the gate.
    const std::int64_t delay = delay_ns_.load(std::memory_order_relaxed);
    if (delay > 0) {
      std::this_thread::sleep_for(std::chrono::nanoseconds(delay));
    }
    return true;
  }

 private:
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  bool paused_ = false;
  std::size_t drop_remaining_ = 0;
  std::uint64_t dropped_ = 0;
  std::atomic<std::int64_t> delay_ns_{0};
};

class FabricHarness {
 public:
  struct Options {
    std::size_t world = 3;
    /// Applied to every rank's SolveService.
    ServiceConfig service;
    /// Template for every rank's router: world_size/rank/peers are
    /// overwritten, everything else (replica geometry, gossip knobs,
    /// client timeouts) is taken as configured.
    RouterConfig router;
    /// Per-rank FrameServer pool size; must exceed the number of
    /// long-lived inbound peer connections (each occupies a thread).
    std::size_t server_threads = 0;  ///< 0: world + 2 (elastic: world + 8)
    /// Elastic fleet instead of the static one: rank 0 founds it alone,
    /// every later rank joins by dialing rank 0, ownership follows the
    /// consistent-hash ring and joins stream handoffs. `world` is the
    /// *initial* size — add_rank() grows the fleet mid-test, retire()
    /// shrinks it (true process death, unlike kill()). The router
    /// template's membership / heartbeat knobs apply as configured;
    /// with heartbeat_interval_seconds <= 0 the harness drives rounds
    /// itself inside wait_for_members().
    bool elastic = false;
  };

  FabricHarness() : FabricHarness(Options()) {}

  explicit FabricHarness(Options options) : options_(options) {
    if (options_.world == 0) throw std::runtime_error("world must be >= 1");
    server_threads_ = options_.server_threads
                          ? options_.server_threads
                          : options_.world + (options_.elastic ? 8 : 2);
    if (options_.elastic) {
      // Elastic fleet: rank 0 founds it, later ranks join through it.
      // Each rank is fully wired (server AND router) before the next
      // joins — the join exchange needs a live seed router.
      for (std::size_t r = 0; r < options_.world; ++r) {
        spawn_elastic_rank(r == 0 ? std::optional<PeerAddress>()
                                  : std::optional<PeerAddress>(PeerAddress{
                                        "127.0.0.1", ranks_[0]->port}));
      }
      // Ranks > 1 learned of each other only via rank 0; let the view
      // spread before the test starts routing.
      wait_for_members(options_.world);
      return;
    }
    // Phase 1: services + servers on ephemeral ports (the handler
    // resolves its rank's router lazily — it does not exist yet).
    for (std::size_t r = 0; r < options_.world; ++r) {
      auto rank = std::make_unique<Rank>();
      // Every rank gets its own telemetry (the real deployment shape:
      // one Telemetry per process), shared by its service and router so
      // a forwarded solve's spans land in one trace per rank.
      rank->telemetry = std::make_unique<obs::Telemetry>();
      rank->telemetry->rank = static_cast<int>(r);
      ServiceConfig service_config = options_.service;
      service_config.telemetry = rank->telemetry.get();
      rank->service = std::make_unique<SolveService>(service_config);
      rank->server_pool = std::make_unique<ThreadPool>(server_threads_);
      start_server(*rank, /*port=*/0);
      rank->port = rank->server->port();
      ranks_.push_back(std::move(rank));
    }
    // Phase 2: now every port is known, wire the routers.
    std::vector<PeerAddress> peers;
    for (const auto& rank : ranks_) {
      peers.push_back(PeerAddress{"127.0.0.1", rank->port});
    }
    for (std::size_t r = 0; r < options_.world; ++r) {
      RouterConfig config = options_.router;
      config.world_size = options_.world;
      config.rank = r;
      config.peers = peers;
      config.telemetry = ranks_[r]->telemetry.get();
      ranks_[r]->router =
          std::make_unique<ShardRouter>(*ranks_[r]->service, config);
      ranks_[r]->router_ptr.store(ranks_[r]->router.get());
    }
  }

  ~FabricHarness() {
    // Servers first: stop() drains every in-flight handler, so no
    // server-pool thread can still be inside a router (a cleared
    // router_ptr alone would be a check-then-use race against a
    // handler that already loaded it). Routers after that — their
    // draining forwards/prefetches now fail fast against the dead
    // servers and fail over to the still-live local services.
    for (auto& rank : ranks_) rank->router_ptr.store(nullptr);
    for (auto& rank : ranks_) {
      if (rank->server) rank->server->stop();
    }
    for (auto& rank : ranks_) rank->router.reset();
  }

  FabricHarness(const FabricHarness&) = delete;
  FabricHarness& operator=(const FabricHarness&) = delete;

  std::size_t world() const noexcept { return ranks_.size(); }
  SolveService& service(std::size_t rank) { return *ranks_.at(rank)->service; }
  obs::Telemetry& telemetry(std::size_t rank) {
    return *ranks_.at(rank)->telemetry;
  }
  ShardRouter& router(std::size_t rank) { return *ranks_.at(rank)->router; }
  FaultInjector& faults(std::size_t rank) { return ranks_.at(rank)->faults; }
  std::uint16_t port(std::size_t rank) const { return ranks_.at(rank)->port; }

  /// Stops the rank's FrameServer: peers' exchanges with it fail from
  /// now on (their clients mark it suspect). The rank's own router and
  /// service stay alive — a dead rank's *clients* are not the scenario
  /// under test, its unreachable *server* is. Frames must not be held
  /// at the pause gate when killing (stop() waits for handlers).
  void kill(std::size_t rank) {
    auto& node = *ranks_.at(rank);
    if (node.server) {
      node.server->stop();
      node.server.reset();
    }
  }

  /// Restarts a killed rank's server on its original port. Throws when
  /// the port was meanwhile taken by another process.
  void revive(std::size_t rank) {
    auto& node = *ranks_.at(rank);
    if (node.server) return;
    start_server(node, node.port);
  }

  /// True while the rank participates in the fabric (never retired).
  bool alive(std::size_t rank) const {
    return ranks_.at(rank)->router != nullptr;
  }

  /// Spawns one brand-new rank that joins the fleet by dialing `seed`;
  /// returns its index. Elastic mode only. The caller typically follows
  /// with wait_for_members(expected) — the join reaches the seed
  /// synchronously, the rest of the fleet learns by heartbeat.
  std::size_t add_rank(std::size_t seed = 0) {
    if (!options_.elastic) {
      throw std::runtime_error("add_rank: static fleets cannot grow");
    }
    const auto& seed_node = *ranks_.at(seed);
    if (!seed_node.server || !seed_node.router) {
      throw std::runtime_error("add_rank: seed rank is down");
    }
    return spawn_elastic_rank(PeerAddress{"127.0.0.1", seed_node.port});
  }

  /// Tears the rank down for good — server, router, heartbeat timer,
  /// peer clients — the real "process died" scenario (kill() only
  /// severs the server; the rank's router keeps heartbeating). The
  /// service and its cache stay inspectable. Peers notice through
  /// silence: suspect after suspect_after_seconds, removed (epoch bump,
  /// ring shrink) after dead_after_seconds.
  void retire(std::size_t rank) {
    auto& node = *ranks_.at(rank);
    // Same ordering as the destructor: stop admitting router lookups,
    // drain in-flight handlers (which may hold the still-live router),
    // only then destroy the router.
    node.router_ptr.store(nullptr);
    if (node.server) {
      node.server->stop();
      node.server.reset();
    }
    node.router.reset();
  }

  /// Blocks until every live rank agrees the fleet has exactly `count`
  /// members (and, when nonzero, an epoch >= `min_epoch` — the
  /// monotonicity handle for join/death assertions). When the router
  /// template disables the heartbeat timer, heartbeat rounds are driven
  /// from here. Throws on timeout.
  void wait_for_members(std::size_t count, double timeout_seconds = 10.0,
                        std::uint64_t min_epoch = 0) {
    const auto deadline =
        std::chrono::steady_clock::now() +
        std::chrono::duration_cast<std::chrono::steady_clock::duration>(
            std::chrono::duration<double>(timeout_seconds));
    for (;;) {
      bool converged = false;
      for (auto& rank : ranks_) {
        if (!rank->router) continue;
        if (options_.router.heartbeat_interval_seconds <= 0.0) {
          rank->router->heartbeat_now();
        }
        const MembershipView view = rank->router->membership_view();
        if (view.members.size() == count && view.epoch >= min_epoch) {
          converged = true;  // needs every live rank to agree, see below
        } else {
          converged = false;
          break;
        }
      }
      if (converged) return;
      if (std::chrono::steady_clock::now() >= deadline) {
        throw std::runtime_error(
            "fabric harness: fleet never converged to " +
            std::to_string(count) + " member(s)");
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
  }

  /// Scans latency bounds >= 1000 (unconstraining for the tiny test
  /// instances, so every minted key is *solvable*) for one whose
  /// request key lands on `owner`; `salt` de-overlaps scans so repeated
  /// calls mint distinct keys. Other bounds are taken from `base` (set
  /// base.period_bound *before* calling — bounds are part of the key).
  /// On an elastic fleet ownership is the ring's *current* opinion
  /// (asked of the first live router) — mint keys after convergence,
  /// and expect them to migrate when the fleet changes.
  solver::Bounds bounds_on_rank(const Instance& instance,
                                const std::string& solver_name,
                                std::size_t owner, double salt = 0.0,
                                solver::Bounds base = {}) const {
    const ShardRouter* ring = nullptr;
    if (options_.elastic) {
      for (const auto& rank : ranks_) {
        if (rank->router) {
          ring = rank->router.get();
          break;
        }
      }
      if (ring == nullptr) {
        throw std::runtime_error("bounds_on_rank: no live rank to ask");
      }
    }
    const CanonicalInstance canonical = canonicalize(instance);
    for (double latency = 1000.0 + salt; latency < 4000.0 + salt;
         latency += 1.0) {
      solver::Bounds bounds = base;
      bounds.latency_bound = latency;
      const CanonicalHash key = request_key(canonical, solver_name, bounds);
      const std::size_t landed =
          ring != nullptr ? ring->shard_of(key) : key.hi % ranks_.size();
      if (landed == owner) return bounds;
    }
    throw std::runtime_error("no bounds found landing on rank " +
                             std::to_string(owner));
  }

 private:
  struct Rank {
    /// First member: destroyed last, after every component holding a
    /// pointer into it.
    std::unique_ptr<obs::Telemetry> telemetry;
    std::unique_ptr<SolveService> service;
    std::unique_ptr<ThreadPool> server_pool;
    std::unique_ptr<net::FrameServer> server;
    std::unique_ptr<ShardRouter> router;
    std::atomic<ShardRouter*> router_ptr{nullptr};
    FaultInjector faults;
    std::uint16_t port = 0;
  };

  /// Builds one fully-wired elastic rank (telemetry, service, server on
  /// an ephemeral port, router) at index ranks_.size(); with a seed it
  /// joins synchronously inside the router constructor.
  std::size_t spawn_elastic_rank(std::optional<PeerAddress> seed) {
    const std::size_t r = ranks_.size();
    auto rank = std::make_unique<Rank>();
    rank->telemetry = std::make_unique<obs::Telemetry>();
    rank->telemetry->rank = static_cast<int>(r);
    ServiceConfig service_config = options_.service;
    service_config.telemetry = rank->telemetry.get();
    rank->service = std::make_unique<SolveService>(service_config);
    rank->server_pool = std::make_unique<ThreadPool>(server_threads_);
    start_server(*rank, /*port=*/0);
    rank->port = rank->server->port();
    RouterConfig config = options_.router;
    config.world_size = 1;
    config.rank = r;
    config.peers.clear();
    config.elastic = true;
    config.advertise = PeerAddress{"127.0.0.1", rank->port};
    config.join_seed = std::move(seed);
    config.telemetry = rank->telemetry.get();
    // Hold inbound frames while the router is being born: the seed
    // schedules its handoff stream the moment it admits the join (which
    // happens *inside* this router constructor), so the first
    // kHandoffBegin can beat the router_ptr publication. The pause gate
    // turns that race into a short wait.
    rank->faults.pause();
    rank->router = std::make_unique<ShardRouter>(*rank->service, config);
    rank->router_ptr.store(rank->router.get());
    rank->faults.resume();
    ranks_.push_back(std::move(rank));
    return r;
  }

  void start_server(Rank& rank, std::uint16_t port) {
    // The wrapper applies the rank's fault levers before the real
    // fabric handler sees the frame. Raw pointers are safe: the Rank
    // outlives its server, and router_ptr is cleared before teardown.
    Rank* node = &rank;
    net::FrameHandler fabric = make_fabric_handler(
        *rank.service, [node] { return node->router_ptr.load(); });
    net::FrameHandler wrapped =
        [node, fabric = std::move(fabric)](
            const net::Frame& frame) -> std::optional<net::Frame> {
      if (!node->faults.admit()) return std::nullopt;  // dropped
      return fabric(frame);
    };
    rank.server = net::FrameServer::start(
        port, std::move(wrapped), *rank.server_pool, net::kDefaultMaxPayload,
        &rank.telemetry->metrics, &rank.telemetry->watchdog,
        &rank.telemetry->profiler);
    if (!rank.server) {
      throw std::runtime_error("fabric harness: cannot bind port " +
                               std::to_string(port));
    }
  }

  Options options_;
  std::size_t server_threads_ = 0;
  std::vector<std::unique_ptr<Rank>> ranks_;
};

}  // namespace prts::service::testing
