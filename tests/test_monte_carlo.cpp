#include "sim/monte_carlo.hpp"

#include <gtest/gtest.h>

#include <array>
#include <cmath>

#include "eval/evaluation.hpp"
#include "rbd/chain_dp.hpp"
#include "test_util.hpp"

namespace prts::sim {
namespace {

TEST(MonteCarlo, PerfectComponentsAlwaysSucceed) {
  Rng rng(1);
  const TaskChain chain = testutil::small_chain(rng, 4);
  const Platform platform = testutil::small_hom_platform(5, 2, 0.0, 0.0);
  const Mapping mapping = testutil::random_mapping(rng, chain, platform);
  const auto result =
      estimate_reliability(chain, platform, mapping, 2000, 3, true, 2);
  EXPECT_EQ(result.successes, result.trials);
  EXPECT_DOUBLE_EQ(result.estimate, 1.0);
}

TEST(MonteCarlo, DeterministicForFixedSeed) {
  Rng rng(2);
  const TaskChain chain = testutil::small_chain(rng, 4);
  const Platform platform = testutil::small_hom_platform(5, 2, 0.05, 0.05);
  const Mapping mapping = testutil::random_mapping(rng, chain, platform);
  const auto a =
      estimate_reliability(chain, platform, mapping, 5000, 42, true, 2);
  const auto b =
      estimate_reliability(chain, platform, mapping, 5000, 42, true, 2);
  EXPECT_EQ(a.successes, b.successes);
}

class MonteCarloRouting : public ::testing::TestWithParam<int> {};

TEST_P(MonteCarloRouting, EstimateBracketsEquation9) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) + 40);
  const TaskChain chain = testutil::small_chain(rng, 4);
  const Platform platform = rng.bernoulli(0.5)
                                ? testutil::small_hom_platform(5, 2, 0.03,
                                                               0.05)
                                : testutil::small_het_platform(rng, 5, 2,
                                                               0.03, 0.05);
  const Mapping mapping = testutil::random_mapping(rng, chain, platform);
  const auto result = estimate_reliability(chain, platform, mapping, 20000,
                                           99 + GetParam(), true, 2);
  // Wide z so the suite is not flaky: ~4.4 sigma.
  const auto ci = wilson_interval(result.successes, result.trials, 4.4);
  const double analytic =
      mapping_reliability(chain, platform, mapping).reliability();
  EXPECT_TRUE(ci.contains(analytic))
      << analytic << " not in [" << ci.lo << "," << ci.hi << "]";
}

INSTANTIATE_TEST_SUITE_P(Seeds, MonteCarloRouting, ::testing::Range(0, 10));

class MonteCarloNoRouting : public ::testing::TestWithParam<int> {};

TEST_P(MonteCarloNoRouting, EstimateBracketsSubsetDp) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) + 70);
  const TaskChain chain = testutil::small_chain(rng, 4);
  const Platform platform = testutil::small_het_platform(rng, 5, 2, 0.04,
                                                         0.06);
  const Mapping mapping = testutil::random_mapping(rng, chain, platform);
  const auto result = estimate_reliability(chain, platform, mapping, 20000,
                                           7 + GetParam(), false, 2);
  const auto ci = wilson_interval(result.successes, result.trials, 4.4);
  const double analytic =
      rbd::no_routing_reliability(chain, platform, mapping).reliability();
  EXPECT_TRUE(ci.contains(analytic))
      << analytic << " not in [" << ci.lo << "," << ci.hi << "]";
}

INSTANTIATE_TEST_SUITE_P(Seeds, MonteCarloNoRouting,
                         ::testing::Range(0, 10));

TEST(MonteCarlo, CiNarrowsWithTrials) {
  Rng rng(3);
  const TaskChain chain = testutil::small_chain(rng, 4);
  const Platform platform = testutil::small_hom_platform(5, 2, 0.05, 0.05);
  const Mapping mapping = testutil::random_mapping(rng, chain, platform);
  const auto small =
      estimate_reliability(chain, platform, mapping, 500, 5, true, 2);
  const auto large =
      estimate_reliability(chain, platform, mapping, 50000, 5, true, 2);
  EXPECT_LT(large.ci95.width(), small.ci95.width());
}

TEST(SampleIntervalCompletion, DeterministicWithoutFailures) {
  const Platform platform = Platform::homogeneous(3, 2.0, 0.0, 1.0, 0.0, 3);
  Rng rng(4);
  const std::array<std::size_t, 2> procs{0, 2};
  const auto sample = sample_interval_completion(rng, platform, 10.0, procs);
  ASSERT_TRUE(sample.has_value());
  EXPECT_DOUBLE_EQ(*sample, 5.0);
}

TEST(SampleIntervalCompletion, AveragesToEquation3) {
  // Heterogeneous replicas with visible failure probabilities.
  const Platform platform({{2.0, 0.05}, {1.0, 0.02}}, 1.0, 0.0, 2);
  const std::array<std::size_t, 2> procs{0, 1};
  const double work = 10.0;
  Rng rng(5);
  RunningStats stats;
  for (int i = 0; i < 200000; ++i) {
    const auto sample =
        sample_interval_completion(rng, platform, work, procs);
    if (sample) stats.add(*sample);
  }
  const double analytic = expected_computation_time(platform, work, procs);
  const auto ci = mean_interval(stats, 4.0);
  EXPECT_TRUE(ci.contains(analytic))
      << analytic << " not in [" << ci.lo << "," << ci.hi << "]";
}

TEST(SampleIntervalCompletion, AllFailGivesNullopt) {
  const Platform platform({{1.0, 1e6}}, 1.0, 0.0, 1);
  Rng rng(6);
  const std::array<std::size_t, 1> procs{0};
  int successes = 0;
  for (int i = 0; i < 100; ++i) {
    if (sample_interval_completion(rng, platform, 10.0, procs)) ++successes;
  }
  EXPECT_EQ(successes, 0);
}

TEST(MonteCarlo, ZeroTrials) {
  Rng rng(7);
  const TaskChain chain = testutil::small_chain(rng, 3);
  const Platform platform = testutil::small_hom_platform(3, 1);
  const Mapping mapping = testutil::random_mapping(rng, chain, platform);
  const auto result =
      estimate_reliability(chain, platform, mapping, 0, 1, true, 2);
  EXPECT_EQ(result.trials, 0u);
  EXPECT_DOUBLE_EQ(result.estimate, 0.0);
}

}  // namespace
}  // namespace prts::sim
