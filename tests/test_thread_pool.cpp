#include "common/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace prts {
namespace {

TEST(ThreadPool, ReportsThreadCount) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.thread_count(), 3u);
}

TEST(ThreadPool, DefaultUsesHardwareConcurrency) {
  ThreadPool pool;
  EXPECT_GE(pool.thread_count(), 1u);
}

TEST(ThreadPool, SubmitRunsTask) {
  ThreadPool pool(2);
  std::atomic<int> value{0};
  pool.submit([&] { value = 42; }).get();
  EXPECT_EQ(value.load(), 42);
}

TEST(ThreadPool, SubmitPropagatesException) {
  ThreadPool pool(1);
  auto future = pool.submit([] { throw std::runtime_error("boom"); });
  EXPECT_THROW(future.get(), std::runtime_error);
}

TEST(ThreadPool, ParallelForCoversEveryIndexOnce) {
  ThreadPool pool(4);
  const std::size_t count = 10000;
  std::vector<std::atomic<int>> hits(count);
  pool.parallel_for(count, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (std::size_t i = 0; i < count; ++i) {
    ASSERT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPool, ParallelForZeroCount) {
  ThreadPool pool(2);
  bool called = false;
  pool.parallel_for(0, [&](std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ThreadPool, ParallelForSumsCorrectly) {
  ThreadPool pool(4);
  std::atomic<long long> sum{0};
  const std::size_t count = 5000;
  pool.parallel_for(count, [&](std::size_t i) {
    sum.fetch_add(static_cast<long long>(i));
  });
  EXPECT_EQ(sum.load(),
            static_cast<long long>(count) * (count - 1) / 2);
}

TEST(ThreadPool, ParallelForPropagatesFirstException) {
  ThreadPool pool(2);
  EXPECT_THROW(pool.parallel_for(100,
                                 [&](std::size_t i) {
                                   if (i == 37) {
                                     throw std::runtime_error("fail at 37");
                                   }
                                 }),
               std::runtime_error);
}

TEST(ThreadPool, ParallelForReusableAfterException) {
  ThreadPool pool(2);
  EXPECT_THROW(
      pool.parallel_for(10, [](std::size_t) { throw std::logic_error(""); }),
      std::logic_error);
  std::atomic<int> ok{0};
  pool.parallel_for(10, [&](std::size_t) { ok.fetch_add(1); });
  EXPECT_EQ(ok.load(), 10);
}

TEST(ThreadPool, ManySmallBatches) {
  ThreadPool pool(3);
  for (int round = 0; round < 50; ++round) {
    std::atomic<int> count{0};
    pool.parallel_for(7, [&](std::size_t) { count.fetch_add(1); });
    ASSERT_EQ(count.load(), 7);
  }
}

TEST(ThreadPool, ShutdownDrainsQueuedTasksAndIsIdempotent) {
  ThreadPool pool(2);
  std::atomic<int> ran{0};
  std::future<void> future = pool.submit([&] { ran.fetch_add(1); });
  pool.shutdown();
  future.get();  // ran before the workers joined
  EXPECT_EQ(ran.load(), 1);
  pool.shutdown();  // second call is a no-op
  EXPECT_EQ(pool.thread_count(), 0u);
}

TEST(ThreadPool, SubmitAfterShutdownReturnsExceptionalFuture) {
  ThreadPool pool(2);
  pool.shutdown();
  bool task_ran = false;
  std::future<void> future = pool.submit([&] { task_ran = true; });
  EXPECT_THROW(future.get(), std::runtime_error);
  EXPECT_FALSE(task_ran);
}

TEST(ThreadPool, ParallelForAfterShutdownThrows) {
  ThreadPool pool(2);
  pool.shutdown();
  EXPECT_THROW(pool.parallel_for(4, [](std::size_t) {}),
               std::runtime_error);
}

TEST(ParallelForEachIndex, Works) {
  std::vector<std::atomic<int>> hits(100);
  parallel_for_each_index(100, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (auto& hit : hits) EXPECT_EQ(hit.load(), 1);
}

}  // namespace
}  // namespace prts
