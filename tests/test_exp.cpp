#include "exp/figures.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "exp/report.hpp"

namespace prts::exp {
namespace {

ExperimentConfig tiny_config() {
  ExperimentConfig config;
  config.instances = 8;
  config.seed = 7;
  config.threads = 2;
  return config;
}

TEST(ExpRunner, SweepRange) {
  const auto values = sweep_range(10.0, 50.0, 10.0);
  ASSERT_EQ(values.size(), 5u);
  EXPECT_DOUBLE_EQ(values.front(), 10.0);
  EXPECT_DOUBLE_EQ(values.back(), 50.0);
}

TEST(ExpRunner, HomExperimentShapes) {
  const auto figure = run_fig_6_7(tiny_config(), 100.0);
  ASSERT_EQ(figure.series.size(), 3u);
  EXPECT_EQ(figure.series[0].name, "ILP");
  EXPECT_EQ(figure.series[1].name, "Heur-L");
  EXPECT_EQ(figure.series[2].name, "Heur-P");
  for (const auto& series : figure.series) {
    ASSERT_EQ(series.solutions.size(), figure.x.size());
    ASSERT_EQ(series.avg_failure.size(), figure.x.size());
    for (std::size_t solved : series.solutions) {
      EXPECT_LE(solved, tiny_config().instances);
    }
  }
}

TEST(ExpRunner, IlpDominatesHeuristicCounts) {
  // The exact solver finds a solution whenever any heuristic does.
  const auto figure = run_fig_6_7(tiny_config(), 50.0);
  for (std::size_t i = 0; i < figure.x.size(); ++i) {
    EXPECT_GE(figure.series[0].solutions[i], figure.series[1].solutions[i]);
    EXPECT_GE(figure.series[0].solutions[i], figure.series[2].solutions[i]);
  }
}

TEST(ExpRunner, IlpSolutionsMonotoneInPeriodBound) {
  // For a fixed latency bound, relaxing the period bound can only help
  // the exact solver.
  const auto figure = run_fig_6_7(tiny_config(), 50.0);
  for (std::size_t i = 1; i < figure.x.size(); ++i) {
    EXPECT_GE(figure.series[0].solutions[i],
              figure.series[0].solutions[i - 1]);
  }
}

TEST(ExpRunner, DeterministicAcrossRuns) {
  const auto a = run_fig_6_7(tiny_config(), 100.0);
  const auto b = run_fig_6_7(tiny_config(), 100.0);
  for (std::size_t s = 0; s < a.series.size(); ++s) {
    EXPECT_EQ(a.series[s].solutions, b.series[s].solutions);
  }
}

TEST(ExpRunner, HetExperimentShapes) {
  const auto figure = run_fig_12_13(tiny_config(), 50.0);
  ASSERT_EQ(figure.series.size(), 4u);
  EXPECT_EQ(figure.series[0].name, "Heur-L_HET");
  EXPECT_EQ(figure.series[3].name, "Heur-P_HOM");
  for (const auto& series : figure.series) {
    ASSERT_EQ(series.solutions.size(), figure.x.size());
  }
}

TEST(ExpRunner, HetFindsMoreThanHomOverall) {
  // Paper Section 8.2: heterogeneous platforms admit far more solutions
  // than the speed-5 homogeneous comparison (aggregate check).
  const auto figure = run_fig_12_13(tiny_config(), 25.0);
  std::size_t het_total = 0;
  std::size_t hom_total = 0;
  for (std::size_t i = 0; i < figure.x.size(); ++i) {
    het_total += figure.series[0].solutions[i] + figure.series[1].solutions[i];
    hom_total += figure.series[2].solutions[i] + figure.series[3].solutions[i];
  }
  EXPECT_GE(het_total, hom_total);
}

TEST(ExpRunner, FailureAveragesAreProbabilities) {
  const auto figure = run_fig_8_9(tiny_config(), 200.0);
  for (const auto& series : figure.series) {
    for (double failure : series.avg_failure) {
      if (std::isnan(failure)) continue;
      EXPECT_GE(failure, 0.0);
      EXPECT_LE(failure, 1.0);
    }
  }
}

TEST(Report, TableContainsSeriesNames) {
  const auto figure = run_fig_6_7(tiny_config(), 250.0);
  std::ostringstream table;
  print_table(table, figure, Metric::kSolutions);
  EXPECT_NE(table.str().find("ILP"), std::string::npos);
  EXPECT_NE(table.str().find("Heur-P"), std::string::npos);
  EXPECT_NE(table.str().find("period bound"), std::string::npos);
}

TEST(Report, CsvHasHeaderAndRows) {
  const auto figure = run_fig_6_7(tiny_config(), 250.0);
  std::ostringstream csv;
  print_csv(csv, figure);
  std::string line;
  std::istringstream in(csv.str());
  std::getline(in, line);
  EXPECT_NE(line.find("ILP_solutions"), std::string::npos);
  std::size_t rows = 0;
  while (std::getline(in, line)) ++rows;
  EXPECT_EQ(rows, figure.x.size());
}

TEST(Report, SummarizeMentionsEverySeries) {
  const auto figure = run_fig_6_7(tiny_config(), 250.0);
  const std::string summary = summarize(figure);
  EXPECT_NE(summary.find("ILP"), std::string::npos);
  EXPECT_NE(summary.find("Heur-L"), std::string::npos);
  EXPECT_NE(summary.find("Heur-P"), std::string::npos);
}

}  // namespace
}  // namespace prts::exp
