// Cross-module property tests: randomized invariants that tie the
// algorithms, the evaluator, the RBD library and the simulator together.
// Each property runs over a seed range via TEST_P.
#include <gtest/gtest.h>

#include <algorithm>
#include <limits>
#include <vector>

#include "core/exact.hpp"
#include "core/heuristics.hpp"
#include "core/period_dp.hpp"
#include "core/reliability_dp.hpp"
#include "eval/evaluation.hpp"
#include "rbd/chain_dp.hpp"
#include "test_util.hpp"

namespace prts {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

class PropertySeed : public ::testing::TestWithParam<int> {
 protected:
  Rng rng_{static_cast<std::uint64_t>(GetParam()) * 2654435761u + 17};
};

TEST_P(PropertySeed, Algorithm2MonotoneInPeriodBound) {
  const TaskChain chain = testutil::small_chain(rng_, 6);
  const Platform platform = testutil::small_hom_platform(5, 2);
  double previous = -kInf;
  for (double bound = 10.0; bound <= 100.0; bound += 7.0) {
    const auto solution =
        optimize_reliability_period(chain, platform, bound);
    if (!solution) {
      EXPECT_EQ(previous, -kInf);  // feasibility is monotone too
      continue;
    }
    EXPECT_GE(solution->reliability.log(), previous - 1e-12);
    previous = solution->reliability.log();
  }
}

TEST_P(PropertySeed, ExactSolverMonotoneInBothBounds) {
  const TaskChain chain = testutil::small_chain(rng_, 6);
  const Platform platform = testutil::small_hom_platform(5, 2);
  const HomogeneousExactSolver solver(chain, platform);
  const double period = rng_.uniform_real(10.0, 60.0);
  const double latency = rng_.uniform_real(20.0, 100.0);
  const auto base = solver.best_log_reliability(period, latency);
  const auto looser_p = solver.best_log_reliability(period * 1.5, latency);
  const auto looser_l = solver.best_log_reliability(period, latency * 1.5);
  if (base) {
    ASSERT_TRUE(looser_p.has_value());
    ASSERT_TRUE(looser_l.has_value());
    EXPECT_GE(*looser_p, *base - 1e-12);
    EXPECT_GE(*looser_l, *base - 1e-12);
  }
}

TEST_P(PropertySeed, DirectLinksNeverLessReliableThanRouting) {
  // Empirical but extensively verified invariant (also 500-seed checked
  // against the exact evaluators during development): the no-routing
  // scheme crosses each boundary over one link instead of two and has
  // richer replica-to-replica connectivity, so its failure probability
  // is at most the routing scheme's (Eq. (9)).
  const TaskChain chain = testutil::small_chain(rng_, 5);
  const Platform platform =
      rng_.bernoulli(0.5)
          ? testutil::small_het_platform(rng_, 6, 3, 0.02, 0.05)
          : testutil::small_hom_platform(6, 3, 0.02, 0.05);
  const Mapping mapping = testutil::random_mapping(rng_, chain, platform);
  const double routing =
      mapping_reliability(chain, platform, mapping).failure();
  const double direct =
      rbd::no_routing_reliability(chain, platform, mapping).failure();
  EXPECT_LE(direct, routing + 1e-12);
}

TEST_P(PropertySeed, SchemesCoincideWithoutCommunications) {
  // With a single interval there is no inter-replica traffic, so routing
  // and direct evaluation agree exactly.
  const TaskChain chain = testutil::small_chain(rng_, 4);
  const Platform platform = testutil::small_het_platform(rng_, 5, 3, 0.03);
  std::vector<std::size_t> procs;
  const auto k = static_cast<std::size_t>(rng_.uniform_int(1, 3));
  for (std::size_t u = 0; u < k; ++u) procs.push_back(u);
  const Mapping mapping(IntervalPartition::single(4), {procs});
  EXPECT_NEAR(mapping_reliability(chain, platform, mapping).log(),
              rbd::no_routing_reliability(chain, platform, mapping).log(),
              1e-12);
}

TEST_P(PropertySeed, ProcessorIdsIrrelevantOnHomogeneousPlatforms) {
  const TaskChain chain = testutil::small_chain(rng_, 5);
  const Platform platform = testutil::small_hom_platform(6, 3);
  const Mapping mapping = testutil::random_mapping(rng_, chain, platform);
  // Rebuild with a rotated processor assignment of identical shape.
  std::vector<std::vector<std::size_t>> rotated;
  for (std::size_t j = 0; j < mapping.interval_count(); ++j) {
    std::vector<std::size_t> procs(mapping.processors(j).begin(),
                                   mapping.processors(j).end());
    for (std::size_t& u : procs) u = (u + 1) % platform.processor_count();
    rotated.push_back(std::move(procs));
  }
  // The rotation may collide across intervals; skip those cases.
  std::vector<bool> seen(platform.processor_count(), false);
  for (const auto& procs : rotated) {
    for (std::size_t u : procs) {
      if (seen[u]) GTEST_SKIP() << "rotation collided";
      seen[u] = true;
    }
  }
  const Mapping relabeled(mapping.partition(), rotated);
  const MappingMetrics a = evaluate(chain, platform, mapping);
  const MappingMetrics b = evaluate(chain, platform, relabeled);
  EXPECT_NEAR(a.reliability.log(), b.reliability.log(), 1e-12);
  EXPECT_NEAR(a.worst_latency, b.worst_latency, 1e-12);
  EXPECT_NEAR(a.worst_period, b.worst_period, 1e-12);
}

TEST_P(PropertySeed, AddingFastestReplicaReducesExpectedTime) {
  // Eq. (3): joining a strictly fastest processor to the replica set can
  // only lower the expected completion time.
  Platform platform = testutil::small_het_platform(rng_, 5, 3, 0.05);
  // Find the strictly fastest processor; skip ties for a clean property.
  std::size_t fastest = 0;
  for (std::size_t u = 1; u < 5; ++u) {
    if (platform.speed(u) > platform.speed(fastest)) fastest = u;
  }
  std::vector<std::size_t> others;
  for (std::size_t u = 0; u < 5; ++u) {
    if (u == fastest) continue;
    if (platform.speed(u) == platform.speed(fastest)) {
      GTEST_SKIP() << "speed tie";
    }
    others.push_back(u);
  }
  const double work = rng_.uniform_real(5.0, 60.0);
  std::vector<std::size_t> with_fastest = others;
  with_fastest.push_back(fastest);
  EXPECT_LE(expected_computation_time(platform, work, with_fastest),
            expected_computation_time(platform, work, others) + 1e-9);
}

TEST_P(PropertySeed, HeuristicSolutionsAreValidMappings) {
  const TaskChain chain = testutil::small_chain(rng_, 7);
  const Platform platform = testutil::small_het_platform(rng_, 6, 2);
  HeuristicOptions options;
  options.period_bound = rng_.uniform_real(5.0, 50.0);
  options.latency_bound = rng_.uniform_real(20.0, 150.0);
  for (HeuristicKind kind : {HeuristicKind::kHeurL, HeuristicKind::kHeurP}) {
    const auto solution = run_heuristic(chain, platform, kind, options);
    if (!solution) continue;
    EXPECT_FALSE(solution->mapping.validate(platform).has_value());
    const MappingMetrics check =
        evaluate(chain, platform, solution->mapping);
    EXPECT_NEAR(check.reliability.log(),
                solution->metrics.reliability.log(), 1e-12);
  }
}

TEST_P(PropertySeed, RunHeuristicMonotoneOnHomogeneousPlatforms) {
  // On homogeneous platforms the candidate set is bound-independent, so
  // relaxing either bound can only improve the best feasible candidate.
  const TaskChain chain = testutil::small_chain(rng_, 6);
  const Platform platform = testutil::small_hom_platform(6, 2);
  HeuristicOptions tight;
  tight.period_bound = rng_.uniform_real(10.0, 40.0);
  tight.latency_bound = rng_.uniform_real(30.0, 90.0);
  HeuristicOptions loose = tight;
  loose.period_bound *= 1.7;
  loose.latency_bound *= 1.7;
  for (HeuristicKind kind : {HeuristicKind::kHeurL, HeuristicKind::kHeurP}) {
    const auto tight_solution = run_heuristic(chain, platform, kind, tight);
    const auto loose_solution = run_heuristic(chain, platform, kind, loose);
    if (tight_solution) {
      ASSERT_TRUE(loose_solution.has_value());
      EXPECT_GE(loose_solution->metrics.reliability.log(),
                tight_solution->metrics.reliability.log() - 1e-12);
    }
  }
}

TEST_P(PropertySeed, MergingIntervalsTradesCommForReplicas) {
  // Splitting one interval into two (same processors split among them)
  // adds a communication; with zero link failure the finer mapping is at
  // most as reliable when the replica sets shrink.
  const TaskChain chain = testutil::small_chain(rng_, 4);
  const Platform platform = testutil::small_hom_platform(4, 2, 0.01, 0.0);
  const Mapping merged(IntervalPartition::single(4), {{0, 1}});
  const std::array<std::size_t, 2> lasts{1, 3};
  const Mapping split(IntervalPartition::from_boundaries(lasts, 4),
                      {{0}, {1}});
  // Each stage now has 1 replica instead of a duplicated whole: the
  // merged mapping is strictly more reliable (same total work, more
  // redundancy, no comm reliability at stake since lambda_l = 0).
  EXPECT_GT(mapping_reliability(chain, platform, merged).log(),
            mapping_reliability(chain, platform, split).log());
}

TEST_P(PropertySeed, ReliabilityDpBeatsEveryRandomMapping) {
  const TaskChain chain = testutil::small_chain(rng_, 6);
  const Platform platform = testutil::small_hom_platform(6, 2);
  const auto optimal = optimize_reliability(chain, platform);
  for (int trial = 0; trial < 10; ++trial) {
    const Mapping mapping = testutil::random_mapping(rng_, chain, platform);
    EXPECT_GE(optimal.reliability.log(),
              mapping_reliability(chain, platform, mapping).log() - 1e-12);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PropertySeed, ::testing::Range(0, 25));

}  // namespace
}  // namespace prts
