#include "common/prob.hpp"

#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <limits>

namespace prts {
namespace {

TEST(LogReliability, DefaultIsCertain) {
  const LogReliability r;
  EXPECT_DOUBLE_EQ(r.log(), 0.0);
  EXPECT_DOUBLE_EQ(r.reliability(), 1.0);
  EXPECT_DOUBLE_EQ(r.failure(), 0.0);
}

TEST(LogReliability, ExpFailureIsExactInLogSpace) {
  const auto r = LogReliability::exp_failure(1e-8, 100.0);
  EXPECT_DOUBLE_EQ(r.log(), -1e-6);
  EXPECT_NEAR(r.failure(), 1e-6, 1e-12);
}

TEST(LogReliability, TinyFailuresSurvive) {
  // 1 - e^(-1e-18) is far below double epsilon around 1.0, yet the failure
  // probability must come back as ~1e-18, not 0.
  const auto r = LogReliability::exp_failure(1e-9, 1e-9);
  EXPECT_GT(r.failure(), 0.9e-18);
  EXPECT_LT(r.failure(), 1.1e-18);
}

TEST(LogReliability, FromReliabilityRoundTrip) {
  const auto r = LogReliability::from_reliability(0.25);
  EXPECT_NEAR(r.reliability(), 0.25, 1e-15);
  EXPECT_NEAR(r.failure(), 0.75, 1e-15);
}

TEST(LogReliability, FromFailureRoundTrip) {
  const auto r = LogReliability::from_failure(1e-9);
  EXPECT_NEAR(r.failure(), 1e-9, 1e-21);
}

TEST(LogReliability, ClampsOutOfRange) {
  EXPECT_DOUBLE_EQ(LogReliability::from_reliability(1.5).reliability(), 1.0);
  EXPECT_DOUBLE_EQ(LogReliability::from_failure(-0.5).failure(), 0.0);
  EXPECT_DOUBLE_EQ(LogReliability::from_failure(2.0).reliability(), 0.0);
  EXPECT_DOUBLE_EQ(LogReliability::from_log(0.5).log(), 0.0);
}

TEST(LogReliability, SeriesMultiplication) {
  const auto a = LogReliability::exp_failure(1e-6, 50.0);
  const auto b = LogReliability::exp_failure(2e-6, 25.0);
  const auto c = a * b;
  EXPECT_DOUBLE_EQ(c.log(), -(1e-6 * 50.0 + 2e-6 * 25.0));
}

TEST(LogReliability, OrderingByReliability) {
  const auto high = LogReliability::from_failure(1e-9);
  const auto low = LogReliability::from_failure(1e-3);
  EXPECT_GT(high, low);
  EXPECT_EQ(high, high);
}

TEST(LogReliability, ZeroReliability) {
  const auto r = LogReliability::from_reliability(0.0);
  EXPECT_DOUBLE_EQ(r.failure(), 1.0);
  EXPECT_DOUBLE_EQ(r.reliability(), 0.0);
}

TEST(FailureFromRate, MatchesExpm1) {
  EXPECT_DOUBLE_EQ(failure_from_rate(0.01, 3.0), -std::expm1(-0.03));
  EXPECT_DOUBLE_EQ(failure_from_rate(0.0, 100.0), 0.0);
}

TEST(FailureFromRate, SmallRatePrecision) {
  // Naive 1 - exp(-x) at x = 1e-12 loses ~4 digits; expm1 keeps them.
  const double f = failure_from_rate(1e-12, 1.0);
  EXPECT_NEAR(f / 1e-12, 1.0, 1e-9);
}

TEST(ParallelFromFailures, SingleBranch) {
  const std::array<double, 1> fs{0.125};
  EXPECT_NEAR(parallel_from_failures(fs).failure(), 0.125, 1e-15);
}

TEST(ParallelFromFailures, TwoBranches) {
  const std::array<double, 2> fs{0.1, 0.2};
  EXPECT_NEAR(parallel_from_failures(fs).failure(), 0.02, 1e-15);
}

TEST(ParallelFromFailures, EmptyAlwaysFails) {
  EXPECT_DOUBLE_EQ(parallel_from_failures({}).failure(), 1.0);
}

TEST(ParallelFromFailures, TinyBranchesKeepPrecision) {
  const std::array<double, 3> fs{1e-7, 1e-7, 1e-7};
  EXPECT_NEAR(parallel_from_failures(fs).failure() / 1e-21, 1.0, 1e-9);
}

TEST(ParallelIdentical, MatchesPow) {
  const auto r = parallel_identical(0.1, 3);
  EXPECT_NEAR(r.failure(), 1e-3, 1e-15);
}

TEST(ParallelIdentical, ZeroReplicasAlwaysFails) {
  EXPECT_DOUBLE_EQ(parallel_identical(0.5, 0).failure(), 1.0);
}

TEST(ParallelIdentical, MoreReplicasMoreReliable) {
  for (unsigned k = 1; k < 6; ++k) {
    EXPECT_GT(parallel_identical(0.3, k + 1), parallel_identical(0.3, k));
  }
}

TEST(Series, ComposesParts) {
  const std::array<LogReliability, 3> parts{
      LogReliability::exp_failure(1e-3, 1.0),
      LogReliability::exp_failure(1e-3, 2.0),
      LogReliability::exp_failure(1e-3, 3.0)};
  EXPECT_DOUBLE_EQ(series(parts).log(), -6e-3);
}

TEST(Series, EmptyIsCertain) {
  EXPECT_DOUBLE_EQ(series({}).log(), 0.0);
}

}  // namespace
}  // namespace prts
