// Tests of the NP-hardness reduction constructions: the forward direction
// of each proof, checked end-to-end with the library's own evaluator and
// exhaustive search as the optimality oracle.
#include "core/reductions.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "core/exact.hpp"
#include "eval/evaluation.hpp"

namespace prts::reductions {
namespace {

TEST(TwoPartitionReduction, InstanceShape) {
  const std::vector<double> values{3.0, 1.0, 2.0, 2.0};
  const auto reduction = build_two_partition_reduction(values, 1e-7);
  EXPECT_EQ(reduction.chain.size(), 3 * values.size() + 1);
  EXPECT_EQ(reduction.platform.processor_count(), 6 * values.size());
  EXPECT_EQ(reduction.platform.max_replication(), 2u);
  EXPECT_DOUBLE_EQ(reduction.half_sum, 4.0);
  // Separator dominates every a_i (it is the proof's "B" big block).
  EXPECT_GT(reduction.separator_work, 3.0);
}

TEST(TwoPartitionReduction, YesInstanceMeetsLatencyBound) {
  // {3,1,2,2}: A' = {3,1} vs {2,2} is an equal split.
  const std::vector<double> values{3.0, 1.0, 2.0, 2.0};
  const auto reduction = build_two_partition_reduction(values, 1e-7);
  const std::vector<bool> in_subset{true, true, false, false};
  const Mapping mapping = two_partition_mapping(reduction, in_subset);
  ASSERT_FALSE(mapping.validate(reduction.platform).has_value());
  const MappingMetrics metrics =
      evaluate(reduction.chain, reduction.platform, mapping);
  // The proof: latency = (n+1)B + n/2 + 2T + sum_{A'} a_i = bound exactly.
  EXPECT_NEAR(metrics.worst_latency, reduction.latency_bound, 1e-9);
}

TEST(TwoPartitionReduction, UnbalancedSubsetViolatesLatency) {
  const std::vector<double> values{3.0, 1.0, 2.0, 2.0};
  const auto reduction = build_two_partition_reduction(values, 1e-7);
  // Put too much communication weight in A': latency exceeds the bound.
  const std::vector<bool> heavy{true, true, true, false};
  const Mapping mapping = two_partition_mapping(reduction, heavy);
  const MappingMetrics metrics =
      evaluate(reduction.chain, reduction.platform, mapping);
  EXPECT_GT(metrics.worst_latency, reduction.latency_bound + 0.5);
}

TEST(TwoPartitionReduction, BalancedSplitIsReliabilityOptimalAtBound) {
  // Exhaustive check of the proof's optimality claim on a small instance:
  // among all mappings within the latency bound, one derived from a
  // balanced split achieves the best reliability.
  const std::vector<double> values{2.0, 1.0, 1.0};  // {2} vs {1,1}
  const auto reduction = build_two_partition_reduction(values, 1e-6);
  const HomogeneousExactSolver solver(reduction.chain, reduction.platform);
  const auto best = solver.best_log_reliability(
      std::numeric_limits<double>::infinity(), reduction.latency_bound);
  ASSERT_TRUE(best.has_value());
  const std::vector<bool> in_subset{true, false, false};
  const Mapping mapping = two_partition_mapping(reduction, in_subset);
  const MappingMetrics metrics =
      evaluate(reduction.chain, reduction.platform, mapping);
  EXPECT_LE(metrics.worst_latency, reduction.latency_bound + 1e-9);
  // The proof's canonical mapping is optimal (up to tie).
  EXPECT_NEAR(metrics.reliability.log(), *best, 1e-12);
}

TEST(TwoPartitionReduction, RejectsEmptyInput) {
  EXPECT_THROW(build_two_partition_reduction({}, 1e-7),
               std::invalid_argument);
}

TEST(ThreePartitionReduction, InstanceShape) {
  const std::vector<double> values{1, 2, 3, 1, 2, 3};  // n = 2, T = 6
  const auto reduction = build_three_partition_reduction(values, 6.0, 1e-6);
  EXPECT_EQ(reduction.chain.size(), 2u);
  EXPECT_EQ(reduction.platform.processor_count(), 6u);
  EXPECT_EQ(reduction.platform.max_replication(), 3u);
  EXPECT_FALSE(reduction.platform.is_homogeneous());
  EXPECT_NEAR(reduction.gamma, 1.1, 1e-12);
  // Failure rates grow as gamma^a.
  EXPECT_NEAR(reduction.platform.failure_rate(2),
              1e-6 * std::pow(1.1, 3.0), 1e-18);
}

TEST(ThreePartitionReduction, RejectsNonTripleInput) {
  EXPECT_THROW(build_three_partition_reduction({1, 2}, 3.0, 1e-6),
               std::invalid_argument);
}

TEST(ThreePartitionReduction, BalancedGroupsAchieveClaimedReliability) {
  // {1,2,3,1,2,3} with T = 6: groups {a_0,a_1,a_2} and {a_3,a_4,a_5}.
  const std::vector<double> values{1, 2, 3, 1, 2, 3};
  const auto reduction = build_three_partition_reduction(values, 6.0, 1e-6);
  const Mapping mapping =
      three_partition_mapping(reduction, {{0, 1, 2}, {3, 4, 5}});
  ASSERT_FALSE(mapping.validate(reduction.platform).has_value());
  const LogReliability reliability = mapping_reliability(
      reduction.chain, reduction.platform, mapping);
  // Proof bound: r >= (1 - lambda^3 gamma^T)^n with unit task works...
  // our tasks have work 1/n, so each processor runs for 1/n time units:
  // per-group failure = prod (1 - e^{-lambda_u / n}) <= (lambda gamma^T/n)
  // ... verify against a direct computation instead of the loose bound.
  double expected_log = 0.0;
  for (const auto& group : {std::vector<std::size_t>{0, 1, 2},
                            std::vector<std::size_t>{3, 4, 5}}) {
    double group_failure = 1.0;
    for (std::size_t u : group) {
      group_failure *= failure_from_rate(
          reduction.platform.failure_rate(u), 0.5);
    }
    expected_log += std::log1p(-group_failure);
  }
  EXPECT_NEAR(reliability.log(), expected_log, 1e-15);
}

TEST(ThreePartitionReduction, BalancedBeatsUnbalancedGroups) {
  // The essence of the proof's converse: unbalanced processor groups give
  // strictly worse reliability, because the group failure product
  // prod gamma^{a_u} = gamma^{sum} is fixed but the convexity argument
  // penalizes unequal sums across groups.
  const std::vector<double> values{1, 2, 3, 1, 2, 3};
  const auto reduction = build_three_partition_reduction(values, 6.0, 1e-3);
  const Mapping balanced =
      three_partition_mapping(reduction, {{0, 1, 2}, {3, 4, 5}});
  // Unbalanced: {3,3,...} sums 1+1+2=4 vs 2+3+3=8.
  const Mapping unbalanced =
      three_partition_mapping(reduction, {{0, 3, 1}, {4, 2, 5}});
  const double balanced_log =
      mapping_reliability(reduction.chain, reduction.platform, balanced)
          .log();
  const double unbalanced_log =
      mapping_reliability(reduction.chain, reduction.platform, unbalanced)
          .log();
  EXPECT_GT(balanced_log, unbalanced_log);
}

TEST(ThreePartitionReduction, SingletonIntervalsAreOptimalShape) {
  // The proof shows the optimal mapping uses one task per interval, all
  // replicated 3 times. Verify no merged-interval mapping with the same
  // processors does better (merging forfeits processors).
  const std::vector<double> values{1, 2, 3, 1, 2, 3};
  const auto reduction = build_three_partition_reduction(values, 6.0, 1e-3);
  const Mapping split =
      three_partition_mapping(reduction, {{0, 1, 2}, {3, 4, 5}});
  const Mapping merged(IntervalPartition::single(2), {{0, 1, 2}});
  EXPECT_GT(
      mapping_reliability(reduction.chain, reduction.platform, split).log(),
      mapping_reliability(reduction.chain, reduction.platform, merged)
          .log());
}

}  // namespace
}  // namespace prts::reductions
