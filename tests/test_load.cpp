// The load subsystem: trace serialization round trips byte-for-byte,
// same-seed generation is deterministic, arrival processes hit their
// nominal rates, Zipf skew and solver mixes shape the draw, the SLO
// grammar parses (and rejects garbage), the open-loop runner classifies
// every outcome and never wedges on a stuck future, and the sustainable
// -rate search converges on the pass/fail boundary.
#include <gtest/gtest.h>

#include <cmath>
#include <future>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "load/arrivals.hpp"
#include "load/generator.hpp"
#include "load/slo.hpp"
#include "load/trace.hpp"
#include "model/generator.hpp"
#include "service/engine.hpp"

namespace prts::load {
namespace {

LoadTrace sample_trace() {
  LoadTrace trace;
  trace.meta["process"] = "poisson";
  trace.meta["rate"] = "250";
  ArrivalEvent a;
  a.time_seconds = 0.012345678901234567;
  a.instance = 3;
  a.solver = "portfolio";
  a.bounds.latency_bound = 1050.0;
  ArrivalEvent b;
  b.time_seconds = 1.5;
  b.instance = 0;
  b.solver = "exact";
  trace.events = {a, b};  // b keeps both bounds at +inf
  return trace;
}

TEST(LoadTrace, RoundTripIsByteIdentical) {
  const LoadTrace trace = sample_trace();
  const std::string once = trace_to_string(trace);
  LoadTrace reread;
  std::string error;
  ASSERT_TRUE(trace_from_string(once, reread, &error)) << error;
  EXPECT_EQ(trace_to_string(reread), once);

  ASSERT_EQ(reread.events.size(), 2u);
  EXPECT_EQ(reread.events[0].time_seconds, trace.events[0].time_seconds);
  EXPECT_EQ(reread.events[0].instance, 3u);
  EXPECT_EQ(reread.events[0].solver, "portfolio");
  EXPECT_EQ(reread.events[0].bounds.latency_bound, 1050.0);
  EXPECT_TRUE(std::isinf(reread.events[1].bounds.latency_bound));
  EXPECT_EQ(reread.meta, trace.meta);
}

TEST(LoadTrace, RejectsMalformedInput) {
  LoadTrace trace;
  std::string error;
  EXPECT_FALSE(trace_from_string("", trace, &error));
  EXPECT_FALSE(trace_from_string("not-a-trace v1\nend\n", trace, &error));
  // Truncated: promises two events, delivers one.
  const std::string truncated =
      "prts-load-trace v1\nevents 2\n0 0 exact inf inf\nend\n";
  EXPECT_FALSE(trace_from_string(truncated, trace, &error));
  EXPECT_FALSE(error.empty());
}

TEST(Arrivals, SameSeedSameTrace) {
  for (const Process process :
       {Process::kPoisson, Process::kBursty, Process::kUniform}) {
    ArrivalConfig config;
    config.process = process;
    config.rate = 300;
    config.duration_seconds = 2.0;
    config.seed = 77;
    const std::string a = trace_to_string(generate_arrivals(config));
    const std::string b = trace_to_string(generate_arrivals(config));
    EXPECT_EQ(a, b) << process_name(process);
    config.seed = 78;
    EXPECT_NE(trace_to_string(generate_arrivals(config)), a)
        << process_name(process);
  }
}

TEST(Arrivals, PoissonHitsNominalRate) {
  ArrivalConfig config;
  config.rate = 500;
  config.duration_seconds = 4.0;
  config.seed = 5;
  const LoadTrace trace = generate_arrivals(config);
  // Mean 2000, sigma ~45: a 10-sigma band will not flake.
  EXPECT_GT(trace.events.size(), 1550u);
  EXPECT_LT(trace.events.size(), 2450u);
  double previous = 0.0;
  for (const ArrivalEvent& event : trace.events) {
    EXPECT_GE(event.time_seconds, previous);
    EXPECT_LT(event.time_seconds, config.duration_seconds);
    previous = event.time_seconds;
  }
}

TEST(Arrivals, BurstyMatchesNominalRateLongRun) {
  ArrivalConfig config;
  config.process = Process::kBursty;
  config.rate = 400;
  config.duration_seconds = 30.0;  // many dwell cycles
  config.seed = 11;
  const LoadTrace trace = generate_arrivals(config);
  const double achieved =
      static_cast<double>(trace.events.size()) / config.duration_seconds;
  EXPECT_NEAR(achieved, config.rate, 0.15 * config.rate);
}

TEST(Arrivals, ZipfSkewsTowardLowKeys) {
  ArrivalConfig config;
  config.rate = 2000;
  config.duration_seconds = 4.0;
  config.key_count = 16;
  config.zipf_s = 1.2;
  config.seed = 9;
  const LoadTrace trace = generate_arrivals(config);
  std::vector<std::size_t> counts(config.key_count, 0);
  for (const ArrivalEvent& event : trace.events) {
    ASSERT_LT(event.instance, config.key_count);
    ++counts[event.instance];
  }
  // Rank 1 vs rank 16 under Zipf(1.2): expected ratio 16^1.2 ~ 28.
  EXPECT_GT(counts[0], 8 * std::max<std::size_t>(counts[15], 1));

  config.zipf_s = 0.0;  // degenerates to uniform
  const LoadTrace flat = generate_arrivals(config);
  std::vector<std::size_t> flat_counts(config.key_count, 0);
  for (const ArrivalEvent& event : flat.events) ++flat_counts[event.instance];
  const double mean = static_cast<double>(flat.events.size()) /
                      static_cast<double>(config.key_count);
  for (const std::size_t count : flat_counts) {
    EXPECT_NEAR(static_cast<double>(count), mean, 0.5 * mean);
  }
}

TEST(Arrivals, SolverMixWeightsRespected) {
  ArrivalConfig config;
  config.rate = 2000;
  config.duration_seconds = 2.0;
  config.solver_mix = {{"portfolio", 0.9}, {"exact", 0.1}};
  config.seed = 21;
  const LoadTrace trace = generate_arrivals(config);
  std::size_t portfolio = 0;
  std::size_t exact = 0;
  for (const ArrivalEvent& event : trace.events) {
    if (event.solver == "portfolio") ++portfolio;
    if (event.solver == "exact") ++exact;
  }
  EXPECT_EQ(portfolio + exact, trace.events.size());
  EXPECT_GT(exact, 0u);
  EXPECT_GT(portfolio, 4 * exact);
}

TEST(Arrivals, RejectsBadConfig) {
  ArrivalConfig config;
  config.rate = 0;
  EXPECT_THROW(generate_arrivals(config), std::invalid_argument);
  config = ArrivalConfig{};
  config.key_count = 0;
  EXPECT_THROW(generate_arrivals(config), std::invalid_argument);
  config = ArrivalConfig{};
  config.solver_mix.clear();
  EXPECT_THROW(generate_arrivals(config), std::invalid_argument);
}

TEST(Slo, ParsesGrammar) {
  SloSpec spec;
  std::string error;
  ASSERT_TRUE(parse_slo("p99<=50ms;error_rate<=0.01", spec, &error)) << error;
  ASSERT_EQ(spec.criteria.size(), 2u);
  EXPECT_EQ(spec.criteria[0].metric, "p99");
  EXPECT_DOUBLE_EQ(spec.criteria[0].bound, 0.05);
  EXPECT_EQ(spec.criteria[1].metric, "error_rate");
  EXPECT_DOUBLE_EQ(spec.criteria[1].bound, 0.01);

  ASSERT_TRUE(parse_slo(" mean<=250us ; p50<=2s ", spec, &error)) << error;
  EXPECT_DOUBLE_EQ(spec.criteria[0].bound, 250e-6);
  EXPECT_DOUBLE_EQ(spec.criteria[1].bound, 2.0);
}

TEST(Slo, RejectsGarbage) {
  SloSpec spec;
  EXPECT_FALSE(parse_slo("", spec));
  EXPECT_FALSE(parse_slo("p99<50ms", spec));
  EXPECT_FALSE(parse_slo("p42<=50ms", spec));
  EXPECT_FALSE(parse_slo("p99<=banana", spec));
  EXPECT_FALSE(parse_slo("p99<=-1ms", spec));
}

TEST(Slo, EvaluatesAgainstRunResult) {
  RunResult result;
  result.submitted = 100;
  result.answered = 98;
  result.errors = 2;
  result.latencies.assign(100, 0.004);
  SloSpec spec;
  ASSERT_TRUE(parse_slo("p99<=5ms;error_rate<=0.05", spec));
  EXPECT_TRUE(evaluate_slo(spec, result).pass);
  ASSERT_TRUE(parse_slo("p99<=1ms", spec));
  const SloReport report = evaluate_slo(spec, result);
  EXPECT_FALSE(report.pass);
  ASSERT_EQ(report.checks.size(), 1u);
  EXPECT_DOUBLE_EQ(report.checks[0].observed, 0.004);
}

std::vector<Instance> small_corpus(std::size_t n) {
  std::vector<Instance> instances;
  for (std::size_t k = 0; k < n; ++k) {
    Rng rng(4000 + k);
    ChainConfig chain_config;
    chain_config.task_count = 8;
    instances.push_back(Instance{
        random_chain(rng, chain_config),
        Platform::homogeneous(4, paper::kHomSpeed,
                              paper::kProcessorFailureRate, paper::kBandwidth,
                              paper::kLinkFailureRate,
                              paper::kMaxReplication)});
  }
  return instances;
}

TEST(OpenLoop, ClassifiesEveryOutcome) {
  // Synthetic submit: cycle through the full reply-status alphabet.
  ArrivalConfig config;
  config.rate = 2000;
  config.duration_seconds = 0.05;
  config.seed = 31;
  const LoadTrace trace = generate_arrivals(config);
  ASSERT_GT(trace.events.size(), 10u);

  std::size_t calls = 0;
  const SubmitFn submit = [&calls](service::SolveRequest) {
    std::promise<service::SolveReply> promise;
    service::SolveReply reply;
    switch (calls++ % 5) {
      case 0:
      case 1:
        reply.status = service::ReplyStatus::kSolved;
        break;
      case 2:
        reply.status = service::ReplyStatus::kInfeasible;
        break;
      case 3:
        reply.status = service::ReplyStatus::kRejectedQueue;
        break;
      default:
        reply.status = service::ReplyStatus::kError;
        break;
    }
    promise.set_value(std::move(reply));
    return promise.get_future();
  };

  const RunResult result =
      run_open_loop(trace, small_corpus(2), submit);
  EXPECT_EQ(result.submitted, trace.events.size());
  EXPECT_EQ(result.answered + result.rejected + result.errors,
            result.submitted);
  EXPECT_EQ(result.unresolved, 0u);
  EXPECT_EQ(result.latencies.size(), result.answered);
  // 3 of every 5 statuses are answers.
  EXPECT_NEAR(static_cast<double>(result.answered),
              0.6 * static_cast<double>(result.submitted), 3.0);
}

TEST(OpenLoop, StuckFutureBecomesUnresolvedNotHang) {
  ArrivalConfig config;
  config.rate = 300;
  config.duration_seconds = 0.05;
  config.seed = 32;
  const LoadTrace trace = generate_arrivals(config);
  ASSERT_GT(trace.events.size(), 1u);

  // First request never resolves; the rest answer immediately.
  std::vector<std::promise<service::SolveReply>> stuck;
  std::size_t calls = 0;
  const SubmitFn submit = [&](service::SolveRequest) {
    if (calls++ == 0) {
      stuck.emplace_back();
      return stuck.back().get_future();
    }
    std::promise<service::SolveReply> promise;
    service::SolveReply reply;
    reply.status = service::ReplyStatus::kSolved;
    promise.set_value(std::move(reply));
    return promise.get_future();
  };

  OpenLoopOptions options;
  options.drain_timeout_seconds = 0.2;
  const RunResult result =
      run_open_loop(trace, small_corpus(1), submit, options);
  EXPECT_EQ(result.unresolved, 1u);
  EXPECT_EQ(result.answered, result.submitted - 1);
  EXPECT_GT(result.error_rate(), 0.0);
}

TEST(OpenLoop, DrivesRealEngineToCompletion) {
  service::ServiceConfig service_config;
  service_config.threads = 2;
  service::SolveService engine(service_config);

  ArrivalConfig config;
  config.rate = 400;
  config.duration_seconds = 0.25;
  config.key_count = 4;
  config.seed = 33;
  const LoadTrace trace = generate_arrivals(config);
  ASSERT_GT(trace.events.size(), 20u);

  const std::vector<Instance> instances = small_corpus(4);
  const RunResult result = run_open_loop(
      trace, instances, [&engine](service::SolveRequest request) {
        return engine.submit(std::move(request));
      });
  EXPECT_EQ(result.submitted, trace.events.size());
  EXPECT_EQ(result.answered, result.submitted);
  EXPECT_EQ(result.unresolved, 0u);
  EXPECT_EQ(result.errors, 0u);
  EXPECT_GT(result.offered_rate, 0.0);
}

TEST(OpenLoop, TinyQueueRejectsWithoutBlockingArrivals) {
  // Admission control under a queue of 1: arrivals keep their schedule
  // (open loop) and the overflow comes back kRejectedQueue instead of
  // wedging a waiter. Every submission still resolves.
  service::ServiceConfig service_config;
  service_config.threads = 1;
  service_config.max_queue_depth = 1;
  service::SolveService engine(service_config);

  ArrivalConfig config;
  config.rate = 4000;
  config.duration_seconds = 0.25;
  config.key_count = 64;
  config.bounds_per_key = 8;  // mostly cache misses: real solver work
  config.solver_mix = {{"exact", 1.0}};
  config.seed = 34;
  const LoadTrace trace = generate_arrivals(config);

  const RunResult result = run_open_loop(
      trace, small_corpus(8), [&engine](service::SolveRequest request) {
        return engine.submit(std::move(request));
      });
  EXPECT_EQ(result.submitted, trace.events.size());
  EXPECT_EQ(result.answered + result.rejected + result.errors,
            result.submitted);
  EXPECT_EQ(result.unresolved, 0u);
  EXPECT_GT(result.rejected, 0u);
}

TEST(SloSearch, ConvergesOnPassFailBoundary) {
  // Synthetic fabric: p99 is 5ms up to 1000 rps, 20ms beyond — the SLO
  // boundary sits exactly at 1000.
  const auto run_at = [](double rate) {
    RunResult result;
    result.submitted = 100;
    result.answered = 100;
    result.latencies.assign(100, rate <= 1000.0 ? 0.005 : 0.020);
    return result;
  };
  SloSpec spec;
  ASSERT_TRUE(parse_slo("p99<=10ms", spec));
  SearchOptions options;
  options.min_rate = 100;
  options.max_rate = 3200;
  const SearchResult search = max_sustainable_rate(run_at, spec, options);
  // Ramp: 100 200 400 800 1600(fail); bisect: 1200(fail) 1000(pass)
  // 1100(fail) -> bracket (1000, 1100) is inside the 15% tolerance.
  EXPECT_DOUBLE_EQ(search.sustainable_rate, 1000.0);
  EXPECT_LE(search.steps.size(), options.max_steps);
  EXPECT_FALSE(search.steps.empty());
  for (const StepOutcome& step : search.steps) {
    EXPECT_EQ(step.pass, step.rate <= 1000.0);
  }
}

TEST(SloSearch, ZeroWhenEvenMinRateFails) {
  const auto run_at = [](double) {
    RunResult result;
    result.submitted = 10;
    result.answered = 10;
    result.latencies.assign(10, 1.0);
    return result;
  };
  SloSpec spec;
  ASSERT_TRUE(parse_slo("p99<=10ms", spec));
  const SearchResult search = max_sustainable_rate(run_at, spec, {});
  EXPECT_DOUBLE_EQ(search.sustainable_rate, 0.0);
  EXPECT_EQ(search.steps.size(), 1u);
}

}  // namespace
}  // namespace prts::load
