// Soak: a 3-rank fabric under ~11 seconds of open-loop load with a
// chaos thread continuously injecting faults (frame drops, pause/resume
// freezes, rank kill + revive). The acceptance bar is the ISSUE's: zero
// stuck waiters (every future resolves), every request answered or
// explicitly rejected (no kError leaks from failover), zero watchdog
// stall episodes on any rank, and the flight recorder's window is
// non-empty and spans the fault period — the run is reconstructable
// after the fact.
#include "fabric_harness.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <random>
#include <sstream>
#include <thread>
#include <vector>

#include "load/arrivals.hpp"
#include "load/generator.hpp"
#include "model/generator.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/profiler.hpp"
#include "obs/watchdog.hpp"
#include "service/protocol.hpp"

namespace prts::service {
namespace {

using testing::FabricHarness;

constexpr double kSoakSeconds = 11.0;

TEST(FabricSoak, OpenLoopSurvivesContinuousFaultInjection) {
  FabricHarness::Options options;
  options.world = 3;
  options.service.threads = 2;
  options.router.client.connect_timeout_seconds = 1.0;
  options.router.client.reply_timeout_seconds = 5.0;
  options.router.client.backoff_initial_seconds = 0.05;
  FabricHarness fabric(options);

  // Watchdogs armed on every rank, flight recorder ticking on rank 0.
  obs::WatchdogConfig watchdog_config;  // 2s stall threshold
  for (std::size_t r = 0; r < fabric.world(); ++r) {
    fabric.telemetry(r).watchdog.start(watchdog_config);
  }
  obs::FlightRecorderConfig recorder_config;
  recorder_config.interval_seconds = 0.25;
  fabric.telemetry(0).recorder.configure(recorder_config);
  fabric.telemetry(0).recorder.start();

  std::vector<Instance> instances;
  for (std::size_t k = 0; k < 8; ++k) {
    Rng rng(6000 + k);
    ChainConfig chain_config;
    chain_config.task_count = 8;
    instances.push_back(Instance{
        random_chain(rng, chain_config),
        Platform::homogeneous(4, paper::kHomSpeed,
                              paper::kProcessorFailureRate, paper::kBandwidth,
                              paper::kLinkFailureRate,
                              paper::kMaxReplication)});
  }

  // Chaos: one thread, seeded, cycling drop / pause+resume / kill+revive
  // against ranks 1 and 2. Kills never overlap a pause (the harness
  // forbids stopping a server while frames sit at the pause gate), and
  // every fault is healed before the next is injected, so faults are
  // continuous but the world is eventually whole.
  std::atomic<bool> chaos_stop{false};
  std::atomic<std::uint64_t> faults_injected{0};
  std::thread chaos([&] {
    std::mt19937 rng(1234);
    std::uniform_int_distribution<int> pick_rank(1, 2);
    std::uniform_int_distribution<int> pick_fault(0, 2);
    std::uniform_int_distribution<int> pick_sleep_ms(250, 600);
    while (!chaos_stop.load()) {
      const std::size_t rank = static_cast<std::size_t>(pick_rank(rng));
      switch (pick_fault(rng)) {
        case 0:
          fabric.faults(rank).drop_next(3);
          break;
        case 1:
          fabric.faults(rank).pause();
          std::this_thread::sleep_for(std::chrono::milliseconds(200));
          fabric.faults(rank).resume();
          break;
        default:
          fabric.kill(rank);
          std::this_thread::sleep_for(std::chrono::milliseconds(400));
          fabric.revive(rank);
          break;
      }
      ++faults_injected;
      std::this_thread::sleep_for(
          std::chrono::milliseconds(pick_sleep_ms(rng)));
    }
  });

  load::ArrivalConfig arrival_config;
  arrival_config.rate = 150;
  arrival_config.duration_seconds = kSoakSeconds;
  arrival_config.key_count = 8;
  arrival_config.seed = 97;
  const load::LoadTrace trace = load::generate_arrivals(arrival_config);
  const load::RunResult result = load::run_open_loop(
      trace, instances, [&fabric](SolveRequest request) {
        return fabric.router(0).submit(std::move(request));
      });

  chaos_stop.store(true);
  chaos.join();
  fabric.telemetry(0).recorder.stop();

  // Every request resolved, and resolved to an answer or an explicit
  // rejection — failover swallowed the faults.
  EXPECT_EQ(result.submitted, trace.events.size());
  EXPECT_EQ(result.unresolved, 0u) << "stuck waiters";
  EXPECT_EQ(result.errors, 0u);
  EXPECT_EQ(result.answered + result.rejected, result.submitted);
  EXPECT_GT(result.answered, 0u);
  EXPECT_GT(faults_injected.load(), 5u);

  // No component on any rank ever stalled.
  for (std::size_t r = 0; r < fabric.world(); ++r) {
    fabric.telemetry(r).watchdog.check();
    EXPECT_EQ(fabric.telemetry(r).watchdog.stalls_total(), 0u)
        << "rank " << r;
  }

  // The flight recorder's window is non-empty and covers the faults:
  // many ticks, spanning most of the soak, with the load visible in the
  // per-tick counter deltas.
  const std::vector<obs::FlightRecorder::Tick> ticks =
      fabric.telemetry(0).recorder.recent();
  ASSERT_GE(ticks.size(), 8u);
  EXPECT_GE(ticks.back().uptime_seconds - ticks.front().uptime_seconds,
            0.6 * kSoakSeconds);
  std::uint64_t recorded_requests = 0;
  for (const obs::FlightRecorder::Tick& tick : ticks) {
    const auto it = tick.counter_deltas.find("engine_requests_total");
    if (it != tick.counter_deltas.end()) recorded_requests += it->second;
  }
  EXPECT_GT(recorded_requests, 0u);

  // And the same window is reachable over the line protocol.
  std::istringstream script("timeseries 5\n");
  std::ostringstream out;
  EXPECT_EQ(run_serve(script, out, fabric.service(0)).protocol_errors, 0u);
  EXPECT_NE(out.str().find("# tick seq="), std::string::npos);
  EXPECT_NE(out.str().find("# timeseries end"), std::string::npos);
}

// Elastic membership under open-loop load: a 3-rank elastic fleet
// serves a paced arrival stream while a 4th rank joins mid-run and an
// original rank is retired (true process death) mid-run. The bar: every
// future resolves (zero stuck waiters), zero kError leaks (failover +
// the membership transition window absorb both reshapes), the epoch
// only ever advances, the survivors converge on the 3-member view, and
// every answer minted before the chaos replays byte-identically after.
TEST(FabricSoak, ElasticJoinAndDeathUnderOpenLoopLoad) {
  FabricHarness::Options options;
  options.world = 3;
  options.elastic = true;
  options.service.threads = 2;
  options.router.client.connect_timeout_seconds = 1.0;
  options.router.client.reply_timeout_seconds = 5.0;
  options.router.client.backoff_initial_seconds = 0.05;
  options.router.heartbeat_interval_seconds = 0.05;
  options.router.membership.suspect_after_seconds = 0.4;
  options.router.membership.dead_after_seconds = 0.8;
  FabricHarness fabric(options);

  // References resolved up front: add_rank() grows the harness's rank
  // vector mid-run, so concurrent threads must not walk it.
  ShardRouter& router0 = fabric.router(0);
  ShardRouter& router2 = fabric.router(2);

  std::vector<Instance> instances;
  for (std::size_t k = 0; k < 8; ++k) {
    Rng rng(6100 + k);
    ChainConfig chain_config;
    chain_config.task_count = 8;
    instances.push_back(Instance{
        random_chain(rng, chain_config),
        Platform::homogeneous(4, paper::kHomSpeed,
                              paper::kProcessorFailureRate, paper::kBandwidth,
                              paper::kLinkFailureRate,
                              paper::kMaxReplication)});
  }

  // Answers minted before any reshape — the byte-identity baseline.
  std::vector<SolveRequest> pinned;
  std::vector<SolveReply> first;
  for (int i = 0; i < 9; ++i) {
    pinned.push_back(SolveRequest{
        instances[static_cast<std::size_t>(i) % instances.size()], "heur-p",
        fabric.bounds_on_rank(instances[static_cast<std::size_t>(i) %
                                        instances.size()],
                              "heur-p", static_cast<std::size_t>(i) % 3,
                              50.0 * i)});
    first.push_back(router0.submit(pinned.back()).get());
    ASSERT_EQ(first.back().status, ReplyStatus::kSolved);
  }

  // Epoch watcher: membership may only ever move forward, sampled
  // continuously on two ranks that live through the whole run.
  std::atomic<bool> watch_stop{false};
  std::atomic<bool> epoch_monotone{true};
  std::thread watcher([&] {
    std::uint64_t last0 = router0.epoch();
    std::uint64_t last2 = router2.epoch();
    while (!watch_stop.load()) {
      const std::uint64_t now0 = router0.epoch();
      const std::uint64_t now2 = router2.epoch();
      if (now0 < last0 || now2 < last2) epoch_monotone.store(false);
      last0 = now0;
      last2 = now2;
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
  });

  // The membership chaos script: one join, one death, both mid-load.
  std::thread chaos([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(1000));
    fabric.add_rank();  // rank 3 dials rank 0, slices stream to it
    std::this_thread::sleep_for(std::chrono::milliseconds(1000));
    fabric.retire(1);  // an original rank dies for good
  });

  load::ArrivalConfig arrival_config;
  arrival_config.rate = 120;
  arrival_config.duration_seconds = 4.0;
  arrival_config.key_count = 8;
  arrival_config.seed = 131;
  const load::LoadTrace trace = load::generate_arrivals(arrival_config);
  const load::RunResult result = load::run_open_loop(
      trace, instances, [&router0](SolveRequest request) {
        return router0.submit(std::move(request));
      });

  chaos.join();
  // Let the survivors finish detecting the death, then freeze the view.
  fabric.wait_for_members(3);
  watch_stop.store(true);
  watcher.join();

  // The open-loop bar, unchanged by elasticity: every future resolved,
  // every request answered or explicitly rejected, no error leaks.
  EXPECT_EQ(result.submitted, trace.events.size());
  EXPECT_EQ(result.unresolved, 0u) << "stuck waiters";
  EXPECT_EQ(result.errors, 0u);
  EXPECT_EQ(result.answered + result.rejected, result.submitted);
  EXPECT_GT(result.answered, 0u);
  EXPECT_TRUE(epoch_monotone.load());

  // Survivors agree: 3 members (0, 2, 3), one join and one death seen.
  for (ShardRouter* router : {&router0, &router2}) {
    const MembershipStats stats = router->membership_stats();
    EXPECT_EQ(stats.members, 3u);
    EXPECT_GE(stats.joins, 1u);
    EXPECT_GE(stats.deaths, 1u);
  }
  EXPECT_FALSE(fabric.alive(1));

  // Every pre-chaos answer replays byte-identically from whoever owns
  // the key now — handed-off, double-written, replicated or re-solved.
  for (std::size_t i = 0; i < pinned.size(); ++i) {
    const SolveReply replay = router0.submit(pinned[i]).get();
    ASSERT_EQ(replay.status, ReplyStatus::kSolved) << "pinned " << i;
    ASSERT_TRUE(replay.solution.has_value());
    EXPECT_EQ(replay.solution->mapping, first[i].solution->mapping);
    EXPECT_EQ(replay.solution->metrics, first[i].solution->metrics);
    EXPECT_EQ(replay.key, first[i].key);
  }
}

// A slow-but-alive peer (rank 1 sleeps every inbound frame at the
// harness gate, well under the watchdog's stall bar). The requester's
// profiler must attribute the stretch as *blocked* time on
// wire_round_trip — the forward thread off-CPU waiting on the peer —
// and not as work on its local solver, which never ran for these keys.
TEST(FabricSoak, SlowPeerAttributesBlockedTimeToWireNotSolver) {
  FabricHarness::Options options;
  options.world = 2;
  options.service.threads = 2;
  options.router.client.connect_timeout_seconds = 1.0;
  options.router.client.reply_timeout_seconds = 10.0;
  options.router.client.backoff_initial_seconds = 0.05;
  FabricHarness fabric(options);

  Rng rng(7300);
  ChainConfig chain_config;
  chain_config.task_count = 8;
  const Instance instance{
      random_chain(rng, chain_config),
      Platform::homogeneous(4, paper::kHomSpeed, paper::kProcessorFailureRate,
                            paper::kBandwidth, paper::kLinkFailureRate,
                            paper::kMaxReplication)};

  constexpr double kPeerDelaySeconds = 0.25;
  constexpr int kForwards = 4;
  fabric.faults(1).delay(kPeerDelaySeconds);
  for (int i = 0; i < kForwards; ++i) {
    SolveRequest request{
        instance, "heur-p",
        fabric.bounds_on_rank(instance, "heur-p", /*owner=*/1, i * 16.0)};
    const SolveReply reply = fabric.router(0).submit(request).get();
    ASSERT_EQ(reply.status, ReplyStatus::kSolved);
  }
  fabric.faults(1).delay(0.0);

  double wire_blocked = 0.0;
  double solver_blocked = 0.0;
  std::uint64_t wire_samples = 0;
  for (const obs::Profiler::ComponentStats& component :
       fabric.telemetry(0).profiler.stats()) {
    if (component.name == "wire_round_trip") {
      wire_blocked = component.blocked_seconds;
      wire_samples = component.samples;
    }
    if (component.name == "solver_run") {
      solver_blocked = component.blocked_seconds;
    }
  }
  EXPECT_EQ(wire_samples, static_cast<std::uint64_t>(kForwards));
  // Every forward absorbed at least the injected gate delay off-CPU.
  EXPECT_GT(wire_blocked, 0.8 * kPeerDelaySeconds * kForwards);
  // The stall did NOT attribute to local compute: these keys were
  // solved by the owner, so rank 0's solver shows at most noise.
  EXPECT_LT(solver_blocked, 0.5 * wire_blocked);
}

}  // namespace
}  // namespace prts::service
