#include "eval/energy.hpp"

#include <gtest/gtest.h>

#include <array>

#include "eval/evaluation.hpp"
#include "test_util.hpp"

namespace prts {
namespace {

TEST(Energy, HandComputedSingleInterval) {
  // One interval, work 10, speed 2, no comms; alpha = 3, C = 1, static .1.
  const TaskChain chain({{10.0, 0.0}});
  const Platform platform = Platform::homogeneous(2, 2.0, 0.0, 1.0, 0.0, 2);
  const Mapping mapping(IntervalPartition::single(1), {{0}});
  const EnergyMetrics energy = mapping_energy(chain, platform, mapping);
  // busy = 5; power = 0.1 + 1 * 2^3 = 8.1; energy = 40.5.
  EXPECT_NEAR(energy.computation, 40.5, 1e-12);
  EXPECT_DOUBLE_EQ(energy.communication, 0.0);
}

TEST(Energy, ReplicationMultipliesEnergy) {
  const TaskChain chain({{10.0, 0.0}});
  const Platform platform = Platform::homogeneous(3, 2.0, 0.0, 1.0, 0.0, 3);
  const Mapping one(IntervalPartition::single(1), {{0}});
  const Mapping three(IntervalPartition::single(1), {{0, 1, 2}});
  EXPECT_NEAR(mapping_energy(chain, platform, three).total(),
              3.0 * mapping_energy(chain, platform, one).total(), 1e-9);
}

TEST(Energy, CommunicationCountsInAndOut) {
  // Two singleton intervals, o_0 = 4, bandwidth 2, link power 0.5:
  // sender out 2 time units + receiver in 2 time units = 2.0 energy.
  const TaskChain chain({{1.0, 4.0}, {1.0, 0.0}});
  const Platform platform = Platform::homogeneous(2, 1.0, 0.0, 2.0, 0.0, 1);
  const Mapping mapping(IntervalPartition::singletons(2), {{0}, {1}});
  const EnergyMetrics energy = mapping_energy(chain, platform, mapping);
  EXPECT_NEAR(energy.communication, 2.0 * 0.5 * 2.0, 1e-12);
}

TEST(Energy, FasterProcessorCostsMorePerWorkUnit) {
  // With alpha = 3, energy/work = (static + C s^3)/s grows with s for
  // s >= 1: running the same work on a faster processor costs more.
  const TaskChain chain({{12.0, 0.0}});
  const Platform platform({{1.0, 0.0}, {4.0, 0.0}}, 1.0, 0.0, 1);
  const Mapping slow(IntervalPartition::single(1), {{0}});
  const Mapping fast(IntervalPartition::single(1), {{1}});
  EXPECT_GT(mapping_energy(chain, platform, fast).total(),
            mapping_energy(chain, platform, slow).total());
}

TEST(Energy, LinearExponentMakesSpeedIrrelevantForDynamicPart) {
  EnergyModel model;
  model.exponent = 1.0;
  model.static_power = 0.0;
  const TaskChain chain({{12.0, 0.0}});
  const Platform platform({{1.0, 0.0}, {4.0, 0.0}}, 1.0, 0.0, 1);
  const Mapping slow(IntervalPartition::single(1), {{0}});
  const Mapping fast(IntervalPartition::single(1), {{1}});
  EXPECT_NEAR(mapping_energy(chain, platform, fast, model).total(),
              mapping_energy(chain, platform, slow, model).total(), 1e-9);
}

TEST(Energy, ReliabilityEnergyTradeoff) {
  // The paper's future-work tension, in one assertion: more replicas mean
  // better reliability AND more energy.
  Rng rng(4);
  const TaskChain chain = testutil::small_chain(rng, 4);
  const Platform platform = testutil::small_hom_platform(6, 3, 1e-4, 1e-4);
  const Mapping lean(IntervalPartition::single(4), {{0}});
  const Mapping redundant(IntervalPartition::single(4), {{0, 1, 2}});
  EXPECT_GT(mapping_reliability(chain, platform, redundant).log(),
            mapping_reliability(chain, platform, lean).log());
  EXPECT_GT(mapping_energy(chain, platform, redundant).total(),
            mapping_energy(chain, platform, lean).total());
}

}  // namespace
}  // namespace prts
