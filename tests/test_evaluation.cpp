#include "eval/evaluation.hpp"

#include <gtest/gtest.h>

#include <array>
#include <cmath>

#include "test_util.hpp"

namespace prts {
namespace {

// Hand-checkable fixture: 3 tasks, works 4/6/2, outputs 2/4/0.
TaskChain fixture_chain() {
  return TaskChain({{4.0, 2.0}, {6.0, 4.0}, {2.0, 0.0}});
}

TEST(ExpectedComputation, SingleProcessorIsDeterministic) {
  const Platform platform = Platform::homogeneous(2, 2.0, 0.01, 1.0, 0.0, 2);
  const std::array<std::size_t, 1> procs{0};
  EXPECT_NEAR(expected_computation_time(platform, 10.0, procs), 5.0, 1e-12);
  EXPECT_NEAR(worst_computation_time(platform, 10.0, procs), 5.0, 1e-12);
}

TEST(ExpectedComputation, MatchesClosedFormTwoReplicas) {
  // Heterogeneous: fast processor speed 2 (lambda .1), slow speed 1
  // (lambda .05), W = 10. Eq. (3) by hand.
  const Platform platform({{2.0, 0.1}, {1.0, 0.05}}, 1.0, 0.0, 2);
  const std::array<std::size_t, 2> procs{0, 1};
  const double r1 = std::exp(-0.1 * 5.0);
  const double r2 = std::exp(-0.05 * 10.0);
  const double expected =
      10.0 * ((1.0 / 2.0) * r1 + (1.0 / 1.0) * r2 * (1.0 - r1)) /
      (1.0 - (1.0 - r1) * (1.0 - r2));
  EXPECT_NEAR(expected_computation_time(platform, 10.0, procs), expected,
              1e-12);
  EXPECT_NEAR(worst_computation_time(platform, 10.0, procs), 10.0, 1e-12);
}

TEST(ExpectedComputation, BoundedByFastestAndSlowest) {
  Rng rng(21);
  for (int trial = 0; trial < 20; ++trial) {
    const Platform platform = testutil::small_het_platform(rng, 4, 3, 0.05);
    const std::array<std::size_t, 3> procs{0, 1, 3};
    const double work = rng.uniform_real(1.0, 50.0);
    const double ec = expected_computation_time(platform, work, procs);
    const double wc = worst_computation_time(platform, work, procs);
    double fastest = 1e300;
    for (std::size_t u : procs) {
      fastest = std::min(fastest, work / platform.speed(u));
    }
    EXPECT_GE(ec, fastest - 1e-9);
    EXPECT_LE(ec, wc + 1e-9);
  }
}

TEST(ExpectedComputation, AllReplicasFailingGivesInfinity) {
  const Platform platform({{1.0, 1e9}}, 1.0, 0.0, 1);
  const std::array<std::size_t, 1> procs{0};
  EXPECT_TRUE(
      std::isinf(expected_computation_time(platform, 1000.0, procs)));
}

TEST(BranchReliability, CombinesThreeExponentials) {
  const Platform platform = Platform::homogeneous(1, 2.0, 1e-3, 4.0, 1e-2, 1);
  // work 8 -> duration 4; in 2 -> 0.5; out 4 -> 1.0.
  const auto r = branch_reliability(platform, 0, 8.0, 2.0, 4.0);
  EXPECT_NEAR(r.log(), -(1e-3 * 4.0 + 1e-2 * 0.5 + 1e-2 * 1.0), 1e-15);
}

TEST(BranchReliability, ZeroSizesSkipCommTerms) {
  const Platform platform = Platform::homogeneous(1, 2.0, 1e-3, 4.0, 1e-2, 1);
  const auto r = branch_reliability(platform, 0, 8.0, 0.0, 0.0);
  EXPECT_NEAR(r.log(), -4e-3, 1e-15);
}

TEST(IntervalReliability, ReplicationMultipliesFailures) {
  const Platform platform = Platform::homogeneous(3, 1.0, 0.1, 1.0, 0.0, 3);
  const std::array<std::size_t, 1> one{0};
  const std::array<std::size_t, 3> three{0, 1, 2};
  const double f1 = interval_reliability(platform, one, 5.0, 0, 0).failure();
  const double f3 =
      interval_reliability(platform, three, 5.0, 0, 0).failure();
  EXPECT_NEAR(f3, f1 * f1 * f1, 1e-12);
}

TEST(MappingReliability, HandComputedTwoIntervals) {
  const TaskChain chain = fixture_chain();
  const Platform platform = Platform::homogeneous(3, 1.0, 1e-3, 1.0, 1e-4, 2);
  // Intervals [0,1] on {0,1}, [2,2] on {2}.
  const std::array<std::size_t, 2> lasts{1, 2};
  const Mapping mapping(IntervalPartition::from_boundaries(lasts, 3),
                        {{0, 1}, {2}});
  // Stage 1: branch = exp(-(1e-3*10 + 1e-4*4)); two replicas.
  const double f_branch1 = 1.0 - std::exp(-(1e-3 * 10.0 + 1e-4 * 4.0));
  const double stage1 = 1.0 - f_branch1 * f_branch1;
  // Stage 2: in comm 4, work 2, no out comm.
  const double stage2 = std::exp(-(1e-4 * 4.0 + 1e-3 * 2.0));
  const double expected = stage1 * stage2;
  EXPECT_NEAR(mapping_reliability(chain, platform, mapping).reliability(),
              expected, 1e-12);
}

TEST(Evaluate, HandComputedMetrics) {
  const TaskChain chain = fixture_chain();
  const Platform platform = Platform::homogeneous(3, 2.0, 0.0, 2.0, 0.0, 2);
  const std::array<std::size_t, 2> lasts{1, 2};
  const Mapping mapping(IntervalPartition::from_boundaries(lasts, 3),
                        {{0, 1}, {2}});
  const MappingMetrics metrics = evaluate(chain, platform, mapping);
  // Interval works 10 and 2 at speed 2 -> 5 and 1; comms 4/2 = 2 and 0.
  EXPECT_NEAR(metrics.worst_latency, 5.0 + 2.0 + 1.0, 1e-12);
  EXPECT_NEAR(metrics.worst_period, 5.0, 1e-12);
  EXPECT_EQ(metrics.interval_count, 2u);
  EXPECT_EQ(metrics.processors_used, 3u);
  EXPECT_NEAR(metrics.replication_level, 1.5, 1e-12);
}

TEST(Evaluate, HomogeneousExpectedEqualsWorst) {
  Rng rng(31);
  for (int trial = 0; trial < 10; ++trial) {
    const TaskChain chain = testutil::small_chain(rng, 5);
    const Platform platform = testutil::small_hom_platform(6, 3);
    const Mapping mapping = testutil::random_mapping(rng, chain, platform);
    const MappingMetrics metrics = evaluate(chain, platform, mapping);
    EXPECT_NEAR(metrics.expected_latency, metrics.worst_latency, 1e-9);
    EXPECT_NEAR(metrics.expected_period, metrics.worst_period, 1e-9);
  }
}

TEST(Evaluate, HeterogeneousExpectedAtMostWorst) {
  Rng rng(37);
  for (int trial = 0; trial < 10; ++trial) {
    const TaskChain chain = testutil::small_chain(rng, 5);
    const Platform platform = testutil::small_het_platform(rng, 6, 3);
    const Mapping mapping = testutil::random_mapping(rng, chain, platform);
    const MappingMetrics metrics = evaluate(chain, platform, mapping);
    EXPECT_LE(metrics.expected_latency, metrics.worst_latency + 1e-9);
    EXPECT_LE(metrics.expected_period, metrics.worst_period + 1e-9);
  }
}

TEST(Evaluate, AddingReplicaImprovesReliability) {
  const TaskChain chain = fixture_chain();
  const Platform platform = Platform::homogeneous(4, 1.0, 1e-3, 1.0, 1e-4, 3);
  const std::array<std::size_t, 2> lasts{1, 2};
  const Mapping one(IntervalPartition::from_boundaries(lasts, 3),
                    {{0}, {2}});
  const Mapping two(IntervalPartition::from_boundaries(lasts, 3),
                    {{0, 1}, {2}});
  EXPECT_GT(mapping_reliability(chain, platform, two),
            mapping_reliability(chain, platform, one));
}

TEST(Evaluate, FailureMatchesLogReliability) {
  Rng rng(41);
  const TaskChain chain = testutil::small_chain(rng, 6);
  const Platform platform = testutil::small_hom_platform(6, 2, 1e-8, 1e-7);
  const Mapping mapping = testutil::random_mapping(rng, chain, platform);
  const MappingMetrics metrics = evaluate(chain, platform, mapping);
  EXPECT_DOUBLE_EQ(metrics.failure, metrics.reliability.failure());
  EXPECT_GT(metrics.failure, 0.0);  // tiny but preserved
  EXPECT_LT(metrics.failure, 1e-4);
}

TEST(PartitionShortcuts, MatchEvaluate) {
  Rng rng(43);
  const TaskChain chain = testutil::small_chain(rng, 6);
  const Platform platform = testutil::small_hom_platform(6, 2);
  const Mapping mapping = testutil::random_mapping(rng, chain, platform);
  const MappingMetrics metrics = evaluate(chain, platform, mapping);
  EXPECT_NEAR(
      homogeneous_partition_latency(chain, platform, mapping.partition()),
      metrics.worst_latency, 1e-9);
  EXPECT_NEAR(
      homogeneous_partition_period(chain, platform, mapping.partition()),
      metrics.worst_period, 1e-9);
}

TEST(Evaluate, PeriodIncludesCommunications) {
  // A huge communication must dominate the period (Eq. (6)).
  const TaskChain chain({{1.0, 50.0}, {1.0, 0.0}});
  const Platform platform = Platform::homogeneous(2, 1.0, 0.0, 1.0, 0.0, 1);
  const std::array<std::size_t, 2> lasts{0, 1};
  const Mapping mapping(IntervalPartition::from_boundaries(lasts, 2),
                        {{0}, {1}});
  const MappingMetrics metrics = evaluate(chain, platform, mapping);
  EXPECT_NEAR(metrics.worst_period, 50.0, 1e-12);
}

}  // namespace
}  // namespace prts
