#include "rbd/builder.hpp"

#include <gtest/gtest.h>

#include "eval/evaluation.hpp"
#include "rbd/bdd.hpp"
#include "rbd/brute_force.hpp"
#include "rbd/chain_dp.hpp"
#include "test_util.hpp"

namespace prts::rbd {
namespace {

struct Instance {
  TaskChain chain;
  Platform platform;
  Mapping mapping;
};

Instance make_instance(std::uint64_t seed, bool heterogeneous) {
  Rng rng(seed);
  TaskChain chain = testutil::small_chain(rng, 4);
  Platform platform = heterogeneous
                          ? testutil::small_het_platform(rng, 5, 2)
                          : testutil::small_hom_platform(5, 2);
  Mapping mapping = testutil::random_mapping(rng, chain, platform);
  return Instance{std::move(chain), std::move(platform), std::move(mapping)};
}

TEST(RoutingSp, MatchesEquation9) {
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    const Instance inst = make_instance(seed, seed % 2 == 0);
    const SpExpr sp =
        build_routing_sp(inst.chain, inst.platform, inst.mapping);
    const LogReliability via_eq9 =
        mapping_reliability(inst.chain, inst.platform, inst.mapping);
    EXPECT_NEAR(sp.reliability().log(), via_eq9.log(), 1e-12)
        << "seed " << seed;
  }
}

TEST(RoutingGraph, BruteForceMatchesEquation9) {
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    const Instance inst = make_instance(seed, false);
    const Graph graph =
        build_routing_graph(inst.chain, inst.platform, inst.mapping);
    ASSERT_TRUE(graph.validate());
    if (graph.block_count() > 24) continue;
    const double exact = brute_force_reliability(graph).failure();
    const double eq9 =
        mapping_reliability(inst.chain, inst.platform, inst.mapping)
            .failure();
    EXPECT_NEAR(exact, eq9, 1e-10 + 1e-6 * eq9) << "seed " << seed;
  }
}

TEST(RoutingGraph, HasRouterBlocksBetweenStages) {
  const Instance inst = make_instance(3, false);
  const Graph graph =
      build_routing_graph(inst.chain, inst.platform, inst.mapping);
  std::size_t routers = 0;
  for (std::size_t b = 0; b < graph.block_count(); ++b) {
    if (graph.label(b)[0] == 'R') ++routers;
  }
  EXPECT_EQ(routers, inst.mapping.interval_count() - 1);
}

TEST(NoRoutingGraph, ValidatesAndHasAllToAllLinks) {
  const Instance inst = make_instance(5, true);
  const Graph graph =
      build_no_routing_graph(inst.chain, inst.platform, inst.mapping);
  EXPECT_TRUE(graph.validate());
  std::size_t computes = 0;
  std::size_t links = 0;
  for (std::size_t b = 0; b < graph.block_count(); ++b) {
    if (graph.label(b)[0] == 'I') ++computes;
    if (graph.label(b)[0] == 'o') ++links;
  }
  std::size_t expected_links = 0;
  for (std::size_t j = 0; j + 1 < inst.mapping.interval_count(); ++j) {
    expected_links += inst.mapping.processors(j).size() *
                      inst.mapping.processors(j + 1).size();
  }
  EXPECT_EQ(computes, inst.mapping.processors_used());
  EXPECT_EQ(links, expected_links);
}

class NoRoutingCrossCheck : public ::testing::TestWithParam<int> {};

TEST_P(NoRoutingCrossCheck, SubsetDpMatchesBruteForceAndBdd) {
  const auto seed = static_cast<std::uint64_t>(GetParam());
  const Instance inst = make_instance(seed + 500, seed % 2 == 0);
  const Graph graph =
      build_no_routing_graph(inst.chain, inst.platform, inst.mapping);
  ASSERT_TRUE(graph.validate());
  const double via_dp =
      no_routing_reliability(inst.chain, inst.platform, inst.mapping)
          .failure();
  const double via_bdd = bdd_reliability(graph).failure();
  EXPECT_NEAR(via_dp, via_bdd, 1e-10 + 1e-6 * via_bdd) << "seed " << seed;
  if (graph.block_count() <= 22) {
    const double exact = brute_force_reliability(graph).failure();
    EXPECT_NEAR(via_dp, exact, 1e-10 + 1e-6 * exact) << "seed " << seed;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, NoRoutingCrossCheck, ::testing::Range(0, 30));

TEST(NoRouting, RoutingNeverBeatsNoRoutingReliability) {
  // Removing the serialization point cannot hurt: with routing the stage
  // fails if the single logical relay chain fails; without routing there
  // are more disjoint success paths. (Routing ops themselves are perfect,
  // but each message crosses two links instead of one, so this direction
  // can actually go either way; just check both values are probabilities
  // and the no-routing value with *one* replica everywhere coincides with
  // Eq. (9).)
  Rng rng(9);
  const TaskChain chain = testutil::small_chain(rng, 4);
  const Platform platform = testutil::small_hom_platform(4, 1);
  // Replication 1 everywhere: both semantics are a simple series chain
  // crossing each link once... with routing the message crosses two links
  // (sender->router->receiver) but Eq. (9) counts o_j once per side, i.e.
  // once outgoing for stage j and once incoming for stage j+1 = exactly
  // the two hops. Without routing there is a single link. Hence
  // no-routing must be at least as reliable here.
  const Mapping mapping(IntervalPartition::singletons(4),
                        {{0}, {1}, {2}, {3}});
  const double with_routing =
      mapping_reliability(chain, platform, mapping).failure();
  const double without =
      no_routing_reliability(chain, platform, mapping).failure();
  EXPECT_LE(without, with_routing + 1e-15);
}

}  // namespace
}  // namespace prts::rbd
