#include "scenario/campaign.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "scenario/emit.hpp"
#include "scenario/spec.hpp"

namespace prts::scenario {
namespace {

CampaignSpec tiny_spec() {
  CampaignSpec spec;
  spec.name = "tiny";
  spec.instances = 10;
  spec.seed = 42;
  spec.sweep.kind = SweepKind::kPeriod;
  spec.sweep.lo = 100.0;
  spec.sweep.hi = 300.0;
  spec.sweep.step = 100.0;
  spec.sweep.fixed = 750.0;
  spec.solvers = {"exact", "heur-l", "heur-p"};
  return spec;
}

CampaignConfig threads(std::size_t count) {
  CampaignConfig config;
  config.threads = count;
  return config;
}

TEST(Campaign, ProducesOneSeriesPerSolverInSpecOrder) {
  const CampaignResult result = run_campaign(tiny_spec(), threads(2));
  ASSERT_EQ(result.figure.series.size(), 3u);
  EXPECT_EQ(result.figure.series[0].name, "exact");
  EXPECT_EQ(result.figure.series[1].name, "heur-l");
  EXPECT_EQ(result.figure.series[2].name, "heur-p");
  EXPECT_EQ(result.jobs, 10u);
  EXPECT_EQ(result.points, 3u);
  for (const auto& series : result.figure.series) {
    ASSERT_EQ(series.solutions.size(), 3u);
    ASSERT_EQ(series.avg_failure.size(), 3u);
    for (std::size_t solved : series.solutions) EXPECT_LE(solved, 10u);
  }
}

TEST(Campaign, ThreadCountDoesNotChangeAggregates) {
  // The acceptance determinism contract: same spec + seed, 1-thread and
  // N-thread runs emit byte-identical TSV and JSON.
  const CampaignSpec spec = tiny_spec();
  const CampaignResult serial = run_campaign(spec, threads(1));
  const CampaignResult parallel = run_campaign(spec, threads(8));
  EXPECT_EQ(to_tsv(serial.figure), to_tsv(parallel.figure));
  EXPECT_EQ(to_json(serial.figure), to_json(parallel.figure));
}

TEST(Campaign, HetCampaignIsDeterministicToo) {
  CampaignSpec spec = tiny_spec();
  spec.platform.kind = PlatformKind::kHet;
  spec.sweep.lo = 20.0;
  spec.sweep.hi = 100.0;
  spec.sweep.step = 40.0;
  spec.sweep.fixed = 150.0;
  spec.solvers = {"heur-l", "heur-p"};
  const CampaignResult serial = run_campaign(spec, threads(1));
  const CampaignResult parallel = run_campaign(spec, threads(8));
  EXPECT_EQ(to_tsv(serial.figure), to_tsv(parallel.figure));
}

TEST(Campaign, ExactDominatesHeuristicCounts) {
  const CampaignResult result = run_campaign(tiny_spec(), threads(4));
  for (std::size_t pt = 0; pt < result.points; ++pt) {
    EXPECT_GE(result.figure.series[0].solutions[pt],
              result.figure.series[1].solutions[pt]);
    EXPECT_GE(result.figure.series[0].solutions[pt],
              result.figure.series[2].solutions[pt]);
  }
}

TEST(Campaign, RepetitionsMultiplyTheJobCount) {
  CampaignSpec spec = tiny_spec();
  spec.solvers = {"heur-l"};
  const CampaignResult once = run_campaign(spec, threads(4));
  spec.repetitions = 3;
  const CampaignResult thrice = run_campaign(spec, threads(4));
  EXPECT_EQ(once.jobs, 10u);
  EXPECT_EQ(thrice.jobs, 30u);
  for (std::size_t pt = 0; pt < once.points; ++pt) {
    EXPECT_GE(thrice.figure.series[0].solutions[pt],
              once.figure.series[0].solutions[pt]);
    EXPECT_LE(thrice.figure.series[0].solutions[pt], 30u);
  }
}

TEST(Campaign, JobSeedsAreDecorrelatedAndStable) {
  // The stream is pinned (historical src/exp/runner.cpp values): charm
  // of bit-reproducing the seed repo's figures.
  EXPECT_NE(job_seed(42, 0), job_seed(42, 1));
  EXPECT_NE(job_seed(42, 0), job_seed(43, 0));
  EXPECT_EQ(job_seed(42, 0), job_seed(42, 0));
}

TEST(Campaign, MaterializedInstancesMatchTheSpec) {
  CampaignSpec spec = tiny_spec();
  spec.chain.task_count = 9;
  spec.platform.processors = 7;
  const Instance hom = materialize_instance(spec, 0);
  EXPECT_EQ(hom.chain.size(), 9u);
  EXPECT_EQ(hom.platform.processor_count(), 7u);
  EXPECT_TRUE(hom.platform.is_homogeneous());

  spec.platform.kind = PlatformKind::kHet;
  const Instance het = materialize_instance(spec, 0);
  EXPECT_EQ(het.platform.processor_count(), 7u);
  // Same job, same seed: the chain is identical whatever the platform
  // family, because the chain is drawn before the platform.
  ASSERT_EQ(het.chain.size(), hom.chain.size());
  for (std::size_t i = 0; i < hom.chain.size(); ++i) {
    EXPECT_DOUBLE_EQ(het.chain.work(i), hom.chain.work(i));
  }
}

TEST(Campaign, UnknownSolverThrows) {
  CampaignSpec spec = tiny_spec();
  spec.solvers = {"no-such-solver"};
  EXPECT_THROW(run_campaign(spec, threads(1)), std::invalid_argument);
  spec.solvers.clear();
  EXPECT_THROW(run_campaign(spec, threads(1)), std::invalid_argument);
}

TEST(Campaign, SpecTextRunsEndToEnd) {
  // The full path a `prts_cli campaign` invocation takes: text -> spec
  // -> run -> emission.
  const CampaignParseResult parsed = campaign_from_text(
      "prts-campaign v1\n"
      "name end-to-end\n"
      "instances 10\n"
      "seed 7\n"
      "sweep period 100 300 100 latency 750\n"
      "solver exact\n"
      "solver heur-p\n");
  ASSERT_TRUE(parsed) << parsed.error;
  const CampaignResult result = run_campaign(*parsed.spec, threads(4));
  const std::string tsv = to_tsv(result.figure);
  EXPECT_NE(tsv.find("exact_solutions"), std::string::npos);
  EXPECT_NE(tsv.find("heur-p_avg_failure"), std::string::npos);
  const std::string json = to_json(result.figure);
  EXPECT_NE(json.find("\"title\": \"end-to-end\""), std::string::npos);
  EXPECT_NE(json.find("\"series\""), std::string::npos);
}

TEST(CampaignEmit, TsvShapesAndNanSpelling) {
  exp::FigureData figure;
  figure.title = "t";
  figure.x_label = "period bound";
  figure.x = {1.0, 2.0};
  exp::MethodSeries series;
  series.name = "m";
  series.solutions = {3, 0};
  series.avg_failure = {0.5, std::numeric_limits<double>::quiet_NaN()};
  figure.series.push_back(series);
  const std::string tsv = to_tsv(figure);
  EXPECT_EQ(tsv,
            "x\tm_solutions\tm_avg_failure\n"
            "1\t3\t0.5\n"
            "2\t0\tnan\n");
  const std::string json = to_json(figure);
  EXPECT_NE(json.find("\"avg_failure\": [0.5, null]"), std::string::npos);
}

}  // namespace
}  // namespace prts::scenario
