#include "eval/sensitivity.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "eval/evaluation.hpp"
#include "test_util.hpp"

namespace prts {
namespace {

/// Finite-difference d log r / d lambda_u by rebuilding the platform.
double fd_processor(const TaskChain& chain, const Platform& platform,
                    const Mapping& mapping, std::size_t u, double eps) {
  std::vector<Processor> procs(platform.processors().begin(),
                               platform.processors().end());
  procs[u].failure_rate += eps;
  const Platform bumped(std::move(procs), platform.bandwidth(),
                        platform.link_failure_rate(),
                        platform.max_replication());
  const double base = mapping_reliability(chain, platform, mapping).log();
  const double after = mapping_reliability(chain, bumped, mapping).log();
  return (after - base) / eps;
}

double fd_link(const TaskChain& chain, const Platform& platform,
               const Mapping& mapping, double eps) {
  std::vector<Processor> procs(platform.processors().begin(),
                               platform.processors().end());
  const Platform bumped(std::move(procs), platform.bandwidth(),
                        platform.link_failure_rate() + eps,
                        platform.max_replication());
  const double base = mapping_reliability(chain, platform, mapping).log();
  const double after = mapping_reliability(chain, bumped, mapping).log();
  return (after - base) / eps;
}

class SensitivitySeed : public ::testing::TestWithParam<int> {};

TEST_P(SensitivitySeed, MatchesFiniteDifferences) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) + 11);
  const TaskChain chain = testutil::small_chain(rng, 5);
  const Platform platform = testutil::small_het_platform(rng, 6, 3, 0.02,
                                                         0.03);
  const Mapping mapping = testutil::random_mapping(rng, chain, platform);
  const SensitivityReport report =
      reliability_sensitivity(chain, platform, mapping);
  const double eps = 1e-8;
  for (std::size_t u = 0; u < platform.processor_count(); ++u) {
    const double fd = fd_processor(chain, platform, mapping, u, eps);
    EXPECT_NEAR(report.processor[u], fd,
                1e-4 * (std::abs(fd) + 1e-6))
        << "processor " << u;
  }
  const double fd = fd_link(chain, platform, mapping, eps);
  EXPECT_NEAR(report.link, fd, 1e-4 * (std::abs(fd) + 1e-6));
}

INSTANTIATE_TEST_SUITE_P(Seeds, SensitivitySeed, ::testing::Range(0, 20));

TEST(Sensitivity, DerivativesAreNonPositive) {
  Rng rng(3);
  const TaskChain chain = testutil::small_chain(rng, 5);
  const Platform platform = testutil::small_hom_platform(6, 2, 0.02, 0.03);
  const Mapping mapping = testutil::random_mapping(rng, chain, platform);
  const SensitivityReport report =
      reliability_sensitivity(chain, platform, mapping);
  for (double d : report.processor) EXPECT_LE(d, 0.0);
  EXPECT_LE(report.link, 0.0);
}

TEST(Sensitivity, UnusedProcessorsHaveZeroDerivative) {
  Rng rng(4);
  const TaskChain chain = testutil::small_chain(rng, 3);
  const Platform platform = testutil::small_hom_platform(6, 2, 0.02, 0.03);
  const Mapping mapping(IntervalPartition::single(3), {{1, 4}});
  const SensitivityReport report =
      reliability_sensitivity(chain, platform, mapping);
  for (std::size_t u : {0u, 2u, 3u, 5u}) {
    EXPECT_DOUBLE_EQ(report.processor[u], 0.0);
  }
  EXPECT_LT(report.processor[1], 0.0);
  EXPECT_LT(report.processor[4], 0.0);
}

TEST(Sensitivity, UnreplicatedIntervalDominates) {
  // Interval 0 duplicated, interval 1 alone: the lone replica is the
  // critical component (its branch has no backup, so the derivative
  // magnitude is larger by ~1/f).
  const TaskChain chain({{10.0, 1.0}, {10.0, 0.0}});
  const Platform platform = Platform::homogeneous(3, 1.0, 1e-4, 1.0, 0.0, 2);
  const std::array<std::size_t, 2> lasts{0, 1};
  const Mapping mapping(IntervalPartition::from_boundaries(lasts, 2),
                        {{0, 1}, {2}});
  const SensitivityReport report =
      reliability_sensitivity(chain, platform, mapping);
  EXPECT_EQ(report.most_critical_processor(), 2u);
  EXPECT_LT(report.processor[2], 10.0 * report.processor[0]);
}

TEST(Sensitivity, MostCriticalOnEmptyMappingIsSentinel) {
  // Mapping with perfect stage (reliability 1 branch, f=0): derivative 0.
  const TaskChain chain({{10.0, 0.0}});
  const Platform platform = Platform::homogeneous(1, 1.0, 0.0, 1.0, 0.0, 1);
  const Mapping mapping(IntervalPartition::single(1), {{0}});
  const SensitivityReport report =
      reliability_sensitivity(chain, platform, mapping);
  // lambda = 0: branch failure 0 -> derivative = -duration (the slope at
  // zero rate is the exposure time itself).
  EXPECT_NEAR(report.processor[0], -10.0, 1e-9);
}

TEST(Sensitivity, LinkDerivativeScalesWithCommVolume) {
  // Two mappings on the same chain: many cuts vs one cut — more boundary
  // traffic means a larger |d log r / d lambda_l|.
  const TaskChain chain({{5.0, 8.0}, {5.0, 8.0}, {5.0, 0.0}});
  const Platform platform = Platform::homogeneous(3, 1.0, 1e-4, 1.0, 1e-4, 1);
  const Mapping coarse(IntervalPartition::single(3), {{0}});
  const Mapping fine(IntervalPartition::singletons(3), {{0}, {1}, {2}});
  const double coarse_link =
      reliability_sensitivity(chain, platform, coarse).link;
  const double fine_link =
      reliability_sensitivity(chain, platform, fine).link;
  EXPECT_DOUBLE_EQ(coarse_link, 0.0);  // no boundary at all
  EXPECT_LT(fine_link, -1.0);          // 4 crossings of 8 units
}

}  // namespace
}  // namespace prts
