#include "model/serialize.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "model/generator.hpp"

namespace prts {
namespace {

Instance sample_instance() {
  Rng rng(3);
  return Instance{paper::chain(rng), paper::het_platform(rng)};
}

TEST(Serialize, RoundTripPreservesEverything) {
  const Instance original = sample_instance();
  const ParseResult parsed = instance_from_text(instance_to_text(original));
  ASSERT_TRUE(parsed) << parsed.error;
  const Instance& copy = *parsed.instance;
  ASSERT_EQ(copy.chain.size(), original.chain.size());
  for (std::size_t i = 0; i < copy.chain.size(); ++i) {
    EXPECT_DOUBLE_EQ(copy.chain.work(i), original.chain.work(i));
    EXPECT_DOUBLE_EQ(copy.chain.out_size(i), original.chain.out_size(i));
  }
  ASSERT_EQ(copy.platform.processor_count(),
            original.platform.processor_count());
  for (std::size_t u = 0; u < copy.platform.processor_count(); ++u) {
    EXPECT_DOUBLE_EQ(copy.platform.speed(u), original.platform.speed(u));
    EXPECT_DOUBLE_EQ(copy.platform.failure_rate(u),
                     original.platform.failure_rate(u));
  }
  EXPECT_DOUBLE_EQ(copy.platform.bandwidth(),
                   original.platform.bandwidth());
  EXPECT_DOUBLE_EQ(copy.platform.link_failure_rate(),
                   original.platform.link_failure_rate());
  EXPECT_EQ(copy.platform.max_replication(),
            original.platform.max_replication());
}

TEST(Serialize, RoundTripPreservesTinyRates) {
  // 1e-8 must survive the text round trip with full precision... the
  // default stream precision only keeps 6 digits, which is exact for
  // 1e-08 but would not be for 1.234567e-08; accept a relative error.
  Instance original{
      TaskChain({{1.5, 0.25}, {2.0, 0.0}}),
      Platform({{1.0, 1.234567e-08}, {3.0, 9.87e-10}}, 2.0, 5e-5, 2)};
  const ParseResult parsed = instance_from_text(instance_to_text(original));
  ASSERT_TRUE(parsed) << parsed.error;
  EXPECT_NEAR(parsed.instance->platform.failure_rate(0) / 1.234567e-08, 1.0,
              1e-5);
}

TEST(Serialize, CommentsAndBlankLinesIgnored) {
  const std::string text = R"(# a comment
prts-instance v1

tasks 2
# the tasks
5 1
7 0
platform 1 1 0 1
1 0
)";
  const ParseResult parsed = instance_from_text(text);
  ASSERT_TRUE(parsed) << parsed.error;
  EXPECT_EQ(parsed.instance->chain.size(), 2u);
}

TEST(Serialize, RejectsBadHeader) {
  const ParseResult parsed = instance_from_text("not-an-instance v1\n");
  ASSERT_FALSE(parsed);
  EXPECT_NE(parsed.error.find("header"), std::string::npos);
}

TEST(Serialize, RejectsEmptyInput) {
  EXPECT_FALSE(instance_from_text(""));
}

TEST(Serialize, RejectsMissingTaskLines) {
  const ParseResult parsed = instance_from_text(
      "prts-instance v1\ntasks 3\n1 0\n");
  ASSERT_FALSE(parsed);
  EXPECT_NE(parsed.error.find("task lines"), std::string::npos);
}

TEST(Serialize, RejectsNonPositiveWork) {
  const ParseResult parsed = instance_from_text(
      "prts-instance v1\ntasks 1\n0 0\nplatform 1 1 0 1\n1 0\n");
  ASSERT_FALSE(parsed);
  EXPECT_NE(parsed.error.find("work"), std::string::npos);
}

TEST(Serialize, RejectsBadPlatformLine) {
  const ParseResult parsed = instance_from_text(
      "prts-instance v1\ntasks 1\n1 0\nplatform oops\n");
  ASSERT_FALSE(parsed);
  EXPECT_NE(parsed.error.find("platform"), std::string::npos);
}

TEST(Serialize, RejectsZeroReplication) {
  const ParseResult parsed = instance_from_text(
      "prts-instance v1\ntasks 1\n1 0\nplatform 1 1 0 0\n1 0\n");
  ASSERT_FALSE(parsed);
}

TEST(Serialize, RejectsMissingProcessorLines) {
  const ParseResult parsed = instance_from_text(
      "prts-instance v1\ntasks 1\n1 0\nplatform 2 1 0 1\n1 0\n");
  ASSERT_FALSE(parsed);
  EXPECT_NE(parsed.error.find("processor lines"), std::string::npos);
}

TEST(Serialize, ErrorNamesLineNumber) {
  const ParseResult parsed = instance_from_text(
      "prts-instance v1\ntasks 2\n5 1\nbogus line\n");
  ASSERT_FALSE(parsed);
  EXPECT_NE(parsed.error.find("line 4"), std::string::npos);
}

TEST(Serialize, LabeledTaskLinesOrderByIdNotPosition) {
  // 'task <id> <work> <out>' lines: ids are labels, ascending id order
  // is the chain order regardless of where the lines appear.
  const ParseResult parsed = instance_from_text(
      "prts-instance v1\ntasks 3\n"
      "task 30 7 0\ntask 5 1 2\ntask 12 3 1\n"
      "platform 1 1 0 1\n1 0\n");
  ASSERT_TRUE(parsed) << parsed.error;
  const TaskChain& chain = parsed.instance->chain;
  EXPECT_EQ(chain.work(0), 1.0);  // id 5
  EXPECT_EQ(chain.work(1), 3.0);  // id 12
  EXPECT_EQ(chain.work(2), 7.0);  // id 30
}

TEST(Serialize, LabeledAndPlainTaskFormsParseIdentically) {
  const ParseResult plain = instance_from_text(
      "prts-instance v1\ntasks 2\n5 1\n8 0\nplatform 1 1 0 1\n1 0\n");
  const ParseResult labeled = instance_from_text(
      "prts-instance v1\ntasks 2\ntask 1 8 0\ntask 0 5 1\n"
      "platform 1 1 0 1\n1 0\n");
  ASSERT_TRUE(plain) << plain.error;
  ASSERT_TRUE(labeled) << labeled.error;
  EXPECT_EQ(instance_to_text(*plain.instance),
            instance_to_text(*labeled.instance));
}

TEST(Serialize, RejectsMixedTaskLineForms) {
  const ParseResult parsed = instance_from_text(
      "prts-instance v1\ntasks 2\ntask 0 5 1\n8 0\nplatform 1 1 0 1\n1 0\n");
  ASSERT_FALSE(parsed);
  EXPECT_NE(parsed.error.find("mix"), std::string::npos);
}

TEST(Serialize, RejectsDuplicateTaskIds) {
  const ParseResult parsed = instance_from_text(
      "prts-instance v1\ntasks 2\ntask 3 5 1\ntask 3 8 0\n"
      "platform 1 1 0 1\n1 0\n");
  ASSERT_FALSE(parsed);
  EXPECT_NE(parsed.error.find("duplicate task id"), std::string::npos);
}

TEST(Serialize, CanonicalWriterIsLossless) {
  // write_instance_canonical keeps full double precision, so values the
  // default writer would truncate survive the round trip bit-exactly.
  std::vector<Task> tasks{{1.0 / 3.0, 0.123456789012345}, {2.0, 0.0}};
  std::vector<Processor> procs{{1.0000000001, 1.23456789e-9}};
  const Instance original{TaskChain(std::move(tasks)),
                          Platform(std::move(procs), 1.0, 1e-5, 1)};
  std::ostringstream out;
  write_instance_canonical(out, original);
  const ParseResult parsed = instance_from_text(out.str());
  ASSERT_TRUE(parsed) << parsed.error;
  EXPECT_EQ(parsed.instance->chain.work(0), original.chain.work(0));
  EXPECT_EQ(parsed.instance->chain.out_size(0), original.chain.out_size(0));
  EXPECT_EQ(parsed.instance->platform.speed(0), original.platform.speed(0));
  EXPECT_EQ(parsed.instance->platform.failure_rate(0),
            original.platform.failure_rate(0));
}

}  // namespace
}  // namespace prts
