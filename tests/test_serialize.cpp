#include "model/serialize.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "model/generator.hpp"

namespace prts {
namespace {

Instance sample_instance() {
  Rng rng(3);
  return Instance{paper::chain(rng), paper::het_platform(rng)};
}

TEST(Serialize, RoundTripPreservesEverything) {
  const Instance original = sample_instance();
  const ParseResult parsed = instance_from_text(instance_to_text(original));
  ASSERT_TRUE(parsed) << parsed.error;
  const Instance& copy = *parsed.instance;
  ASSERT_EQ(copy.chain.size(), original.chain.size());
  for (std::size_t i = 0; i < copy.chain.size(); ++i) {
    EXPECT_DOUBLE_EQ(copy.chain.work(i), original.chain.work(i));
    EXPECT_DOUBLE_EQ(copy.chain.out_size(i), original.chain.out_size(i));
  }
  ASSERT_EQ(copy.platform.processor_count(),
            original.platform.processor_count());
  for (std::size_t u = 0; u < copy.platform.processor_count(); ++u) {
    EXPECT_DOUBLE_EQ(copy.platform.speed(u), original.platform.speed(u));
    EXPECT_DOUBLE_EQ(copy.platform.failure_rate(u),
                     original.platform.failure_rate(u));
  }
  EXPECT_DOUBLE_EQ(copy.platform.bandwidth(),
                   original.platform.bandwidth());
  EXPECT_DOUBLE_EQ(copy.platform.link_failure_rate(),
                   original.platform.link_failure_rate());
  EXPECT_EQ(copy.platform.max_replication(),
            original.platform.max_replication());
}

TEST(Serialize, RoundTripPreservesTinyRates) {
  // 1e-8 must survive the text round trip with full precision... the
  // default stream precision only keeps 6 digits, which is exact for
  // 1e-08 but would not be for 1.234567e-08; accept a relative error.
  Instance original{
      TaskChain({{1.5, 0.25}, {2.0, 0.0}}),
      Platform({{1.0, 1.234567e-08}, {3.0, 9.87e-10}}, 2.0, 5e-5, 2)};
  const ParseResult parsed = instance_from_text(instance_to_text(original));
  ASSERT_TRUE(parsed) << parsed.error;
  EXPECT_NEAR(parsed.instance->platform.failure_rate(0) / 1.234567e-08, 1.0,
              1e-5);
}

TEST(Serialize, CommentsAndBlankLinesIgnored) {
  const std::string text = R"(# a comment
prts-instance v1

tasks 2
# the tasks
5 1
7 0
platform 1 1 0 1
1 0
)";
  const ParseResult parsed = instance_from_text(text);
  ASSERT_TRUE(parsed) << parsed.error;
  EXPECT_EQ(parsed.instance->chain.size(), 2u);
}

TEST(Serialize, RejectsBadHeader) {
  const ParseResult parsed = instance_from_text("not-an-instance v1\n");
  ASSERT_FALSE(parsed);
  EXPECT_NE(parsed.error.find("header"), std::string::npos);
}

TEST(Serialize, RejectsEmptyInput) {
  EXPECT_FALSE(instance_from_text(""));
}

TEST(Serialize, RejectsMissingTaskLines) {
  const ParseResult parsed = instance_from_text(
      "prts-instance v1\ntasks 3\n1 0\n");
  ASSERT_FALSE(parsed);
  EXPECT_NE(parsed.error.find("task lines"), std::string::npos);
}

TEST(Serialize, RejectsNonPositiveWork) {
  const ParseResult parsed = instance_from_text(
      "prts-instance v1\ntasks 1\n0 0\nplatform 1 1 0 1\n1 0\n");
  ASSERT_FALSE(parsed);
  EXPECT_NE(parsed.error.find("work"), std::string::npos);
}

TEST(Serialize, RejectsBadPlatformLine) {
  const ParseResult parsed = instance_from_text(
      "prts-instance v1\ntasks 1\n1 0\nplatform oops\n");
  ASSERT_FALSE(parsed);
  EXPECT_NE(parsed.error.find("platform"), std::string::npos);
}

TEST(Serialize, RejectsZeroReplication) {
  const ParseResult parsed = instance_from_text(
      "prts-instance v1\ntasks 1\n1 0\nplatform 1 1 0 0\n1 0\n");
  ASSERT_FALSE(parsed);
}

TEST(Serialize, RejectsMissingProcessorLines) {
  const ParseResult parsed = instance_from_text(
      "prts-instance v1\ntasks 1\n1 0\nplatform 2 1 0 1\n1 0\n");
  ASSERT_FALSE(parsed);
  EXPECT_NE(parsed.error.find("processor lines"), std::string::npos);
}

TEST(Serialize, ErrorNamesLineNumber) {
  const ParseResult parsed = instance_from_text(
      "prts-instance v1\ntasks 2\n5 1\nbogus line\n");
  ASSERT_FALSE(parsed);
  EXPECT_NE(parsed.error.find("line 4"), std::string::npos);
}

}  // namespace
}  // namespace prts
