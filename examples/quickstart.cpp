// Quickstart: build a chain and a platform, compute the
// reliability-optimal replicated interval mapping (Algorithm 1), inspect
// every objective of Section 2.6, and sanity-check the closed-form
// reliability against the Monte-Carlo simulator.
//
//   ./quickstart
#include <iostream>

#include "core/reliability_dp.hpp"
#include "eval/evaluation.hpp"
#include "model/platform.hpp"
#include "model/task_chain.hpp"
#include "sim/monte_carlo.hpp"

int main() {
  using namespace prts;

  // A 6-task chain: (work, output size) per task; the last task reports
  // to the environment (output 0).
  const TaskChain chain({{12.0, 3.0},
                         {30.0, 5.0},
                         {8.0, 2.0},
                         {25.0, 4.0},
                         {14.0, 6.0},
                         {20.0, 0.0}});

  // 8 identical processors: speed 1, failure rate 1e-5 per time unit;
  // links of bandwidth 1 and failure rate 1e-4; at most K = 3 replicas.
  const Platform platform =
      Platform::homogeneous(8, 1.0, 1e-5, 1.0, 1e-4, 3);

  // Algorithm 1: the reliability-optimal interval mapping.
  const DpSolution solution = optimize_reliability(chain, platform);

  std::cout << "Optimal mapping (" << solution.mapping.interval_count()
            << " intervals):\n";
  for (std::size_t j = 0; j < solution.mapping.interval_count(); ++j) {
    const Interval ival = solution.mapping.partition().interval(j);
    std::cout << "  interval " << j << ": tasks [" << ival.first << ".."
              << ival.last << "] on processors {";
    for (std::size_t u : solution.mapping.processors(j)) {
      std::cout << " P" << u;
    }
    std::cout << " }\n";
  }

  const MappingMetrics metrics = evaluate(chain, platform, solution.mapping);
  std::cout << "\nObjectives (Section 2.6):\n";
  std::cout << "  failure probability : " << metrics.failure << "\n";
  std::cout << "  expected latency    : " << metrics.expected_latency << "\n";
  std::cout << "  worst-case latency  : " << metrics.worst_latency << "\n";
  std::cout << "  expected period     : " << metrics.expected_period << "\n";
  std::cout << "  worst-case period   : " << metrics.worst_period << "\n";
  std::cout << "  replication level   : " << metrics.replication_level
            << "\n";

  // Cross-check Eq. (9) by sampling the failure process directly.
  const auto mc = sim::estimate_reliability(chain, platform,
                                            solution.mapping,
                                            200000, /*seed=*/1);
  std::cout << "\nMonte-Carlo check: " << mc.successes << "/" << mc.trials
            << " successes; 95% CI [" << mc.ci95.lo << ", " << mc.ci95.hi
            << "] vs analytic " << metrics.reliability.reliability() << "\n";
  return 0;
}
