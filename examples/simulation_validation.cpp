// Validation walk-through: every reliability evaluator in the library
// telling the same story about one mapping, under both communication
// schemes, against Monte-Carlo ground truth — plus the discrete-event
// view of latency and throughput.
//
//   ./simulation_validation
#include <iomanip>
#include <iostream>

#include "core/reliability_dp.hpp"
#include "eval/evaluation.hpp"
#include "model/generator.hpp"
#include "rbd/bdd.hpp"
#include "rbd/builder.hpp"
#include "rbd/chain_dp.hpp"
#include "rbd/mincut.hpp"
#include "sim/monte_carlo.hpp"
#include "sim/pipeline_sim.hpp"

int main() {
  using namespace prts;

  // A paper-shaped instance with failure rates scaled up so that
  // Monte-Carlo estimation with 2e5 samples resolves the values
  // (the real 1e-8/1e-5 rates would need ~1e14 samples).
  Rng rng(2026);
  const TaskChain chain = paper::chain(rng);
  const Platform platform = Platform::homogeneous(
      paper::kProcessorCount, 1.0, 1e-4, 1.0, 1e-2, paper::kMaxReplication);
  const Mapping mapping = optimize_reliability(chain, platform).mapping;

  std::cout << std::scientific << std::setprecision(6);
  std::cout << "Failure probability of the Algorithm-1 optimal mapping\n\n";

  std::cout << "With routing operations (serial-parallel RBD):\n";
  const double eq9 = mapping_reliability(chain, platform, mapping).failure();
  const double sp = rbd::build_routing_sp(chain, platform, mapping)
                        .reliability()
                        .failure();
  std::cout << "  Eq. (9) closed form        : " << eq9 << "\n";
  std::cout << "  SP-tree evaluation         : " << sp << "\n";
  const auto mc_routing = sim::estimate_reliability(
      chain, platform, mapping, 200000, 11, /*use_routing=*/true);
  std::cout << "  Monte-Carlo (2e5 samples)  : "
            << 1.0 - mc_routing.estimate << "  (95% CI ["
            << 1.0 - mc_routing.ci95.hi << ", " << 1.0 - mc_routing.ci95.lo
            << "])\n";

  std::cout << "\nWithout routing (general RBD, Figure 4 semantics):\n";
  const double subset_dp =
      rbd::no_routing_reliability(chain, platform, mapping).failure();
  std::cout << "  subset-DP exact            : " << subset_dp << "\n";
  const auto graph = rbd::build_no_routing_graph(chain, platform, mapping);
  std::cout << "  BDD exact (general RBD)    : "
            << rbd::bdd_reliability(graph).failure() << "\n";
  std::cout << "  minimal-cut approximation  : "
            << rbd::mincut_reliability_approximation(graph).failure()
            << "  (upper bound on failure)\n";
  const auto mc_direct = sim::estimate_reliability(
      chain, platform, mapping, 200000, 13, /*use_routing=*/false);
  std::cout << "  Monte-Carlo (2e5 samples)  : "
            << 1.0 - mc_direct.estimate << "\n";

  std::cout << std::defaultfloat;
  std::cout << "\nDiscrete-event timing (fault-free):\n";
  const MappingMetrics metrics = evaluate(chain, platform, mapping);
  sim::SimulationConfig config;
  config.dataset_count = 100;
  config.input_period = metrics.worst_period;
  config.inject_failures = false;
  config.use_routing = false;
  const auto direct = sim::simulate_pipeline(chain, platform, mapping,
                                             config);
  config.use_routing = true;
  const auto routed = sim::simulate_pipeline(chain, platform, mapping,
                                             config);
  std::cout << "  analytic latency (Eq. (5)) : " << metrics.worst_latency
            << "\n";
  std::cout << "  DES latency, direct links  : " << direct.latency.mean()
            << "\n";
  std::cout << "  DES latency, via routers   : " << routed.latency.mean()
            << "  (overhead of the extra hop: "
            << 100.0 * (routed.latency.mean() - direct.latency.mean()) /
                   direct.latency.mean()
            << "%)\n";
  std::cout << "  steady inter-completion gap: "
            << direct.inter_completion.max() << "  (= period bound "
            << metrics.worst_period << ")\n";
  return 0;
}
