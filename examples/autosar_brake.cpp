// Autosar-style brake-by-wire function (the motivating application of
// Section 1): a pipelined real-time chain from the wheel-speed sensor to
// the hydraulic brake actuator, mapped onto a bus of identical ECUs with
// hard period, end-to-end latency and reliability requirements.
//
// The example asks three questions a brake-system integrator would ask:
//   1. Which mapping maximizes reliability within P and L? (exact solver)
//   2. What do the fast heuristics find, and how close are they?
//   3. Does the discrete-event simulation of the chosen mapping meet
//      every deadline, and how often does a data set fail in a
//      billion-hour fleet sense?
//
//   ./autosar_brake
#include <iomanip>
#include <iostream>

#include "core/exact.hpp"
#include "core/heuristics.hpp"
#include "eval/evaluation.hpp"
#include "sim/pipeline_sim.hpp"

int main() {
  using namespace prts;

  // One time unit = 0.1 ms. The function runs every 5 ms (P = 50) and the
  // pedal-to-pressure latency budget is 20 ms (L = 200).
  // Task chain (work units, output bytes-normalized):
  const TaskChain chain({
      {8.0, 4.0},    // acquire wheel angular speeds (sensor drivers)
      {22.0, 6.0},   // filter / plausibility checks
      {35.0, 8.0},   // slip estimation
      {40.0, 6.0},   // torque demand arbitration
      {18.0, 3.0},   // pressure ramp control
      {10.0, 0.0},   // hydraulic actuator driver
  });

  // 6 identical ECUs on a FlexRay-class bus; transient failure rates per
  // time unit (0.1 ms): processors 1e-9, bus links 1e-8; K = 3.
  const Platform platform =
      Platform::homogeneous(6, 1.0, 1e-9, 1.0, 1e-8, 3);

  const double period_bound = 50.0;
  const double latency_bound = 200.0;

  std::cout << "Brake-by-wire mapping: P <= " << period_bound
            << ", L <= " << latency_bound << " (0.1 ms units)\n\n";

  const HomogeneousExactSolver solver(chain, platform);
  const auto exact = solver.solve(period_bound, latency_bound);
  if (!exact) {
    std::cout << "No feasible mapping: the platform cannot sustain the "
                 "requested rate.\n";
    return 1;
  }
  std::cout << "Exact optimum: failure " << std::scientific
            << std::setprecision(3) << exact->metrics.failure
            << ", period " << std::defaultfloat
            << exact->metrics.worst_period << ", latency "
            << exact->metrics.worst_latency << ", " << std::fixed
            << std::setprecision(2) << exact->metrics.replication_level
            << std::defaultfloat << " replicas/interval\n";

  HeuristicOptions options;
  options.period_bound = period_bound;
  options.latency_bound = latency_bound;
  for (HeuristicKind kind : {HeuristicKind::kHeurL, HeuristicKind::kHeurP}) {
    const char* name = kind == HeuristicKind::kHeurL ? "Heur-L" : "Heur-P";
    const auto heuristic = run_heuristic(chain, platform, kind, options);
    if (!heuristic) {
      std::cout << name << ": no feasible schedule found\n";
      continue;
    }
    std::cout << name << "       : failure " << std::scientific
              << std::setprecision(3) << heuristic->metrics.failure
              << std::defaultfloat << " ("
              << heuristic->metrics.failure / exact->metrics.failure
              << "x the optimum), period "
              << heuristic->metrics.worst_period << ", latency "
              << heuristic->metrics.worst_latency << "\n";
  }

  // Run 10 seconds of braking (2000 activations) through the DES with
  // failure injection, checking the k*P + L deadline of every data set.
  sim::SimulationConfig config;
  config.dataset_count = 2000;
  config.input_period = period_bound;
  config.latency_deadline = latency_bound;
  config.seed = 7;
  const auto run = sim::simulate_pipeline(chain, platform, exact->mapping,
                                          config);
  std::cout << "\nSimulated " << run.datasets << " activations: "
            << run.successes << " delivered, " << run.deadline_misses
            << " deadline misses; mean latency " << run.latency.mean()
            << ", max " << run.latency.max() << "\n";
  std::cout << "(The paper's deadline model: data set k is due at k*P + L; "
               "a feasible mapping misses none.)\n";
  return 0;
}
