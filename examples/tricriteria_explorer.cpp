// Tri-criteria trade-off explorer on a homogeneous platform: sweeps the
// period bound with the latency tied to it (the L = 3P regime of
// Figures 10-11) and prints, for each bound, the exact optimum and both
// heuristics — a compact command-line version of the paper's evaluation
// for one instance, including the period-minimization converse of
// Section 5.2.
//
//   ./tricriteria_explorer [seed]
#include <cstdlib>
#include <cmath>
#include <iomanip>
#include <iostream>

#include "core/exact.hpp"
#include "core/heuristics.hpp"
#include "core/period_dp.hpp"
#include "model/generator.hpp"

int main(int argc, char** argv) {
  using namespace prts;
  const std::uint64_t seed =
      argc > 1 ? static_cast<std::uint64_t>(std::atoll(argv[1])) : 1;

  Rng rng(seed);
  const TaskChain chain = paper::chain(rng);
  const Platform platform = paper::hom_platform();
  const HomogeneousExactSolver solver(chain, platform);

  std::cout << "One paper instance (seed " << seed
            << "), L = 3P sweep:\n\n";
  std::cout << std::setw(8) << "P" << std::setw(8) << "L" << std::setw(14)
            << "exact" << std::setw(14) << "Heur-L" << std::setw(14)
            << "Heur-P" << "\n";
  for (double period = 150.0; period <= 350.0; period += 25.0) {
    const double latency = 3.0 * period;
    std::cout << std::fixed << std::setprecision(0) << std::setw(8)
              << period << std::setw(8) << latency << std::defaultfloat
              << std::setprecision(6);
    const auto exact = solver.best_log_reliability(period, latency);
    if (exact) {
      std::cout << std::setw(14) << std::scientific << std::setprecision(3)
                << -std::expm1(*exact) << std::defaultfloat;
    } else {
      std::cout << std::setw(14) << "-";
    }
    HeuristicOptions options;
    options.period_bound = period;
    options.latency_bound = latency;
    for (HeuristicKind kind :
         {HeuristicKind::kHeurL, HeuristicKind::kHeurP}) {
      const auto solution = run_heuristic(chain, platform, kind, options);
      if (solution) {
        std::cout << std::setw(14) << std::scientific
                  << std::setprecision(3) << solution->metrics.failure
                  << std::defaultfloat;
      } else {
        std::cout << std::setw(14) << "-";
      }
    }
    std::cout << "\n";
  }

  // The converse problem: the fastest rate sustainable at a reliability
  // target (binary search over Algorithm 2, end of Section 5.2).
  const auto best = solver.best_log_reliability(
      std::numeric_limits<double>::infinity(),
      std::numeric_limits<double>::infinity());
  const auto target = LogReliability::from_log(*best * 10.0);
  const auto min_period =
      optimize_period_reliability(chain, platform, target);
  std::cout << "\nPeriod minimization under failure <= " << std::scientific
            << std::setprecision(3) << target.failure()
            << std::defaultfloat << ": ";
  if (min_period) {
    std::cout << "P* = " << min_period->period << " (failure "
              << std::scientific << std::setprecision(3)
              << min_period->reliability.failure() << std::defaultfloat
              << ")\n";
  } else {
    std::cout << "infeasible\n";
  }
  return 0;
}
