// Avionics-flavored scenario on a heterogeneous platform (Section 8.2
// setting): an A380-class sensor-fusion chain mapped onto LRUs of mixed
// generations (different speeds), where the sensor and actuator drivers
// are only installed on IO-capable processors (Section 7.2 allocation
// constraints). Explores the period/latency/reliability trade-off with
// the heuristic Pareto front.
//
//   ./avionics_het
#include <iomanip>
#include <iostream>

#include "core/heuristics.hpp"
#include "core/pareto.hpp"
#include "eval/evaluation.hpp"
#include "model/constraints.hpp"

int main() {
  using namespace prts;

  // Sensor fusion chain: acquisition, two filter stages, fusion,
  // guidance law, actuator output.
  const TaskChain chain({
      {30.0, 8.0},   // air-data acquisition (sensor drivers)
      {55.0, 10.0},  // inertial filtering
      {70.0, 6.0},   // GPS/baro fusion
      {90.0, 9.0},   // state estimation
      {60.0, 5.0},   // guidance law
      {25.0, 0.0},   // surface actuator driver
  });

  // Mixed-generation LRUs: two fast (speed 4), three mid (2), three old
  // (1); identical failure rates; bus bandwidth 1; K = 3.
  const Platform platform({{4.0, 1e-7},
                           {4.0, 1e-7},
                           {2.0, 1e-7},
                           {2.0, 1e-7},
                           {2.0, 1e-7},
                           {1.0, 1e-7},
                           {1.0, 1e-7},
                           {1.0, 1e-7}},
                          1.0, 1e-6, 3);

  // IO-capable processors: only P0, P2 and P5 host the sensor driver
  // (task 0); only P1, P3 and P6 host the actuator driver (task 5).
  auto constraints = AllocationConstraints::all_allowed(
      chain.size(), platform.processor_count());
  for (std::size_t u : {1ul, 3ul, 4ul, 6ul, 7ul}) constraints.forbid(0, u);
  for (std::size_t u : {0ul, 2ul, 4ul, 5ul, 7ul}) constraints.forbid(5, u);

  std::cout << "Constrained mapping (sensor on {P0,P2,P5}, actuator on "
               "{P1,P3,P6}):\n";
  HeuristicOptions options;
  options.period_bound = 80.0;
  options.latency_bound = 300.0;
  options.constraints = &constraints;
  for (HeuristicKind kind : {HeuristicKind::kHeurL, HeuristicKind::kHeurP}) {
    const char* name = kind == HeuristicKind::kHeurL ? "Heur-L" : "Heur-P";
    const auto solution = run_heuristic(chain, platform, kind, options);
    if (!solution) {
      std::cout << "  " << name << ": infeasible under P=80, L=300\n";
      continue;
    }
    std::cout << "  " << name << ": failure " << std::scientific
              << std::setprecision(3) << solution->metrics.failure
              << std::defaultfloat << ", period "
              << solution->metrics.worst_period << ", latency "
              << solution->metrics.worst_latency << ", intervals "
              << solution->metrics.interval_count << "\n";
    // Show where the IO stages landed.
    const auto& part = solution->mapping.partition();
    std::cout << "    sensor interval on {";
    for (std::size_t u : solution->mapping.processors(0)) {
      std::cout << " P" << u;
    }
    std::cout << " }, actuator interval on {";
    for (std::size_t u :
         solution->mapping.processors(part.interval_count() - 1)) {
      std::cout << " P" << u;
    }
    std::cout << " }\n";
  }

  std::cout << "\nPareto front (period, latency, failure) without the IO "
               "constraints:\n";
  std::cout << std::setw(10) << "period" << std::setw(10) << "latency"
            << std::setw(14) << "failure" << std::setw(12) << "intervals"
            << std::setw(10) << "procs" << "\n";
  for (const ParetoPoint& point : heuristic_pareto_front(chain, platform)) {
    std::cout << std::setw(10) << point.metrics.worst_period
              << std::setw(10) << point.metrics.worst_latency
              << std::setw(14) << std::scientific << std::setprecision(2)
              << point.metrics.failure << std::defaultfloat << std::setprecision(6)
              << std::setw(12) << point.metrics.interval_count
              << std::setw(10) << point.metrics.processors_used << "\n";
  }
  std::cout << "\n(Every row is non-dominated: improving one criterion "
               "costs another — the three-way tension of Section 1.)\n";
  return 0;
}
