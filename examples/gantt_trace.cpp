// Gantt view of the pipelined execution: runs a few data sets through the
// discrete-event simulator with the trace observer and renders an ASCII
// timeline per processor, making the pipelining (Section 2.3) and the
// comm/compute overlap (Section 2.2) visible.
//
//   ./gantt_trace
#include <algorithm>
#include <iostream>
#include <string>
#include <vector>

#include "core/period_dp.hpp"
#include "eval/evaluation.hpp"
#include "model/platform.hpp"
#include "model/task_chain.hpp"
#include "sim/pipeline_sim.hpp"

int main() {
  using namespace prts;

  const TaskChain chain({{6.0, 2.0}, {9.0, 3.0}, {5.0, 2.0}, {7.0, 0.0}});
  const Platform platform = Platform::homogeneous(5, 1.0, 0.0, 1.0, 0.0, 2);

  // A period-bounded optimum so the chain actually splits into stages.
  const auto solution = optimize_reliability_period(chain, platform, 10.0);
  if (!solution) {
    std::cout << "no mapping fits the period bound\n";
    return 1;
  }
  const MappingMetrics metrics =
      evaluate(chain, platform, solution->mapping);

  std::vector<sim::TraceEvent> events;
  const sim::TraceObserver observer = [&](const sim::TraceEvent& event) {
    events.push_back(event);
  };
  sim::SimulationConfig config;
  config.dataset_count = 4;
  config.input_period = metrics.worst_period;
  config.inject_failures = false;
  config.use_routing = false;
  config.observer = &observer;
  sim::simulate_pipeline(chain, platform, solution->mapping, config);

  // Pair compute windows per processor.
  struct Window {
    double start = 0.0;
    double end = 0.0;
    std::size_t dataset = 0;
  };
  std::vector<std::vector<Window>> lanes(platform.processor_count());
  std::vector<Window> open(platform.processor_count());
  double horizon = 0.0;
  for (const sim::TraceEvent& event : events) {
    horizon = std::max(horizon, event.time);
    if (event.processor == sim::TraceEvent::kNone) continue;
    if (event.kind == sim::TraceEvent::Kind::kComputeStart) {
      open[event.processor] = Window{event.time, 0.0, event.dataset};
    } else if (event.kind == sim::TraceEvent::Kind::kComputeEnd) {
      Window window = open[event.processor];
      window.end = event.time;
      lanes[event.processor].push_back(window);
    }
  }

  std::cout << "Mapping: " << solution->mapping.interval_count()
            << " intervals, period " << metrics.worst_period
            << ", latency " << metrics.worst_latency << "\n";
  std::cout << "Gantt (one column per time unit; digits = data set):\n\n";
  const auto width = static_cast<std::size_t>(horizon) + 1;
  for (std::size_t u = 0; u < platform.processor_count(); ++u) {
    if (lanes[u].empty()) continue;
    std::string lane(width, '.');
    for (const Window& window : lanes[u]) {
      const auto from = static_cast<std::size_t>(window.start);
      const auto to = static_cast<std::size_t>(window.end);
      for (std::size_t t = from; t < to && t < width; ++t) {
        lane[t] = static_cast<char>('0' + window.dataset % 10);
      }
    }
    std::cout << "P" << u << " |" << lane << "|\n";
  }
  std::cout << "\nEach lane shows the data set a processor is computing; "
               "consecutive data sets overlap across stages (pipelining) "
               "while each processor serializes its own work.\n";
  return 0;
}
