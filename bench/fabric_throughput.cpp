// Distributed fabric throughput on a loopback world of two: the same
// repeated-probe workload as service_throughput, but driven through a
// ShardRouter whose remote shard lives behind a real FrameServer on
// 127.0.0.1 — so the numbers include canonicalization, wire encoding,
// TCP round trips and the owner's cache. Emits BENCH_fabric.json so
// the perf trajectory records what a forwarded miss and a forwarded
// hit cost relative to purely local serving.
//
// A second pair of laps measures the protocol-v2 pipelining win: a
// remote-miss workload pushed by 8 threads through ONE lock-step
// FrameClient (v1 discipline: one exchange in flight) versus ONE
// MuxFrameClient (request-id multiplexing, 8 in flight on the same
// single connection). Loopback has no propagation delay, so the wire
// laps' owner holds every inbound frame for --wire-delay seconds
// (default 2ms — a cross-rack round trip): exactly the latency the
// lock-step discipline pays per exchange and the mux discipline
// overlaps. Every request uses a distinct instance, so the owner's
// engine never batch-deduplicates the concurrent solves.
//
//   fabric_throughput [--requests N] [--unique U] [--solver NAME]
//                     [--threads T] [--mux-requests M] [--wire-delay S]
//                     [--quick] [--out PATH]
#include <atomic>
#include <chrono>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "common/thread_pool.hpp"
#include "model/generator.hpp"
#include "net/frame_client.hpp"
#include "net/frame_server.hpp"
#include "net/mux_client.hpp"
#include "service/router.hpp"
#include "service/wire.hpp"

namespace {

using namespace prts;

/// One timed pass of the workload through the router; returns seconds.
double run_pass(service::ShardRouter& router,
                const std::vector<Instance>& instances,
                std::size_t requests, const std::string& solver,
                std::size_t& solved) {
  // Sequential client, like service_throughput: each repeat arrives
  // after its twin completed, so the second pass measures *cache*
  // forwarding, not in-flight dedup.
  const auto start = std::chrono::steady_clock::now();
  for (std::size_t r = 0; r < requests; ++r) {
    service::SolveRequest request{instances[r % instances.size()], solver,
                                  {}};
    if (router.submit(std::move(request)).get().status ==
        service::ReplyStatus::kSolved) {
      ++solved;
    }
  }
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

/// `concurrency` threads drain the instance list through one shared
/// client (lock-step FrameClient or pipelining MuxFrameClient — both
/// expose call(Frame)); returns seconds, accumulates solved replies.
template <typename Client>
double run_wire_pass(Client& client, const std::vector<Instance>& instances,
                     const std::string& solver, std::size_t concurrency,
                     std::size_t& solved) {
  std::atomic<std::size_t> next{0};
  std::atomic<std::size_t> ok{0};
  const auto start = std::chrono::steady_clock::now();
  std::vector<std::thread> threads;
  for (std::size_t c = 0; c < concurrency; ++c) {
    threads.emplace_back([&] {
      for (;;) {
        const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
        if (i >= instances.size()) return;
        service::SolveRequest request{instances[i], solver, {}};
        prts::net::Frame frame;
        frame.type = prts::net::FrameType::kSolveRequest;
        frame.payload = service::encode_wire_request(request);
        const std::optional<prts::net::Frame> reply = client.call(frame);
        if (!reply || reply->type != prts::net::FrameType::kSolveReply) {
          continue;
        }
        std::string error;
        const auto decoded =
            service::decode_wire_reply(reply->payload, error);
        if (decoded && decoded->status == service::ReplyStatus::kSolved) {
          ok.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  solved += ok.load();
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

/// Distinct instances (one per request): engine batching keys on
/// (instance, solver), so identical instances would serialize behind
/// one batch entry and hide the pipelining win.
std::vector<Instance> distinct_instances(std::size_t count,
                                         std::uint64_t seed_base) {
  std::vector<Instance> instances;
  instances.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    Rng rng(seed_base + i);
    instances.push_back(Instance{
        paper::chain(rng),
        Platform::homogeneous(paper::kProcessorCount, paper::kHomSpeed,
                              paper::kProcessorFailureRate, paper::kBandwidth,
                              paper::kLinkFailureRate,
                              paper::kMaxReplication)});
  }
  return instances;
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t requests = 200;
  std::size_t unique = 8;
  std::size_t threads = 0;
  std::size_t mux_requests = 256;
  double wire_delay = 0.002;
  constexpr std::size_t kWireConcurrency = 8;
  std::string solver = "exact";
  std::string out_path = "BENCH_fabric.json";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> std::string {
      return i + 1 < argc ? argv[++i] : "";
    };
    if (arg == "--requests") {
      requests = std::stoul(next());
    } else if (arg == "--unique") {
      unique = std::stoul(next());
    } else if (arg == "--threads") {
      threads = std::stoul(next());
    } else if (arg == "--solver") {
      solver = next();
    } else if (arg == "--out") {
      out_path = next();
    } else if (arg == "--mux-requests") {
      mux_requests = std::stoul(next());
    } else if (arg == "--wire-delay") {
      wire_delay = std::stod(next());
    } else if (arg == "--quick") {
      requests = 60;
      unique = 4;
      mux_requests = 64;
    } else {
      std::cerr << "unknown flag " << arg << "\n";
      return 2;
    }
  }
  if (unique == 0 || requests == 0) {
    std::cerr << "--requests and --unique must be positive\n";
    return 2;
  }

  std::vector<Instance> instances;
  for (std::size_t u = 0; u < unique; ++u) {
    Rng rng(1000 + u);
    instances.push_back(Instance{
        paper::chain(rng),
        Platform::homogeneous(paper::kProcessorCount, paper::kHomSpeed,
                              paper::kProcessorFailureRate, paper::kBandwidth,
                              paper::kLinkFailureRate,
                              paper::kMaxReplication)});
  }

  // Rank 0 (the driver's side) and rank 1 (the remote owner) of a
  // loopback world of two.
  service::ServiceConfig config;
  config.threads = threads;
  config.max_queue_depth = requests + 1;
  service::SolveService local(config);
  service::SolveService remote(config);
  // Sized for the pipelining laps: 8 handler invocations in flight on
  // one connection, plus headroom for the router laps.
  ThreadPool server_pool(kWireConcurrency + 2);
  auto server = prts::net::FrameServer::start(
      0, service::make_fabric_handler(remote), server_pool);
  if (!server) {
    std::cerr << "cannot open a loopback listener\n";
    return 1;
  }
  service::RouterConfig router_config;
  router_config.world_size = 2;
  router_config.rank = 0;
  router_config.peers = {{"127.0.0.1", 1},
                         {"127.0.0.1", server->port()}};
  service::ShardRouter router(local, router_config);

  std::size_t solved = 0;
  const double cold_seconds =
      run_pass(router, instances, requests, solver, solved);
  const double warm_seconds =
      run_pass(router, instances, requests, solver, solved);
  if (solved != 2 * requests) {
    std::cerr << "warning: " << (2 * requests - solved) << "/"
              << 2 * requests << " requests not solved\n";
  }

  // Pipelining laps: same remote-miss shape, one connection, eight
  // pushing threads — first the v1 lock-step discipline, then the v2
  // mux. heur-p keeps the per-solve cost small so the laps measure the
  // wire discipline, not the solver.
  const std::string wire_solver = "heur-p";
  service::SolveService wire_remote(config);
  prts::net::FrameHandler wire_handler =
      [fabric = service::make_fabric_handler(wire_remote),
       wire_delay](const prts::net::Frame& frame) {
        if (wire_delay > 0.0) {
          std::this_thread::sleep_for(
              std::chrono::duration<double>(wire_delay));
        }
        return fabric(frame);
      };
  auto wire_server = prts::net::FrameServer::start(
      0, std::move(wire_handler), server_pool);
  if (!wire_server) {
    std::cerr << "cannot open a loopback listener for the wire laps\n";
    return 1;
  }
  std::size_t wire_solved = 0;
  double lockstep_seconds = 0.0;
  double mux_seconds = 0.0;
  {
    const std::vector<Instance> lockstep_instances =
        distinct_instances(mux_requests, /*seed_base=*/500000);
    prts::net::FrameClient lockstep("127.0.0.1", wire_server->port());
    lockstep_seconds = run_wire_pass(lockstep, lockstep_instances,
                                     wire_solver, kWireConcurrency,
                                     wire_solved);
  }
  std::uint64_t mux_max_inflight = 0;
  {
    const std::vector<Instance> mux_instances =
        distinct_instances(mux_requests, /*seed_base=*/900000);
    prts::net::MuxFrameClient mux("127.0.0.1", wire_server->port());
    mux_seconds = run_wire_pass(mux, mux_instances, wire_solver,
                                kWireConcurrency, wire_solved);
    mux_max_inflight = mux.stats().max_inflight;
  }
  if (wire_solved != 2 * mux_requests) {
    std::cerr << "warning: " << (2 * mux_requests - wire_solved) << "/"
              << 2 * mux_requests << " wire requests not solved\n";
  }
  const double lockstep_rps =
      static_cast<double>(mux_requests) / lockstep_seconds;
  const double mux_rps = static_cast<double>(mux_requests) / mux_seconds;
  const double mux_speedup = mux_rps / lockstep_rps;
  if (mux_speedup < 3.0) {
    std::cerr << "warning: mux speedup " << mux_speedup
              << "x below the 3x pipelining floor\n";
  }

  const double cold_rps = static_cast<double>(requests) / cold_seconds;
  const double warm_rps = static_cast<double>(requests) / warm_seconds;
  const service::RouterStats stats = router.stats();
  const double forward_share =
      static_cast<double>(stats.forwarded) /
      static_cast<double>(stats.forwarded + stats.local);

  std::cout << "fabric throughput (world 2, loopback): " << requests
            << " requests over " << unique << " unique instances, solver "
            << solver << "\n"
            << "  cold pass  " << cold_rps << " req/s\n"
            << "  warm pass  " << warm_rps << " req/s\n"
            << "  forwarded  " << stats.forwarded << " (hits "
            << stats.forward_hits << "), local " << stats.local << "\n"
            << "pipelining (" << mux_requests << " remote misses, "
            << kWireConcurrency << " threads, one connection, "
            << wire_delay * 1e3 << "ms emulated RTT):\n"
            << "  lock-step v1  " << lockstep_rps << " req/s\n"
            << "  mux v2        " << mux_rps << " req/s ("
            << mux_speedup << "x, max inflight " << mux_max_inflight
            << ")\n";

  std::ofstream out(out_path);
  if (!out) {
    std::cerr << "cannot write " << out_path << "\n";
    return 1;
  }
  out << "{\"benchmark\":\"fabric_throughput\",\"world\":2,\"solver\":\""
      << solver << "\",\"requests\":" << requests
      << ",\"unique_instances\":" << unique << ",\"threads\":" << threads
      << ",\"cold_seconds\":" << cold_seconds << ",\"cold_rps\":" << cold_rps
      << ",\"warm_seconds\":" << warm_seconds << ",\"warm_rps\":" << warm_rps
      << ",\"forwarded\":" << stats.forwarded
      << ",\"forward_hits\":" << stats.forward_hits
      << ",\"local\":" << stats.local
      << ",\"forward_share\":" << forward_share
      << ",\"mux_requests\":" << mux_requests
      << ",\"wire_concurrency\":" << kWireConcurrency
      << ",\"wire_delay_seconds\":" << wire_delay
      << ",\"lockstep_rps\":" << lockstep_rps
      << ",\"mux_rps\":" << mux_rps
      << ",\"mux_speedup\":" << mux_speedup
      << ",\"mux_max_inflight\":" << mux_max_inflight << "}\n";
  return 0;
}
