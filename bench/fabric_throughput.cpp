// Distributed fabric throughput on a loopback world of two: the same
// repeated-probe workload as service_throughput, but driven through a
// ShardRouter whose remote shard lives behind a real FrameServer on
// 127.0.0.1 — so the numbers include canonicalization, wire encoding,
// TCP round trips and the owner's cache. Emits BENCH_fabric.json so
// the perf trajectory records what a forwarded miss and a forwarded
// hit cost relative to purely local serving.
//
//   fabric_throughput [--requests N] [--unique U] [--solver NAME]
//                     [--threads T] [--quick] [--out PATH]
#include <chrono>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "common/thread_pool.hpp"
#include "model/generator.hpp"
#include "net/frame_server.hpp"
#include "service/router.hpp"

namespace {

using namespace prts;

/// One timed pass of the workload through the router; returns seconds.
double run_pass(service::ShardRouter& router,
                const std::vector<Instance>& instances,
                std::size_t requests, const std::string& solver,
                std::size_t& solved) {
  // Sequential client, like service_throughput: each repeat arrives
  // after its twin completed, so the second pass measures *cache*
  // forwarding, not in-flight dedup.
  const auto start = std::chrono::steady_clock::now();
  for (std::size_t r = 0; r < requests; ++r) {
    service::SolveRequest request{instances[r % instances.size()], solver,
                                  {}};
    if (router.submit(std::move(request)).get().status ==
        service::ReplyStatus::kSolved) {
      ++solved;
    }
  }
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t requests = 200;
  std::size_t unique = 8;
  std::size_t threads = 0;
  std::string solver = "exact";
  std::string out_path = "BENCH_fabric.json";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> std::string {
      return i + 1 < argc ? argv[++i] : "";
    };
    if (arg == "--requests") {
      requests = std::stoul(next());
    } else if (arg == "--unique") {
      unique = std::stoul(next());
    } else if (arg == "--threads") {
      threads = std::stoul(next());
    } else if (arg == "--solver") {
      solver = next();
    } else if (arg == "--out") {
      out_path = next();
    } else if (arg == "--quick") {
      requests = 60;
      unique = 4;
    } else {
      std::cerr << "unknown flag " << arg << "\n";
      return 2;
    }
  }
  if (unique == 0 || requests == 0) {
    std::cerr << "--requests and --unique must be positive\n";
    return 2;
  }

  std::vector<Instance> instances;
  for (std::size_t u = 0; u < unique; ++u) {
    Rng rng(1000 + u);
    instances.push_back(Instance{
        paper::chain(rng),
        Platform::homogeneous(paper::kProcessorCount, paper::kHomSpeed,
                              paper::kProcessorFailureRate, paper::kBandwidth,
                              paper::kLinkFailureRate,
                              paper::kMaxReplication)});
  }

  // Rank 0 (the driver's side) and rank 1 (the remote owner) of a
  // loopback world of two.
  service::ServiceConfig config;
  config.threads = threads;
  config.max_queue_depth = requests + 1;
  service::SolveService local(config);
  service::SolveService remote(config);
  ThreadPool server_pool(2);
  auto server = prts::net::FrameServer::start(
      0, service::make_fabric_handler(remote), server_pool);
  if (!server) {
    std::cerr << "cannot open a loopback listener\n";
    return 1;
  }
  service::RouterConfig router_config;
  router_config.world_size = 2;
  router_config.rank = 0;
  router_config.peers = {{"127.0.0.1", 1},
                         {"127.0.0.1", server->port()}};
  service::ShardRouter router(local, router_config);

  std::size_t solved = 0;
  const double cold_seconds =
      run_pass(router, instances, requests, solver, solved);
  const double warm_seconds =
      run_pass(router, instances, requests, solver, solved);
  if (solved != 2 * requests) {
    std::cerr << "warning: " << (2 * requests - solved) << "/"
              << 2 * requests << " requests not solved\n";
  }

  const double cold_rps = static_cast<double>(requests) / cold_seconds;
  const double warm_rps = static_cast<double>(requests) / warm_seconds;
  const service::RouterStats stats = router.stats();
  const double forward_share =
      static_cast<double>(stats.forwarded) /
      static_cast<double>(stats.forwarded + stats.local);

  std::cout << "fabric throughput (world 2, loopback): " << requests
            << " requests over " << unique << " unique instances, solver "
            << solver << "\n"
            << "  cold pass  " << cold_rps << " req/s\n"
            << "  warm pass  " << warm_rps << " req/s\n"
            << "  forwarded  " << stats.forwarded << " (hits "
            << stats.forward_hits << "), local " << stats.local << "\n";

  std::ofstream out(out_path);
  if (!out) {
    std::cerr << "cannot write " << out_path << "\n";
    return 1;
  }
  out << "{\"benchmark\":\"fabric_throughput\",\"world\":2,\"solver\":\""
      << solver << "\",\"requests\":" << requests
      << ",\"unique_instances\":" << unique << ",\"threads\":" << threads
      << ",\"cold_seconds\":" << cold_seconds << ",\"cold_rps\":" << cold_rps
      << ",\"warm_seconds\":" << warm_seconds << ",\"warm_rps\":" << warm_rps
      << ",\"forwarded\":" << stats.forwarded
      << ",\"forward_hits\":" << stats.forward_hits
      << ",\"local\":" << stats.local
      << ",\"forward_share\":" << forward_share << "}\n";
  return 0;
}
