// Robustness study: how do Heur-L / Heur-P behave away from the paper's
// uniform workload distribution? For each chain shape we report, at fixed
// paper-style bounds, the fraction of instances each heuristic solves and
// its geometric-mean failure ratio to the exact optimum.
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <iomanip>
#include <iostream>

#include "core/exact.hpp"
#include "core/heuristics.hpp"
#include "model/generator.hpp"

int main(int argc, char** argv) {
  using namespace prts;
  std::size_t instances = 100;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--instances") == 0 && i + 1 < argc) {
      instances = static_cast<std::size_t>(std::atoi(argv[++i]));
    } else if (std::strcmp(argv[i], "--quick") == 0) {
      instances = 15;
    }
  }
  const Platform platform = paper::hom_platform();
  const double period_bound = 250.0;
  const double latency_bound = 900.0;

  struct ShapeCase {
    ChainShape shape;
    const char* name;
  };
  const ShapeCase shapes[] = {
      {ChainShape::kUniform, "uniform"},
      {ChainShape::kIncreasing, "increasing"},
      {ChainShape::kDecreasing, "decreasing"},
      {ChainShape::kHotspot, "hotspot"},
      {ChainShape::kCommHeavy, "comm-heavy"},
  };

  std::cout << "# Workload-shape robustness (P <= " << period_bound
            << ", L <= " << latency_bound << ", " << instances
            << " instances per shape)\n";
  std::cout << std::setw(12) << "shape" << std::setw(8) << "exact"
            << std::setw(8) << "HeurL" << std::setw(8) << "HeurP"
            << std::setw(16) << "HeurL/opt fail" << std::setw(16)
            << "HeurP/opt fail" << "\n";
  for (const ShapeCase& shape_case : shapes) {
    Rng rng(31415);
    std::size_t exact_solved = 0;
    std::size_t l_solved = 0;
    std::size_t p_solved = 0;
    double l_log_ratio = 0.0;
    std::size_t l_ratio_count = 0;
    double p_log_ratio = 0.0;
    std::size_t p_ratio_count = 0;
    for (std::size_t inst = 0; inst < instances; ++inst) {
      const TaskChain chain =
          shaped_chain(rng, paper::kTaskCount, shape_case.shape);
      const HomogeneousExactSolver solver(chain, platform);
      const auto exact =
          solver.best_log_reliability(period_bound, latency_bound);
      if (exact) ++exact_solved;
      HeuristicOptions options;
      options.period_bound = period_bound;
      options.latency_bound = latency_bound;
      const auto heur_l =
          run_heuristic(chain, platform, HeuristicKind::kHeurL, options);
      const auto heur_p =
          run_heuristic(chain, platform, HeuristicKind::kHeurP, options);
      if (heur_l) {
        ++l_solved;
        if (exact) {
          l_log_ratio += std::log(heur_l->metrics.failure /
                                  (-std::expm1(*exact)));
          ++l_ratio_count;
        }
      }
      if (heur_p) {
        ++p_solved;
        if (exact) {
          p_log_ratio += std::log(heur_p->metrics.failure /
                                  (-std::expm1(*exact)));
          ++p_ratio_count;
        }
      }
    }
    auto geo = [](double log_sum, std::size_t count) {
      return count == 0 ? 0.0
                        : std::exp(log_sum / static_cast<double>(count));
    };
    std::cout << std::setw(12) << shape_case.name << std::setw(8)
              << exact_solved << std::setw(8) << l_solved << std::setw(8)
              << p_solved << std::setw(16) << std::scientific
              << std::setprecision(2) << geo(l_log_ratio, l_ratio_count)
              << std::setw(16) << geo(p_log_ratio, p_ratio_count)
              << std::defaultfloat << "\n";
  }
  std::cout << "# Reading: Heur-P stays near-optimal on every shape. "
               "Heur-L is competitive exactly where communication costs "
               "drive the objectives (comm-heavy) or works are light "
               "(hotspot), and degrades by orders of magnitude where load "
               "balance matters and cheap-communication cuts are "
               "uninformative (uniform, ramped works). Ramped shapes "
               "solve rarely at these common bounds; their ratio columns "
               "average few instances.\n";
  return 0;
}
