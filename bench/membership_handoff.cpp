// Elastic-membership availability bench: a 3-rank elastic fleet (real
// loopback TCP, consistent-hash ring) serves a seeded open-loop arrival
// stream while the fleet is reshaped mid-run — a 4th rank joins (its
// ring slice streams over as handoff chunks) and an original rank is
// retired outright (silence -> suspect -> dead, epoch bump). The
// headline numbers are availability (answered / offered) and the p99
// latency measured ACROSS the join+death window, plus the handoff
// volume that made the reshape cheap. The run fails (exit 1) when
// availability drops below 99% — the elasticity claim, enforced.
//
//   membership_handoff [--rate R] [--duration S] [--unique U]
//                      [--quick] [--out PATH]
#include <atomic>
#include <chrono>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "fabric_harness.hpp"
#include "load/arrivals.hpp"
#include "load/generator.hpp"
#include "model/generator.hpp"

namespace {

using namespace prts;
using service::testing::FabricHarness;

FabricHarness::Options harness_options() {
  FabricHarness::Options options;
  options.world = 3;
  options.elastic = true;
  options.service.threads = 2;
  options.router.client.connect_timeout_seconds = 1.0;
  options.router.client.reply_timeout_seconds = 5.0;
  options.router.client.backoff_initial_seconds = 0.05;
  options.router.heartbeat_interval_seconds = 0.05;
  options.router.membership.suspect_after_seconds = 0.4;
  options.router.membership.dead_after_seconds = 0.8;
  return options;
}

}  // namespace

int main(int argc, char** argv) {
  double rate = 120.0;
  double duration_seconds = 5.0;
  std::size_t unique = 8;
  std::string out_path = "BENCH_membership.json";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> std::string {
      return i + 1 < argc ? argv[++i] : "";
    };
    if (arg == "--rate") {
      rate = std::stod(next());
    } else if (arg == "--duration") {
      duration_seconds = std::stod(next());
    } else if (arg == "--unique") {
      unique = std::stoul(next());
    } else if (arg == "--out") {
      out_path = next();
    } else if (arg == "--quick") {
      rate = 80.0;
      duration_seconds = 3.0;
    } else {
      std::cerr << "unknown flag " << arg << "\n";
      return 2;
    }
  }
  if (rate <= 0.0 || duration_seconds <= 0.0 || unique == 0) {
    std::cerr << "--rate, --duration and --unique must be positive\n";
    return 2;
  }

  FabricHarness harness(harness_options());
  // Resolved before the fleet grows: add_rank() appends to the
  // harness's rank vector, which concurrent threads must not walk.
  service::ShardRouter& router0 = harness.router(0);
  service::ShardRouter& router2 = harness.router(2);

  std::vector<Instance> instances;
  for (std::size_t u = 0; u < unique; ++u) {
    Rng rng(4200 + u);
    ChainConfig chain_config;
    chain_config.task_count = 8;
    instances.push_back(Instance{
        random_chain(rng, chain_config),
        Platform::homogeneous(4, paper::kHomSpeed,
                              paper::kProcessorFailureRate, paper::kBandwidth,
                              paper::kLinkFailureRate,
                              paper::kMaxReplication)});
  }

  // The reshape script: the join lands ~30% in, the death ~60% in —
  // both inside the measured window.
  std::atomic<std::size_t> joined_rank{0};
  std::thread reshaper([&] {
    std::this_thread::sleep_for(
        std::chrono::duration<double>(0.3 * duration_seconds));
    joined_rank.store(harness.add_rank());
    std::this_thread::sleep_for(
        std::chrono::duration<double>(0.3 * duration_seconds));
    harness.retire(1);
  });

  load::ArrivalConfig arrival_config;
  arrival_config.rate = rate;
  arrival_config.duration_seconds = duration_seconds;
  arrival_config.key_count = unique;
  arrival_config.seed = 53;
  const load::LoadTrace trace = load::generate_arrivals(arrival_config);
  const load::RunResult result = load::run_open_loop(
      trace, instances, [&router0](service::SolveRequest request) {
        return router0.submit(std::move(request));
      });
  reshaper.join();
  harness.wait_for_members(3);

  const double availability =
      result.submitted == 0
          ? 0.0
          : static_cast<double>(result.answered + result.rejected) /
                static_cast<double>(result.submitted);
  const double p50 = result.quantile(0.50);
  const double p99 = result.quantile(0.99);

  const service::MembershipStats stats0 = router0.membership_stats();
  const service::MembershipStats stats2 = router2.membership_stats();
  const service::MembershipStats statsj =
      harness.router(joined_rank.load()).membership_stats();
  const std::uint64_t handoff_sent =
      stats0.handoff_entries_sent + stats2.handoff_entries_sent;

  std::cout << "membership handoff (elastic world 3 -> 4 -> 3, loopback): "
            << result.submitted << " offered at " << rate << "/s over "
            << duration_seconds << " s with one join and one death\n"
            << "  availability " << availability * 100.0 << "% ("
            << result.answered << " answered, " << result.errors
            << " errors, " << result.unresolved << " unresolved)\n"
            << "  latency p50 " << p50 * 1e3 << " ms, p99 " << p99 * 1e3
            << " ms (from scheduled arrival)\n"
            << "  handoff " << handoff_sent << " entries streamed out, "
            << statsj.handoff_entries_received
            << " received by the joiner; final epoch " << stats0.epoch
            << ", " << stats0.members << " members\n";

  std::ofstream out(out_path);
  if (!out) {
    std::cerr << "cannot write " << out_path << "\n";
    return 1;
  }
  out << "{\"benchmark\":\"membership_handoff\",\"world_initial\":3"
      << ",\"rate_per_s\":" << rate
      << ",\"duration_seconds\":" << duration_seconds
      << ",\"unique_instances\":" << unique
      << ",\"submitted\":" << result.submitted
      << ",\"answered\":" << result.answered
      << ",\"rejected\":" << result.rejected
      << ",\"errors\":" << result.errors
      << ",\"unresolved\":" << result.unresolved
      << ",\"availability\":" << availability
      << ",\"latency_p50_seconds\":" << p50
      << ",\"latency_p99_seconds\":" << p99
      << ",\"handoff_entries_sent\":" << handoff_sent
      << ",\"handoff_entries_received\":" << statsj.handoff_entries_received
      << ",\"deaths_seen\":" << stats0.deaths
      << ",\"final_epoch\":" << stats0.epoch
      << ",\"final_members\":" << stats0.members << "}\n";

  // The elasticity bar: a reshaped fleet is still a fleet. Enforced
  // here so a regression fails `--target bench`, not just a dashboard.
  if (availability < 0.99) {
    std::cerr << "FAIL: availability " << availability * 100.0
              << "% < 99% through the join+death window\n";
    return 1;
  }
  if (result.unresolved != 0) {
    std::cerr << "FAIL: " << result.unresolved << " stuck waiters\n";
    return 1;
  }
  return 0;
}
