// Baseline comparison motivating interval mappings (Section 1): against
// one-to-one mappings (one task per interval), interval mappings reduce
// communications (latency, reliability) and free processors for
// replication — and they exist even when n > p, where one-to-one is
// impossible. Uses n = 8 tasks on p = 10 processors so both classes are
// feasible.
#include <cstdlib>
#include <cstring>
#include <iomanip>
#include <iostream>

#include "common/stats.hpp"
#include "core/baseline.hpp"
#include "core/reliability_dp.hpp"
#include "eval/evaluation.hpp"
#include "model/generator.hpp"

int main(int argc, char** argv) {
  using namespace prts;
  std::size_t instances = 100;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--instances") == 0 && i + 1 < argc) {
      instances = static_cast<std::size_t>(std::atoi(argv[++i]));
    } else if (std::strcmp(argv[i], "--quick") == 0) {
      instances = 10;
    }
  }

  const Platform platform = paper::hom_platform();
  Rng rng(909);
  RunningStats failure_ratio;    // one-to-one / interval
  RunningStats latency_ratio;
  RunningStats period_ratio;
  for (std::size_t inst = 0; inst < instances; ++inst) {
    ChainConfig config;
    config.task_count = 8;
    const TaskChain chain = random_chain(rng, config);
    const auto one_to_one = one_to_one_mapping(chain, platform);
    const auto interval = optimize_reliability(chain, platform);
    const MappingMetrics interval_metrics =
        evaluate(chain, platform, interval.mapping);
    if (!one_to_one) continue;
    failure_ratio.add(one_to_one->metrics.failure /
                      interval_metrics.failure);
    latency_ratio.add(one_to_one->metrics.worst_latency /
                      interval_metrics.worst_latency);
    period_ratio.add(one_to_one->metrics.worst_period /
                     interval_metrics.worst_period);
  }

  std::cout << "# Baseline: one-to-one mapping vs interval mapping "
               "(Algorithm 1 optimum), " << instances
            << " instances, n=8 tasks, p=10 processors\n";
  std::cout << std::fixed << std::setprecision(2);
  std::cout << "failure(one-to-one)/failure(interval): mean "
            << std::scientific << std::setprecision(3)
            << failure_ratio.mean() << std::defaultfloat << " (min "
            << failure_ratio.min() << ", max " << failure_ratio.max()
            << ")\n" << std::fixed << std::setprecision(2);
  std::cout << "latency ratio:                        mean "
            << latency_ratio.mean() << "\n";
  std::cout << "period ratio:                         mean "
            << period_ratio.mean() << "\n";
  std::cout << "# Reading: one-to-one pays every communication and can "
               "only replicate with the processors left over (10 procs, "
               "8 tasks -> almost none), so its failure probability is "
               "orders of magnitude above the interval optimum's; its "
               "only advantage is the smaller period (tiny intervals), "
               "the trade-off that motivates bounding the period rather "
               "than forcing one-to-one.\n";
  return 0;
}
