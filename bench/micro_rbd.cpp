// Microbenchmarks of the five RBD reliability evaluators on mapping RBDs:
// Eq. (9) closed form, SP-tree evaluation, subset DP (exact, no routing),
// BDD (exact, general), minimal-cut approximation, and the exponential
// brute force — the paper's Section 4 complexity discussion in numbers.
#include <benchmark/benchmark.h>

#include "eval/evaluation.hpp"
#include "model/generator.hpp"
#include "rbd/bdd.hpp"
#include "rbd/brute_force.hpp"
#include "rbd/builder.hpp"
#include "rbd/chain_dp.hpp"
#include "rbd/mincut.hpp"

namespace {

using namespace prts;

struct Instance {
  TaskChain chain;
  Platform platform;
  Mapping mapping;
};

/// m intervals, each replicated `k` times, singleton-ish split of a
/// random chain with m*k processors.
Instance mapping_instance(std::size_t m, unsigned k) {
  Rng rng(4242);
  ChainConfig config;
  config.task_count = m;
  TaskChain chain = random_chain(rng, config);
  Platform platform =
      Platform::homogeneous(m * k, 1.0, 1e-4, 1.0, 1e-4, k);
  std::vector<std::vector<std::size_t>> procs;
  std::size_t next = 0;
  for (std::size_t j = 0; j < m; ++j) {
    std::vector<std::size_t> set(k);
    for (unsigned r = 0; r < k; ++r) set[r] = next++;
    procs.push_back(std::move(set));
  }
  Mapping mapping(IntervalPartition::singletons(m), std::move(procs));
  return Instance{std::move(chain), std::move(platform),
                  std::move(mapping)};
}

void BM_Equation9(benchmark::State& state) {
  const auto inst = mapping_instance(
      static_cast<std::size_t>(state.range(0)), 3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        mapping_reliability(inst.chain, inst.platform, inst.mapping));
  }
}
BENCHMARK(BM_Equation9)->RangeMultiplier(2)->Range(2, 64);

void BM_SpTreeBuildAndEval(benchmark::State& state) {
  const auto inst = mapping_instance(
      static_cast<std::size_t>(state.range(0)), 3);
  for (auto _ : state) {
    const auto sp =
        rbd::build_routing_sp(inst.chain, inst.platform, inst.mapping);
    benchmark::DoNotOptimize(sp.reliability());
  }
}
BENCHMARK(BM_SpTreeBuildAndEval)->RangeMultiplier(2)->Range(2, 64);

void BM_NoRoutingSubsetDp(benchmark::State& state) {
  const auto inst = mapping_instance(
      static_cast<std::size_t>(state.range(0)), 3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rbd::no_routing_reliability(
        inst.chain, inst.platform, inst.mapping));
  }
}
BENCHMARK(BM_NoRoutingSubsetDp)->RangeMultiplier(2)->Range(2, 64);

void BM_NoRoutingBdd(benchmark::State& state) {
  const auto inst = mapping_instance(
      static_cast<std::size_t>(state.range(0)), 3);
  const auto graph = rbd::build_no_routing_graph(inst.chain, inst.platform,
                                                 inst.mapping);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rbd::bdd_reliability(graph));
  }
}
BENCHMARK(BM_NoRoutingBdd)->DenseRange(2, 8, 2);

void BM_NoRoutingMinCutApprox(benchmark::State& state) {
  const auto inst = mapping_instance(
      static_cast<std::size_t>(state.range(0)), 2);
  const auto graph = rbd::build_no_routing_graph(inst.chain, inst.platform,
                                                 inst.mapping);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rbd::mincut_reliability_approximation(graph));
  }
}
BENCHMARK(BM_NoRoutingMinCutApprox)->DenseRange(2, 5, 1);

void BM_NoRoutingBruteForce(benchmark::State& state) {
  const auto inst = mapping_instance(
      static_cast<std::size_t>(state.range(0)), 2);
  const auto graph = rbd::build_no_routing_graph(inst.chain, inst.platform,
                                                 inst.mapping);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rbd::brute_force_reliability(graph));
  }
}
BENCHMARK(BM_NoRoutingBruteForce)->DenseRange(2, 4, 1);

}  // namespace

BENCHMARK_MAIN();
