// Incremental re-solve on a bound-ladder campaign: the paper's Figures
// 6-15 sweeps re-solve one instance under a ladder of period bounds.
// With near-miss reuse off every step pays a full prepare + solve; with
// it on, steps whose optimum is unchanged are *dominating hits* from
// the bounds-monotone index (bit-identical, zero solver work) and the
// remaining solves start from warm floors. Emits BENCH_incremental.json
// recording solver invocations and wall time for both modes, plus an
// ILP section where the reuse is warm-started pruning rather than
// outright hits.
//
//   incremental_resolve [--steps N] [--seed S] [--quick] [--out PATH]
//
// The output must be byte-identical between modes (the WarmStart and
// bounds-monotone contracts); the driver verifies that and reports it.
#include <chrono>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "model/generator.hpp"
#include "service/engine.hpp"
#include "solver/registry.hpp"

namespace {

using namespace prts;

struct LadderRun {
  std::vector<service::SolveReply> replies;
  double seconds = 0.0;
  service::EngineStats stats;
};

/// One paced sweep: each step waits for its reply before the next is
/// submitted — the access pattern of a campaign driver walking a bound
/// axis (burst submission would exercise the in-batch re-probe instead;
/// both collapse, this shape keeps the two modes maximally comparable).
LadderRun run_ladder(const Instance& instance, const std::string& solver,
                     const std::vector<double>& periods, bool near_miss) {
  service::ServiceConfig config;
  config.threads = 1;
  config.near_miss = near_miss;
  service::SolveService engine(config);

  LadderRun run;
  const auto start = std::chrono::steady_clock::now();
  for (const double period : periods) {
    service::SolveRequest request{instance, solver,
                                  solver::Bounds{period, 1e18}};
    run.replies.push_back(engine.submit(std::move(request)).get());
  }
  run.seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  run.stats = engine.stats();
  return run;
}

bool identical_output(const LadderRun& a, const LadderRun& b) {
  if (a.replies.size() != b.replies.size()) return false;
  for (std::size_t i = 0; i < a.replies.size(); ++i) {
    const service::SolveReply& x = a.replies[i];
    const service::SolveReply& y = b.replies[i];
    if (x.status != y.status) return false;
    if (x.solution.has_value() != y.solution.has_value()) return false;
    if (x.solution &&
        (!(x.solution->mapping == y.solution->mapping) ||
         !(x.solution->metrics == y.solution->metrics))) {
      return false;
    }
  }
  return true;
}

void write_section(std::ostream& out, const char* name,
                   const LadderRun& cold, const LadderRun& near) {
  const double ratio =
      near.stats.solver_invocations == 0
          ? static_cast<double>(cold.stats.solver_invocations)
          : static_cast<double>(cold.stats.solver_invocations) /
                static_cast<double>(near.stats.solver_invocations);
  out << "\"" << name << "\":{\"cold\":{\"solver_invocations\":"
      << cold.stats.solver_invocations << ",\"seconds\":" << cold.seconds
      << "},\"near_miss\":{\"solver_invocations\":"
      << near.stats.solver_invocations
      << ",\"dominating_hits\":" << near.stats.dominating_hits
      << ",\"warm_started\":" << near.stats.warm_started
      << ",\"seconds\":" << near.seconds << "}"
      << ",\"invocation_ratio\":" << ratio
      << ",\"speedup\":" << cold.seconds / near.seconds
      << ",\"identical_output\":"
      << (identical_output(cold, near) ? "true" : "false") << "}";
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t steps = 20;
  std::uint64_t seed = 1;
  std::string out_path = "BENCH_incremental.json";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> std::string {
      return i + 1 < argc ? argv[++i] : "";
    };
    if (arg == "--steps") {
      steps = std::stoul(next());
    } else if (arg == "--seed") {
      seed = std::stoull(next());
    } else if (arg == "--out") {
      out_path = next();
    } else if (arg == "--quick") {
      steps = 10;
    } else {
      std::cerr << "unknown flag " << arg << "\n";
      return 2;
    }
  }
  if (steps < 2) {
    std::cerr << "--steps must be >= 2\n";
    return 2;
  }

  // The paper's Section 8 instance shape: n = 15 tasks on the
  // homogeneous 10-processor platform (exact prepare enumerates 2^14
  // partitions — the cost a dominating hit saves in full).
  Rng rng(seed);
  const Instance instance{
      paper::chain(rng),
      Platform::homogeneous(paper::kProcessorCount, paper::kHomSpeed,
                            paper::kProcessorFailureRate, paper::kBandwidth,
                            paper::kLinkFailureRate, paper::kMaxReplication)};

  // The sweep axis, Figure-6 style: from well above the unconstrained
  // optimum's period (where every step shares one optimum) down into
  // the constrained region (where optima shift and the tail goes
  // infeasible) — descending, so earlier answers dominate later steps.
  const auto exact = solver::SolverRegistry::builtin().find("exact");
  const auto free_opt = exact->solve(instance, {});
  if (!free_opt) {
    std::cerr << "unbounded solve failed\n";
    return 1;
  }
  const double top = free_opt->metrics.worst_period * 4.0;
  const double bottom = free_opt->metrics.worst_period * 0.8;
  std::vector<double> periods;
  for (std::size_t i = 0; i < steps; ++i) {
    periods.push_back(top - (top - bottom) * static_cast<double>(i) /
                                static_cast<double>(steps - 1));
  }

  const LadderRun exact_cold = run_ladder(instance, "exact", periods, false);
  const LadderRun exact_near = run_ladder(instance, "exact", periods, true);

  // The ILP ladder ascends (tightest first): every answer is a feasible
  // incumbent for the next, looser step, so the reuse shows up as
  // warm-started branch-and-bound pruning, not dominating hits.
  std::vector<double> ascending(periods.rbegin(), periods.rend());
  const LadderRun ilp_cold = run_ladder(instance, "ilp", ascending, false);
  const LadderRun ilp_near = run_ladder(instance, "ilp", ascending, true);

  const double ratio =
      static_cast<double>(exact_cold.stats.solver_invocations) /
      static_cast<double>(
          std::max<std::uint64_t>(1, exact_near.stats.solver_invocations));
  std::cout << "incremental re-solve: " << steps
            << "-step period ladder, paper instance (seed " << seed << ")\n"
            << "  exact cold       " << exact_cold.stats.solver_invocations
            << " invocations, " << exact_cold.seconds << " s\n"
            << "  exact near-miss  " << exact_near.stats.solver_invocations
            << " invocations (" << exact_near.stats.dominating_hits
            << " dominating hits), " << exact_near.seconds << " s\n"
            << "  invocation ratio " << ratio << "x, wall speedup "
            << exact_cold.seconds / exact_near.seconds << "x\n"
            << "  ilp warm-started " << ilp_near.stats.warm_started << "/"
            << ilp_near.stats.solver_invocations << " solves, wall "
            << ilp_cold.seconds << " s -> " << ilp_near.seconds << " s\n"
            << "  identical output "
            << (identical_output(exact_cold, exact_near) &&
                        identical_output(ilp_cold, ilp_near)
                    ? "yes"
                    : "NO — CONTRACT BREACH")
            << "\n";

  std::ofstream out(out_path);
  if (!out) {
    std::cerr << "cannot write " << out_path << "\n";
    return 1;
  }
  out << "{\"benchmark\":\"incremental_resolve\",\"steps\":" << steps
      << ",\"seed\":" << seed << ",";
  write_section(out, "exact_ladder", exact_cold, exact_near);
  out << ",";
  write_section(out, "ilp_ladder", ilp_cold, ilp_near);
  out << "}\n";

  // The acceptance bar: >= 3x fewer full solver invocations with
  // byte-identical output. Fail loudly if a regression eats it.
  if (!identical_output(exact_cold, exact_near) ||
      !identical_output(ilp_cold, ilp_near)) {
    std::cerr << "FAIL: near-miss reuse changed the output\n";
    return 1;
  }
  if (ratio < 3.0) {
    std::cerr << "FAIL: invocation ratio " << ratio << " < 3.0\n";
    return 1;
  }
  return 0;
}
