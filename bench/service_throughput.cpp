// Service throughput on a repeated-instance workload: the same requests
// driven through SolveService with the cache disabled (every request
// pays a full solve) and enabled (everything after the first sight of
// each unique request is a hash lookup). Emits BENCH_service.json so
// the perf trajectory records cache wins.
//
//   service_throughput [--requests N] [--unique U] [--solver NAME]
//                      [--threads T] [--quick] [--out PATH]
//
// The workload models a design-space exploration front end: U distinct
// (instance, bounds) probes, cycled N times — the access pattern the
// ROADMAP's "heavy traffic" framing implies, where most requests are
// isomorphic to ones already answered.
#include <chrono>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "model/generator.hpp"
#include "service/engine.hpp"

namespace {

using namespace prts;

double run_workload(const std::vector<Instance>& instances,
                    std::size_t requests, const std::string& solver,
                    std::size_t threads, bool cache_enabled,
                    double& hit_rate) {
  service::ServiceConfig config;
  config.threads = threads;
  config.cache_enabled = cache_enabled;
  config.max_queue_depth = requests + 1;
  service::SolveService engine(config);

  // Sequential client: one request outstanding at a time. Submitting
  // everything at once would let in-flight *deduplication* absorb the
  // repeats in both runs — here every repeat arrives after its twin
  // completed, which is exactly the traffic shape the cache serves.
  const auto start = std::chrono::steady_clock::now();
  std::size_t solved = 0;
  for (std::size_t r = 0; r < requests; ++r) {
    service::SolveRequest request{instances[r % instances.size()], solver,
                                  {}};
    if (engine.submit(std::move(request)).get().status ==
        service::ReplyStatus::kSolved) {
      ++solved;
    }
  }
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  if (solved != requests) {
    std::cerr << "warning: " << (requests - solved) << "/" << requests
              << " requests not solved\n";
  }
  hit_rate = engine.cache_stats().hit_rate();
  return seconds;
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t requests = 200;
  std::size_t unique = 4;
  std::size_t threads = 0;
  std::string solver = "exact";
  std::string out_path = "BENCH_service.json";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> std::string {
      return i + 1 < argc ? argv[++i] : "";
    };
    if (arg == "--requests") {
      requests = std::stoul(next());
    } else if (arg == "--unique") {
      unique = std::stoul(next());
    } else if (arg == "--threads") {
      threads = std::stoul(next());
    } else if (arg == "--solver") {
      solver = next();
    } else if (arg == "--out") {
      out_path = next();
    } else if (arg == "--quick") {
      requests = 60;
      unique = 3;
    } else {
      std::cerr << "unknown flag " << arg << "\n";
      return 2;
    }
  }
  if (unique == 0 || requests == 0) {
    std::cerr << "--requests and --unique must be positive\n";
    return 2;
  }

  // U paper-distribution instances on the homogeneous Section 8
  // platform (every built-in solver supports it).
  std::vector<Instance> instances;
  for (std::size_t u = 0; u < unique; ++u) {
    Rng rng(1000 + u);
    instances.push_back(Instance{
        paper::chain(rng),
        Platform::homogeneous(paper::kProcessorCount, paper::kHomSpeed,
                              paper::kProcessorFailureRate, paper::kBandwidth,
                              paper::kLinkFailureRate,
                              paper::kMaxReplication)});
  }

  double cold_hits = 0.0;
  double warm_hits = 0.0;
  const double cold_seconds =
      run_workload(instances, requests, solver, threads, false, cold_hits);
  const double warm_seconds =
      run_workload(instances, requests, solver, threads, true, warm_hits);

  const double cold_rps = static_cast<double>(requests) / cold_seconds;
  const double warm_rps = static_cast<double>(requests) / warm_seconds;
  const double speedup = warm_rps / cold_rps;

  std::cout << "service throughput: " << requests << " requests over "
            << unique << " unique instances, solver " << solver << "\n"
            << "  cache disabled  " << cold_rps << " req/s\n"
            << "  cache enabled   " << warm_rps << " req/s (hit rate "
            << warm_hits << ")\n"
            << "  speedup         " << speedup << "x\n";

  std::ofstream out(out_path);
  if (!out) {
    std::cerr << "cannot write " << out_path << "\n";
    return 1;
  }
  out << "{\"benchmark\":\"service_throughput\",\"solver\":\"" << solver
      << "\",\"requests\":" << requests << ",\"unique_instances\":" << unique
      << ",\"threads\":" << threads
      << ",\"cold_seconds\":" << cold_seconds << ",\"cold_rps\":" << cold_rps
      << ",\"warm_seconds\":" << warm_seconds << ",\"warm_rps\":" << warm_rps
      << ",\"warm_hit_rate\":" << warm_hits << ",\"speedup\":" << speedup
      << "}\n";
  return 0;
}
