// Microbenchmarks of the simulation substrate: DES throughput in
// data sets per second and Monte-Carlo sampling throughput (single
// thread vs the pool).
#include <benchmark/benchmark.h>

#include "core/reliability_dp.hpp"
#include "model/generator.hpp"
#include "sim/monte_carlo.hpp"
#include "sim/pipeline_sim.hpp"

namespace {

using namespace prts;

struct Instance {
  TaskChain chain;
  Platform platform;
  Mapping mapping;
};

Instance paper_instance() {
  Rng rng(2718);
  TaskChain chain = paper::chain(rng);
  Platform platform = paper::hom_platform();
  Mapping mapping = optimize_reliability(chain, platform).mapping;
  return Instance{std::move(chain), std::move(platform),
                  std::move(mapping)};
}

void BM_DesDatasets(benchmark::State& state) {
  const Instance inst = paper_instance();
  const auto datasets = static_cast<std::size_t>(state.range(0));
  sim::SimulationConfig config;
  config.dataset_count = datasets;
  config.input_period = 200.0;
  config.seed = 3;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        sim::simulate_pipeline(inst.chain, inst.platform, inst.mapping,
                               config));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(
      state.iterations() * datasets));
}
BENCHMARK(BM_DesDatasets)->RangeMultiplier(4)->Range(64, 4096);

void BM_DesWithFailures(benchmark::State& state) {
  const Instance inst = paper_instance();
  sim::SimulationConfig config;
  config.dataset_count = 1024;
  config.input_period = 200.0;
  config.inject_failures = true;
  config.seed = 5;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        sim::simulate_pipeline(inst.chain, inst.platform, inst.mapping,
                               config));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(
      state.iterations() * 1024));
}
BENCHMARK(BM_DesWithFailures);

void BM_MonteCarloSamples(benchmark::State& state) {
  const Instance inst = paper_instance();
  Rng rng(7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        sim::sample_routing_success(rng, inst.chain, inst.platform,
                                    inst.mapping));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_MonteCarloSamples);

void BM_MonteCarloThreads(benchmark::State& state) {
  const Instance inst = paper_instance();
  const auto threads = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim::estimate_reliability(
        inst.chain, inst.platform, inst.mapping, 20000, 11, true, threads));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(
      state.iterations() * 20000));
}
BENCHMARK(BM_MonteCarloThreads)->DenseRange(1, 2, 1);

}  // namespace

BENCHMARK_MAIN();
