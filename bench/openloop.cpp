// Open-loop sustainable-throughput-at-SLO on an in-process fabric: a
// 3-rank loopback world (real TCP between ranks) is driven through
// rank 0's router by the open-loop generator, stepping the offered
// Poisson rate to find the highest load at which the latency/error SLO
// still holds. Arrivals are never gated on completions and latency is
// measured from the *scheduled* arrival instant, so the headline
// number is the honest one: the rate beyond which queueing delay (not
// solver cost) breaks the latency bound.
//
// Also asserts the load subsystem's determinism contract: two
// generator runs with the same seed must serialize to byte-identical
// traces (the property that makes a recorded trace replayable as a
// fixed workload artifact).
//
//   openloop [--quick] [--slo SPEC] [--min-rate R] [--max-rate R]
//            [--step-duration S] [--keys K] [--seed S] [--out PATH]
//
// Emits BENCH_openloop.json:
//   {"bench":"openloop","world":3,"slo":"...","trace_deterministic":true,
//    "sustainable_rps_at_slo":<headline>,"steps":[...]}
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "fabric_harness.hpp"
#include "load/arrivals.hpp"
#include "load/generator.hpp"
#include "load/slo.hpp"
#include "model/generator.hpp"

namespace {

using namespace prts;

}  // namespace

int main(int argc, char** argv) {
  std::string slo_text = "p99<=250ms;error_rate<=0.01";
  std::string out_path = "BENCH_openloop.json";
  double min_rate = 50;
  double max_rate = 1600;
  double step_duration = 2.0;
  std::size_t keys = 16;
  std::uint64_t seed = 42;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> std::string {
      return i + 1 < argc ? argv[++i] : "";
    };
    if (arg == "--quick") {
      step_duration = 1.0;
      max_rate = 400;
    } else if (arg == "--slo") {
      slo_text = next();
    } else if (arg == "--min-rate") {
      min_rate = std::stod(next());
    } else if (arg == "--max-rate") {
      max_rate = std::stod(next());
    } else if (arg == "--step-duration") {
      step_duration = std::stod(next());
    } else if (arg == "--keys") {
      keys = std::stoul(next());
    } else if (arg == "--seed") {
      seed = std::stoull(next());
    } else if (arg == "--out") {
      out_path = next();
    } else {
      std::cerr << "unknown flag " << arg << "\n";
      return 2;
    }
  }

  load::SloSpec slo;
  std::string slo_error;
  if (!load::parse_slo(slo_text, slo, &slo_error)) {
    std::cerr << slo_error << "\n";
    return 2;
  }

  // Determinism: same config, byte-identical trace, twice.
  load::ArrivalConfig probe;
  probe.rate = 200;
  probe.duration_seconds = 1.0;
  probe.process = load::Process::kBursty;
  probe.key_count = keys;
  probe.seed = seed;
  const std::string trace_a =
      load::trace_to_string(load::generate_arrivals(probe));
  const std::string trace_b =
      load::trace_to_string(load::generate_arrivals(probe));
  const bool deterministic = trace_a == trace_b && !trace_a.empty();
  if (!deterministic) {
    std::cerr << "FAIL: same-seed arrival traces differ\n";
    return 1;
  }

  std::vector<Instance> instances;
  for (std::size_t k = 0; k < keys; ++k) {
    Rng rng(9000 + k);
    ChainConfig chain_config;
    chain_config.task_count = 10;
    instances.push_back(Instance{
        random_chain(rng, chain_config),
        Platform::homogeneous(4, paper::kHomSpeed,
                              paper::kProcessorFailureRate, paper::kBandwidth,
                              paper::kLinkFailureRate,
                              paper::kMaxReplication)});
  }

  service::testing::FabricHarness::Options options;
  options.world = 3;
  service::testing::FabricHarness fabric(options);
  const load::SubmitFn submit = [&fabric](service::SolveRequest request) {
    return fabric.router(0).submit(std::move(request));
  };

  load::SearchOptions search_options;
  search_options.min_rate = min_rate;
  search_options.max_rate = max_rate;
  std::uint64_t step_seed = seed;
  const auto run_at = [&](double rate) {
    load::ArrivalConfig step;
    step.rate = rate;
    step.duration_seconds = step_duration;
    step.key_count = keys;
    // Fresh arrival randomness per step: a rate retried by bisection
    // must not replay the exact schedule the ramp already measured.
    step.seed = ++step_seed;
    std::cerr << "# openloop step rate=" << rate << "\n";
    return load::run_open_loop(load::generate_arrivals(step), instances,
                               submit);
  };
  const load::SearchResult search =
      load::max_sustainable_rate(run_at, slo, search_options);

  std::ostringstream json;
  json << "{\"bench\":\"openloop\",\"world\":3,\"slo\":\"" << slo_text
       << "\",\"trace_deterministic\":true,\"sustainable_rps_at_slo\":"
       << search.sustainable_rate << ",\"steps\":[";
  bool first = true;
  for (const load::StepOutcome& step : search.steps) {
    if (!first) json << ",";
    first = false;
    json << "{\"rate\":" << step.rate
         << ",\"pass\":" << (step.pass ? "true" : "false")
         << ",\"submitted\":" << step.submitted
         << ",\"answered\":" << step.answered
         << ",\"rejected\":" << step.rejected
         << ",\"errors\":" << step.errors
         << ",\"unresolved\":" << step.unresolved
         << ",\"p50\":" << step.p50 << ",\"p99\":" << step.p99 << "}";
  }
  json << "]}\n";

  std::ofstream out(out_path);
  if (!out) {
    std::cerr << "cannot write " << out_path << "\n";
    return 1;
  }
  out << json.str();
  std::cout << json.str();

  if (search.sustainable_rate <= 0.0) {
    std::cerr << "FAIL: no sustainable rate at SLO " << slo_text << "\n";
    return 1;
  }
  return 0;
}
