// Microbenchmarks of the scenario campaign engine: spec parsing,
// per-job instance materialization, and whole-campaign throughput at 1
// and N worker threads (the scaling headroom of the parallel batch
// path).
#include <benchmark/benchmark.h>

#include "scenario/campaign.hpp"
#include "scenario/emit.hpp"
#include "scenario/spec.hpp"

namespace {

using namespace prts;

scenario::CampaignSpec bench_spec(std::size_t instances) {
  scenario::CampaignSpec spec;
  spec.name = "bench";
  spec.instances = instances;
  spec.seed = 42;
  spec.sweep.kind = scenario::SweepKind::kPeriod;
  spec.sweep.lo = 50.0;
  spec.sweep.hi = 500.0;
  spec.sweep.step = 50.0;
  spec.sweep.fixed = 750.0;
  spec.solvers = {"exact", "heur-l", "heur-p"};
  return spec;
}

void BM_CampaignSpecRoundTrip(benchmark::State& state) {
  const std::string text = scenario::campaign_to_text(bench_spec(100));
  for (auto _ : state) {
    benchmark::DoNotOptimize(scenario::campaign_from_text(text));
  }
}
BENCHMARK(BM_CampaignSpecRoundTrip);

void BM_MaterializeInstance(benchmark::State& state) {
  const scenario::CampaignSpec spec = bench_spec(1);
  std::size_t job = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(scenario::materialize_instance(spec, job++));
  }
}
BENCHMARK(BM_MaterializeInstance);

void BM_CampaignHom(benchmark::State& state) {
  const scenario::CampaignSpec spec =
      bench_spec(static_cast<std::size_t>(state.range(0)));
  scenario::CampaignConfig config;
  config.threads = static_cast<std::size_t>(state.range(1));
  for (auto _ : state) {
    benchmark::DoNotOptimize(scenario::run_campaign(spec, config));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_CampaignHom)
    ->Args({8, 1})
    ->Args({8, 0})
    ->Args({32, 1})
    ->Args({32, 0})
    ->Unit(benchmark::kMillisecond);

void BM_CampaignHet(benchmark::State& state) {
  scenario::CampaignSpec spec =
      bench_spec(static_cast<std::size_t>(state.range(0)));
  spec.platform.kind = scenario::PlatformKind::kHet;
  spec.sweep.lo = 20.0;
  spec.sweep.hi = 150.0;
  spec.sweep.step = 10.0;
  spec.sweep.fixed = 150.0;
  spec.solvers = {"heur-l", "heur-p"};
  scenario::CampaignConfig config;
  config.threads = static_cast<std::size_t>(state.range(1));
  for (auto _ : state) {
    benchmark::DoNotOptimize(scenario::run_campaign(spec, config));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_CampaignHet)
    ->Args({8, 1})
    ->Args({8, 0})
    ->Unit(benchmark::kMillisecond);

void BM_EmitTsv(benchmark::State& state) {
  const scenario::CampaignResult result =
      scenario::run_campaign(bench_spec(8), scenario::CampaignConfig{});
  for (auto _ : state) {
    benchmark::DoNotOptimize(scenario::to_tsv(result.figure));
  }
}
BENCHMARK(BM_EmitTsv);

}  // namespace

BENCHMARK_MAIN();
