// Figure 11: average failure probability vs period bound (L = 3P, homogeneous).
// Reproduces the paper's series; see DESIGN.md section 5 for the mapping.
#include "figure_main.hpp"

int main(int argc, char** argv) {
  return prts::bench::run_figure_main(
      argc, argv, 5.0, prts::exp::Metric::kAvgFailure,
      [](const prts::exp::ExperimentConfig& config, double step) {
        return prts::exp::run_fig_10_11(config, step);
      });
}
