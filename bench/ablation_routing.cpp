// Ablation: what do the routing operations cost, and what do they buy?
//
// The paper inserts routing operations so the RBD stays serial-parallel
// (evaluable in linear time) and cites [17] for the runtime overhead being
// small (+3.88% on average there). Its conclusion asks whether routing
// could be removed given an exact evaluator for general RBDs — which this
// library has (rbd::no_routing_reliability, exact in polynomial time for
// chain-shaped systems). This bench quantifies both sides on the paper's
// instance distribution, using the Algorithm-2 optimum under a period
// bound (an unconstrained optimum is a single interval and never
// communicates, making the comparison vacuous):
//   * latency overhead of the extra communication hop (fault-free DES);
//   * reliability difference between the two communication schemes.
#include <cstdlib>
#include <cstring>
#include <iomanip>
#include <iostream>

#include "common/stats.hpp"
#include "core/period_dp.hpp"
#include "eval/evaluation.hpp"
#include "model/generator.hpp"
#include "rbd/chain_dp.hpp"
#include "sim/pipeline_sim.hpp"

int main(int argc, char** argv) {
  using namespace prts;
  std::size_t instances = 100;
  double period_bound = 150.0;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--instances") == 0 && i + 1 < argc) {
      instances = static_cast<std::size_t>(std::atoi(argv[++i]));
    } else if (std::strcmp(argv[i], "--period") == 0 && i + 1 < argc) {
      period_bound = std::atof(argv[++i]);
    } else if (std::strcmp(argv[i], "--quick") == 0) {
      instances = 10;
    }
  }

  const Platform platform = paper::hom_platform();
  Rng rng(2024);
  RunningStats latency_overhead_pct;
  RunningStats failure_ratio;  // routing failure / no-routing failure
  RunningStats intervals;
  std::size_t no_routing_wins = 0;
  std::size_t skipped = 0;

  std::cout << "# Ablation: routing operations vs direct all-to-all\n";
  std::cout << "# " << instances
            << " paper instances; mapping = Algorithm 2 optimum at P <= "
            << period_bound << "\n";
  for (std::size_t inst = 0; inst < instances; ++inst) {
    const TaskChain chain = paper::chain(rng);
    const auto dp =
        optimize_reliability_period(chain, platform, period_bound);
    if (!dp || dp->mapping.interval_count() < 2) {
      ++skipped;
      continue;
    }
    intervals.add(static_cast<double>(dp->mapping.interval_count()));

    sim::SimulationConfig config;
    config.dataset_count = 1;
    config.input_period = 1e9;
    config.inject_failures = false;
    config.use_routing = true;
    const double lat_routing =
        sim::simulate_pipeline(chain, platform, dp->mapping, config)
            .latency.mean();
    config.use_routing = false;
    const double lat_direct =
        sim::simulate_pipeline(chain, platform, dp->mapping, config)
            .latency.mean();
    latency_overhead_pct.add(100.0 * (lat_routing - lat_direct) /
                             lat_direct);

    const double f_routing = dp->reliability.failure();
    const double f_direct =
        rbd::no_routing_reliability(chain, platform, dp->mapping).failure();
    if (f_direct < f_routing) ++no_routing_wins;
    if (f_direct > 0.0) failure_ratio.add(f_routing / f_direct);
  }

  const std::size_t used = instances - skipped;
  std::cout << std::fixed << std::setprecision(3);
  std::cout << "instances with a multi-interval optimum: " << used << "/"
            << instances << " (avg " << std::setprecision(1)
            << intervals.mean() << " intervals)\n"
            << std::setprecision(3);
  std::cout << "latency overhead of routing:   mean "
            << latency_overhead_pct.mean() << "%  (min "
            << latency_overhead_pct.min() << "%, max "
            << latency_overhead_pct.max() << "%)\n";
  std::cout << "failure(routing)/failure(direct): mean "
            << failure_ratio.mean() << "  (min " << failure_ratio.min()
            << ", max " << failure_ratio.max() << ")\n";
  std::cout << "instances where direct all-to-all is more reliable: "
            << no_routing_wins << "/" << used << "\n";
  std::cout << "# Reading: routing costs one extra hop of latency per "
               "boundary (cf. the +3.88% average of [17]) and makes each "
               "message cross two links, but keeps the reliability "
               "evaluation linear for arbitrary topologies; for "
               "chain-shaped systems the subset-DP evaluator makes the "
               "no-routing scheme exactly evaluable as well, answering "
               "the paper's Section 9 question for this system class.\n";
  return 0;
}
