// Profiler A/B on the warm path: telemetry is ON in BOTH arms (registry,
// tracer, flight-recorder counters — the PR-7 baseline), and only the
// in-process profiler flips via Profiler::set_enabled. The delta is
// therefore the profiler's own marginal cost: the dual-clock reads, the
// thread-local allocation deltas and the ProfiledMutex probes on the
// engine queue, cache shards and thread pool. Acceptance bar:
// overhead < 5% on the concurrent warm path.
//
// The instrumented arm additionally reports what the profiler is FOR:
//   - allocations per warm cache hit (a dedicated warm phase measured
//     via engine_request_allocs_total deltas — the number the
//     zero-allocation hot-path rebuild must drive down),
//   - the per-component cpu/wall/blocked rollup,
//   - the top contended mutex with its summed wait time.
//
//   profile_overhead [--requests N] [--unique U] [--solver NAME]
//                    [--threads T] [--clients C] [--quick] [--out PATH]
#include <chrono>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "model/generator.hpp"
#include "obs/profiler.hpp"
#include "obs/trace.hpp"
#include "service/engine.hpp"

namespace {

using namespace prts;

/// Closed-loop concurrent warm-path run against `engine`: `clients`
/// threads split `requests` between them, cycling the instance set so
/// after the first lap every request is a cache hit. Returns wall
/// seconds.
double run_clients(service::SolveService& engine,
                   const std::vector<Instance>& instances,
                   std::size_t requests, const std::string& solver,
                   std::size_t clients) {
  const auto start = std::chrono::steady_clock::now();
  std::vector<std::thread> pool;
  for (std::size_t c = 0; c < clients; ++c) {
    pool.emplace_back([&, c] {
      const std::size_t share =
          requests / clients + (c < requests % clients ? 1 : 0);
      for (std::size_t r = 0; r < share; ++r) {
        service::SolveRequest request{
            instances[(c + r * clients) % instances.size()], solver, {}};
        engine.submit(std::move(request)).get();
      }
    });
  }
  for (std::thread& client : pool) client.join();
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t requests = 5000;
  std::size_t unique = 4;
  std::size_t threads = 0;
  std::size_t clients = 8;
  std::string solver = "heur-p";
  std::string out_path = "BENCH_profile.json";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> std::string {
      return i + 1 < argc ? argv[++i] : "";
    };
    if (arg == "--requests") {
      requests = std::stoul(next());
    } else if (arg == "--unique") {
      unique = std::stoul(next());
    } else if (arg == "--threads") {
      threads = std::stoul(next());
    } else if (arg == "--clients") {
      clients = std::stoul(next());
    } else if (arg == "--solver") {
      solver = next();
    } else if (arg == "--out") {
      out_path = next();
    } else if (arg == "--quick") {
      requests = 2000;
      unique = 3;
      clients = 4;
    } else {
      std::cerr << "unknown flag " << arg << "\n";
      return 2;
    }
  }
  if (unique == 0 || requests == 0 || clients == 0) {
    std::cerr << "--requests, --unique and --clients must be positive\n";
    return 2;
  }

  std::vector<Instance> instances;
  for (std::size_t u = 0; u < unique; ++u) {
    Rng rng(1000 + u);
    instances.push_back(Instance{
        paper::chain(rng),
        Platform::homogeneous(paper::kProcessorCount, paper::kHomSpeed,
                              paper::kProcessorFailureRate, paper::kBandwidth,
                              paper::kLinkFailureRate,
                              paper::kMaxReplication)});
  }

  const auto build_engine = [&](obs::Telemetry& telemetry) {
    service::ServiceConfig config;
    config.threads = threads;
    config.max_queue_depth = 2 * requests + clients + 1;
    config.telemetry = &telemetry;
    return std::make_unique<service::SolveService>(config);
  };

  // A: telemetry on, profiler off — the baseline every earlier bench
  // already holds to. set_enabled BEFORE the engine exists so not one
  // request pays for a sample. Each arm runs `reps` laps on one warm
  // engine and keeps its best lap: the warm path is microseconds per
  // request, so scheduler noise on a single lap would swamp a 5% gate.
  constexpr int kReps = 5;
  double off_seconds = 0.0;
  {
    obs::Telemetry off_telemetry;
    off_telemetry.profiler.set_enabled(false);
    auto off_engine = build_engine(off_telemetry);
    run_clients(*off_engine, instances, requests, solver, clients);  // warm
    for (int rep = 0; rep < kReps; ++rep) {
      const double lap =
          run_clients(*off_engine, instances, requests, solver, clients);
      if (rep == 0 || lap < off_seconds) off_seconds = lap;
    }
  }

  // B: profiler on — every request's allocations tallied exactly, the
  // fast path dual-clock sampled 1-in-N, every batch/wire span sampled,
  // every probed lock counted.
  obs::Telemetry telemetry;
  auto engine = build_engine(telemetry);
  run_clients(*engine, instances, requests, solver, clients);  // warm
  double on_seconds = 0.0;
  for (int rep = 0; rep < kReps; ++rep) {
    const double lap =
        run_clients(*engine, instances, requests, solver, clients);
    if (rep == 0 || lap < on_seconds) on_seconds = lap;
  }

  const double off_rps = static_cast<double>(requests) / off_seconds;
  const double on_rps = static_cast<double>(requests) / on_seconds;
  const double overhead_pct = (off_rps - on_rps) / off_rps * 100.0;

  // Warm phase: everything is cached now, so the counter deltas across
  // one more lap measure allocations per pure warm hit.
  obs::Counter& allocs_counter =
      telemetry.metrics.counter("engine_request_allocs_total");
  obs::Counter& requests_counter =
      telemetry.metrics.counter("engine_requests_total");
  const std::uint64_t allocs_before = allocs_counter.value();
  const std::uint64_t requests_before = requests_counter.value();
  const std::size_t warm_requests = std::min<std::size_t>(requests, 500);
  run_clients(*engine, instances, warm_requests, solver, clients);
  const std::uint64_t warm_served = requests_counter.value() - requests_before;
  const double allocs_per_warm_hit =
      warm_served > 0 ? static_cast<double>(allocs_counter.value() -
                                            allocs_before) /
                            static_cast<double>(warm_served)
                      : 0.0;

  const std::vector<obs::Profiler::ComponentStats> components =
      telemetry.profiler.stats();
  const std::vector<obs::Profiler::MutexStats> mutexes =
      telemetry.profiler.mutexes();

  std::cout << "profile overhead: " << requests << " warm-path requests, "
            << clients << " clients, solver " << solver << "\n"
            << "  profiler off  " << off_rps << " req/s\n"
            << "  profiler on   " << on_rps << " req/s (overhead "
            << overhead_pct << "%)\n"
            << "  allocs/warm-hit " << allocs_per_warm_hit << "\n";
  for (const obs::Profiler::ComponentStats& component : components) {
    std::cout << "  component " << component.name << ": "
              << component.samples << " samples, wall "
              << component.wall_seconds << "s, cpu " << component.cpu_seconds
              << "s, blocked " << component.blocked_seconds << "s\n";
  }
  if (!mutexes.empty()) {
    std::cout << "  top contended mutex: " << mutexes.front().name << " ("
              << mutexes.front().contended << "/"
              << mutexes.front().acquisitions << " contended, wait "
              << mutexes.front().wait_seconds << "s)\n";
  }

  std::ofstream out(out_path);
  if (!out) {
    std::cerr << "cannot write " << out_path << "\n";
    return 1;
  }
  out << "{\"benchmark\":\"profile_overhead\",\"solver\":\"" << solver
      << "\",\"requests\":" << requests << ",\"unique_instances\":" << unique
      << ",\"threads\":" << threads << ",\"clients\":" << clients
      << ",\"off_seconds\":" << off_seconds << ",\"off_rps\":" << off_rps
      << ",\"on_seconds\":" << on_seconds << ",\"on_rps\":" << on_rps
      << ",\"overhead_pct\":" << overhead_pct
      << ",\"allocs_per_warm_hit\":" << allocs_per_warm_hit
      << ",\"components\":[";
  bool first = true;
  for (const obs::Profiler::ComponentStats& component : components) {
    if (!first) out << ",";
    first = false;
    out << "{\"name\":\"" << component.name
        << "\",\"samples\":" << component.samples
        << ",\"wall_seconds\":" << component.wall_seconds
        << ",\"cpu_seconds\":" << component.cpu_seconds
        << ",\"blocked_seconds\":" << component.blocked_seconds
        << ",\"allocs\":" << component.alloc_count << "}";
  }
  out << "],\"mutexes\":[";
  first = true;
  for (const obs::Profiler::MutexStats& mutex : mutexes) {
    if (!first) out << ",";
    first = false;
    out << "{\"name\":\"" << mutex.name
        << "\",\"acquisitions\":" << mutex.acquisitions
        << ",\"contended\":" << mutex.contended
        << ",\"wait_seconds\":" << mutex.wait_seconds << "}";
  }
  out << "]}\n";
  return 0;
}
