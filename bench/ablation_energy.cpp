// Ablation: the reliability/energy trade-off the paper's conclusion
// flags as future work. For the same instances and a fixed period bound,
// sweep the replication bound K and report failure probability next to
// energy per data set: replicas buy reliability at a linear energy cost.
#include <cstdlib>
#include <cmath>
#include <cstring>
#include <iomanip>
#include <iostream>

#include "common/stats.hpp"
#include "core/period_dp.hpp"
#include "eval/energy.hpp"
#include "eval/evaluation.hpp"
#include "model/generator.hpp"

int main(int argc, char** argv) {
  using namespace prts;
  std::size_t instances = 100;
  double period_bound = 200.0;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--instances") == 0 && i + 1 < argc) {
      instances = static_cast<std::size_t>(std::atoi(argv[++i]));
    } else if (std::strcmp(argv[i], "--quick") == 0) {
      instances = 10;
    }
  }

  std::cout << "# Ablation: reliability vs energy across replication "
               "bounds (Algorithm 2 optimum, P <= " << period_bound
            << ")\n";
  std::cout << std::setw(4) << "K" << std::setw(16) << "avg failure"
            << std::setw(16) << "avg energy" << std::setw(20)
            << "energy/failure-decade" << "\n";
  double base_energy = 0.0;
  double base_log_failure = 0.0;
  for (unsigned k = 1; k <= 3; ++k) {
    const Platform platform = Platform::homogeneous(
        paper::kProcessorCount, paper::kHomSpeed,
        paper::kProcessorFailureRate, paper::kBandwidth,
        paper::kLinkFailureRate, k);
    Rng rng(808);
    RunningStats failure;
    RunningStats energy;
    for (std::size_t inst = 0; inst < instances; ++inst) {
      const TaskChain chain = paper::chain(rng);
      const auto dp =
          optimize_reliability_period(chain, platform, period_bound);
      if (!dp) continue;
      failure.add(dp->reliability.failure());
      energy.add(mapping_energy(chain, platform, dp->mapping).total());
    }
    std::cout << std::setw(4) << k << std::setw(16) << std::scientific
              << std::setprecision(3) << failure.mean() << std::setw(16)
              << energy.mean() << std::defaultfloat;
    if (k == 1) {
      base_energy = energy.mean();
      base_log_failure = std::log10(failure.mean());
      std::cout << std::setw(20) << "-";
    } else {
      const double decades = base_log_failure - std::log10(failure.mean());
      const double extra = energy.mean() - base_energy;
      std::cout << std::setw(20) << std::fixed << std::setprecision(1)
                << (decades > 0 ? extra / decades : 0.0)
                << std::defaultfloat;
    }
    std::cout << "\n";
  }
  std::cout << "# Reading: every replica recomputes every data set, so "
               "energy grows with the replication level while each "
               "decade of failure probability gets progressively more "
               "expensive once the processor budget binds.\n";
  return 0;
}
