// Figure 9: average failure probability vs latency bound (P = 250, homogeneous).
// Reproduces the paper's series; see DESIGN.md section 5 for the mapping.
#include "figure_main.hpp"

int main(int argc, char** argv) {
  return prts::bench::run_figure_main(
      argc, argv, 10.0, prts::exp::Metric::kAvgFailure,
      [](const prts::exp::ExperimentConfig& config, double step) {
        return prts::exp::run_fig_8_9(config, step);
      });
}
