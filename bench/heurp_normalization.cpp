// Companion to the EXPERIMENTS.md reproduction note on Figures 12-13:
// Algorithm 4 as printed balances raw work sums (unit speed), which makes
// its cuts blind to communication costs on fast heterogeneous platforms.
// This bench compares, at small period bounds, the listing-faithful
// Heur-P against a variant whose balancing is normalized by the fastest
// platform speed (making the o_j terms visible), with Heur-L as the
// reference — testing the hypothesis that the paper's implementation
// normalized works by a platform speed.
#include <cstdlib>
#include <cstring>
#include <iomanip>
#include <iostream>
#include <optional>

#include "core/alloc.hpp"
#include "core/heuristics.hpp"
#include "eval/evaluation.hpp"
#include "model/generator.hpp"

namespace {

using namespace prts;

/// Best reliability over interval counts for a fixed partition builder.
template <typename PartitionFn>
std::optional<double> best_failure(const TaskChain& chain,
                                   const Platform& platform,
                                   double period_bound, double latency_bound,
                                   PartitionFn&& partition_for) {
  std::optional<double> best_log;
  std::optional<double> best_failure_value;
  const std::size_t max_i =
      std::min(chain.size(), platform.processor_count());
  for (std::size_t i = 1; i <= max_i; ++i) {
    AllocOptions options;
    options.period_bound = period_bound;
    const auto mapping =
        allocate_processors(chain, platform, partition_for(i), options);
    if (!mapping) continue;
    const MappingMetrics metrics = evaluate(chain, platform, *mapping);
    if (metrics.worst_period > period_bound ||
        metrics.worst_latency > latency_bound) {
      continue;
    }
    if (!best_log || metrics.reliability.log() > *best_log) {
      best_log = metrics.reliability.log();
      best_failure_value = metrics.failure;
    }
  }
  return best_failure_value;
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t instances = 100;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--instances") == 0 && i + 1 < argc) {
      instances = static_cast<std::size_t>(std::atoi(argv[++i]));
    } else if (std::strcmp(argv[i], "--quick") == 0) {
      instances = 20;
    }
  }
  const double latency_bound = 150.0;

  std::cout << "# Heur-P balancing normalization on heterogeneous "
               "platforms (L <= " << latency_bound << ")\n";
  std::cout << std::setw(8) << "P" << std::setw(12) << "Heur-L"
            << std::setw(16) << "Heur-P(unit)" << std::setw(16)
            << "Heur-P(norm)" << "\n";
  for (const double period_bound : {2.0, 4.0, 6.0, 10.0, 20.0}) {
    Rng rng(42);
    std::size_t l_solved = 0;
    std::size_t unit_solved = 0;
    std::size_t norm_solved = 0;
    for (std::size_t inst = 0; inst < instances; ++inst) {
      const TaskChain chain = paper::chain(rng);
      const Platform platform = paper::het_platform(rng);
      double max_speed = 0.0;
      for (std::size_t u = 0; u < platform.processor_count(); ++u) {
        max_speed = std::max(max_speed, platform.speed(u));
      }
      if (best_failure(chain, platform, period_bound, latency_bound,
                       [&](std::size_t i) {
                         return heur_l_partition(chain, i);
                       })) {
        ++l_solved;
      }
      if (best_failure(chain, platform, period_bound, latency_bound,
                       [&](std::size_t i) {
                         return heur_p_partition(chain, i, 1.0,
                                                 platform.bandwidth());
                       })) {
        ++unit_solved;
      }
      if (best_failure(chain, platform, period_bound, latency_bound,
                       [&](std::size_t i) {
                         return heur_p_partition(chain, i, max_speed,
                                                 platform.bandwidth());
                       })) {
        ++norm_solved;
      }
    }
    std::cout << std::fixed << std::setprecision(0) << std::setw(8)
              << period_bound << std::defaultfloat << std::setw(12)
              << l_solved << std::setw(16) << unit_solved << std::setw(16)
              << norm_solved << "\n";
  }
  std::cout << "# Reading: normalizing Algorithm 4's balance by the "
               "fastest speed makes the communication terms dominate its "
               "objective, closing most of the gap to Heur-L at small "
               "periods — supporting the hypothesis that the paper's "
               "implementation used a speed-normalized variant.\n";
  return 0;
}
