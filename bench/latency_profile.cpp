// Telemetry overhead and latency profile on the warm path: the same
// repeated-instance workload service_throughput uses, run once with
// telemetry off and once with it on (registry + tracer live, every
// request traced). Emits BENCH_observability.json with both throughputs,
// the overhead percentage, and the p50/p90/p99/p999 of the instrumented
// run's engine_request_latency_seconds histogram — the acceptance bar
// is overhead < 5% on this path, and the quantiles are the numbers the
// ROADMAP's tail-latency framing asks for.
//
// A second phase measures the same warm path under concurrent load: N
// closed-loop client threads hammer one instrumented engine and each
// records its own per-request wall latency, so the reported
// p50/p99/p999 (and jitter = p99 - p50) include queueing and
// cross-client interference that the sequential phase cannot see.
//
//   latency_profile [--requests N] [--unique U] [--solver NAME]
//                   [--threads T] [--clients C] [--quick] [--out PATH]
#include <algorithm>
#include <chrono>
#include <fstream>
#include <iostream>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "model/generator.hpp"
#include "obs/trace.hpp"
#include "service/engine.hpp"

namespace {

using namespace prts;

/// Warm-path run: cache enabled, U unique probes cycled sequentially,
/// so after the first lap every request is a cache hit — the path where
/// instrumentation overhead would show, because the work per request is
/// small. Returns wall seconds; `telemetry` may be null (the A side).
double run_workload(const std::vector<Instance>& instances,
                    std::size_t requests, const std::string& solver,
                    std::size_t threads, obs::Telemetry* telemetry) {
  service::ServiceConfig config;
  config.threads = threads;
  config.max_queue_depth = requests + 1;
  config.telemetry = telemetry;
  service::SolveService engine(config);

  const auto start = std::chrono::steady_clock::now();
  std::size_t answered = 0;
  for (std::size_t r = 0; r < requests; ++r) {
    service::SolveRequest request{instances[r % instances.size()], solver,
                                  {}};
    const service::SolveReply reply = engine.submit(std::move(request)).get();
    if (reply.status == service::ReplyStatus::kSolved ||
        reply.status == service::ReplyStatus::kInfeasible) {
      ++answered;
    }
  }
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  if (answered != requests) {
    std::cerr << "warning: " << (requests - answered) << "/" << requests
              << " requests unanswered\n";
  }
  return seconds;
}

struct ConcurrentResult {
  double seconds = 0.0;
  double rps = 0.0;
  std::vector<double> latencies;  ///< sorted, seconds

  double quantile(double q) const {
    if (latencies.empty()) return 0.0;
    const auto index = static_cast<std::size_t>(
        q * static_cast<double>(latencies.size() - 1) + 0.5);
    return latencies[std::min(index, latencies.size() - 1)];
  }
};

/// Closed-loop concurrent phase: `clients` threads split `requests`
/// between them against one shared engine; every thread clocks each of
/// its own requests end to end.
ConcurrentResult run_concurrent(const std::vector<Instance>& instances,
                                std::size_t requests,
                                const std::string& solver,
                                std::size_t threads, std::size_t clients,
                                obs::Telemetry* telemetry) {
  service::ServiceConfig config;
  config.threads = threads;
  config.max_queue_depth = requests + clients + 1;
  config.telemetry = telemetry;
  service::SolveService engine(config);

  ConcurrentResult result;
  std::mutex mutex;
  const auto start = std::chrono::steady_clock::now();
  std::vector<std::thread> pool;
  for (std::size_t c = 0; c < clients; ++c) {
    pool.emplace_back([&, c] {
      // Interleave so every client cycles the whole instance set.
      std::vector<double> mine;
      const std::size_t share =
          requests / clients + (c < requests % clients ? 1 : 0);
      mine.reserve(share);
      for (std::size_t r = 0; r < share; ++r) {
        service::SolveRequest request{
            instances[(c + r * clients) % instances.size()], solver, {}};
        const auto begin = std::chrono::steady_clock::now();
        engine.submit(std::move(request)).get();
        mine.push_back(std::chrono::duration<double>(
                           std::chrono::steady_clock::now() - begin)
                           .count());
      }
      const std::lock_guard<std::mutex> lock(mutex);
      result.latencies.insert(result.latencies.end(), mine.begin(),
                              mine.end());
    });
  }
  for (std::thread& client : pool) client.join();
  result.seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  result.rps = result.seconds > 0.0
                   ? static_cast<double>(result.latencies.size()) /
                         result.seconds
                   : 0.0;
  std::sort(result.latencies.begin(), result.latencies.end());
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t requests = 5000;
  std::size_t unique = 4;
  std::size_t threads = 0;
  std::size_t clients = 8;
  std::string solver = "heur-p";
  std::string out_path = "BENCH_observability.json";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> std::string {
      return i + 1 < argc ? argv[++i] : "";
    };
    if (arg == "--requests") {
      requests = std::stoul(next());
    } else if (arg == "--unique") {
      unique = std::stoul(next());
    } else if (arg == "--threads") {
      threads = std::stoul(next());
    } else if (arg == "--clients") {
      clients = std::stoul(next());
    } else if (arg == "--solver") {
      solver = next();
    } else if (arg == "--out") {
      out_path = next();
    } else if (arg == "--quick") {
      requests = 500;
      unique = 3;
      clients = 4;
    } else {
      std::cerr << "unknown flag " << arg << "\n";
      return 2;
    }
  }
  if (unique == 0 || requests == 0 || clients == 0) {
    std::cerr << "--requests, --unique and --clients must be positive\n";
    return 2;
  }

  std::vector<Instance> instances;
  for (std::size_t u = 0; u < unique; ++u) {
    Rng rng(1000 + u);
    instances.push_back(Instance{
        paper::chain(rng),
        Platform::homogeneous(paper::kProcessorCount, paper::kHomSpeed,
                              paper::kProcessorFailureRate, paper::kBandwidth,
                              paper::kLinkFailureRate,
                              paper::kMaxReplication)});
  }

  // A: telemetry off. A short untimed lap first would only hide cache
  // warm-up in both runs equally; instead both runs include their own
  // warm-up lap, keeping the comparison symmetric.
  const double off_seconds =
      run_workload(instances, requests, solver, threads, nullptr);

  // B: telemetry on — every request counted, latency-recorded and
  // traced (the tracer ring cycling through all N requests).
  obs::Telemetry telemetry;
  const double on_seconds =
      run_workload(instances, requests, solver, threads, &telemetry);

  const double off_rps = static_cast<double>(requests) / off_seconds;
  const double on_rps = static_cast<double>(requests) / on_seconds;
  const double overhead_pct = (off_rps - on_rps) / off_rps * 100.0;

  const obs::Histogram::Snapshot latency =
      telemetry.metrics.histogram("engine_request_latency_seconds")
          .snapshot();
  if (latency.count != requests) {
    std::cerr << "warning: latency histogram holds " << latency.count
              << " samples, expected " << requests << "\n";
  }

  // C: concurrent closed-loop load on a fresh instrumented engine —
  // client-side latencies, so queueing shows up in the quantiles.
  obs::Telemetry concurrent_telemetry;
  const ConcurrentResult concurrent = run_concurrent(
      instances, requests, solver, threads, clients, &concurrent_telemetry);
  const double concurrent_p50 = concurrent.quantile(0.50);
  const double concurrent_p99 = concurrent.quantile(0.99);
  const double concurrent_p999 = concurrent.quantile(0.999);
  const double jitter = concurrent_p99 - concurrent_p50;

  std::cout << "latency profile: " << requests << " warm-path requests over "
            << unique << " unique instances, solver " << solver << "\n"
            << "  telemetry off  " << off_rps << " req/s\n"
            << "  telemetry on   " << on_rps << " req/s (overhead "
            << overhead_pct << "%)\n"
            << "  latency p50 " << latency.quantile(0.50) * 1e6 << " us, p90 "
            << latency.quantile(0.90) * 1e6 << " us, p99 "
            << latency.quantile(0.99) * 1e6 << " us, p999 "
            << latency.quantile(0.999) * 1e6 << " us\n"
            << "  concurrent (" << clients << " clients) " << concurrent.rps
            << " req/s, p50 " << concurrent_p50 * 1e6 << " us, p99 "
            << concurrent_p99 * 1e6 << " us, p999 " << concurrent_p999 * 1e6
            << " us, jitter " << jitter * 1e6 << " us\n";

  std::ofstream out(out_path);
  if (!out) {
    std::cerr << "cannot write " << out_path << "\n";
    return 1;
  }
  out << "{\"benchmark\":\"latency_profile\",\"solver\":\"" << solver
      << "\",\"requests\":" << requests << ",\"unique_instances\":" << unique
      << ",\"threads\":" << threads << ",\"off_seconds\":" << off_seconds
      << ",\"off_rps\":" << off_rps << ",\"on_seconds\":" << on_seconds
      << ",\"on_rps\":" << on_rps << ",\"overhead_pct\":" << overhead_pct
      << ",\"latency_seconds\":{\"count\":" << latency.count
      << ",\"mean\":" << latency.mean() << ",\"p50\":" << latency.quantile(0.5)
      << ",\"p90\":" << latency.quantile(0.9)
      << ",\"p99\":" << latency.quantile(0.99)
      << ",\"p999\":" << latency.quantile(0.999)
      << "},\"concurrent\":{\"clients\":" << clients
      << ",\"requests\":" << concurrent.latencies.size()
      << ",\"seconds\":" << concurrent.seconds
      << ",\"rps\":" << concurrent.rps << ",\"p50\":" << concurrent_p50
      << ",\"p99\":" << concurrent_p99 << ",\"p999\":" << concurrent_p999
      << ",\"jitter\":" << jitter << "}}\n";
  return 0;
}
