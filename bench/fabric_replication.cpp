// Replication ablation on the in-process fabric harness (two real
// ranks over loopback TCP): the same repeated-probe workload, remote
// shard keys only, with the replica tier off vs. on — the headline
// number is *remote round trips per repeat hit*, which replication
// takes from ~1 to ~0. A third phase measures gossip prefetch: after
// one digest round, a peer's first-ever request for a hot key is
// already local. Emits BENCH_replication.json for the perf trajectory.
//
//   fabric_replication [--requests N] [--unique U] [--solver NAME]
//                      [--quick] [--out PATH]
#include <chrono>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "fabric_harness.hpp"
#include "model/generator.hpp"

namespace {

using namespace prts;
using service::testing::FabricHarness;

FabricHarness::Options harness_options() {
  FabricHarness::Options options;
  options.world = 2;
  options.service.threads = 2;
  options.router.client.connect_timeout_seconds = 2.0;
  return options;
}

/// One timed pass driving every request through rank 0's router;
/// returns seconds.
double run_pass(FabricHarness& harness,
                const std::vector<service::SolveRequest>& requests,
                std::size_t count, std::size_t& solved) {
  const auto start = std::chrono::steady_clock::now();
  for (std::size_t r = 0; r < count; ++r) {
    service::SolveRequest request = requests[r % requests.size()];
    if (harness.router(0).submit(std::move(request)).get().status ==
        service::ReplyStatus::kSolved) {
      ++solved;
    }
  }
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t requests = 200;
  std::size_t unique = 8;
  std::string solver = "heur-p";
  std::string out_path = "BENCH_replication.json";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> std::string {
      return i + 1 < argc ? argv[++i] : "";
    };
    if (arg == "--requests") {
      requests = std::stoul(next());
    } else if (arg == "--unique") {
      unique = std::stoul(next());
    } else if (arg == "--solver") {
      solver = next();
    } else if (arg == "--out") {
      out_path = next();
    } else if (arg == "--quick") {
      requests = 40;
      unique = 4;
    } else {
      std::cerr << "unknown flag " << arg << "\n";
      return 2;
    }
  }
  if (unique == 0 || requests == 0) {
    std::cerr << "--requests and --unique must be positive\n";
    return 2;
  }

  std::vector<Instance> instances;
  for (std::size_t u = 0; u < unique; ++u) {
    Rng rng(1000 + u);
    instances.push_back(Instance{
        paper::chain(rng),
        Platform::homogeneous(paper::kProcessorCount, paper::kHomSpeed,
                              paper::kProcessorFailureRate, paper::kBandwidth,
                              paper::kLinkFailureRate,
                              paper::kMaxReplication)});
  }

  // Every key deliberately lands on the *remote* rank: this bench
  // isolates the remote-shard repeat path that replication targets.
  const auto make_requests = [&](FabricHarness& harness) {
    std::vector<service::SolveRequest> made;
    for (std::size_t u = 0; u < unique; ++u) {
      made.push_back(service::SolveRequest{
          instances[u], solver,
          harness.bounds_on_rank(instances[u], solver, /*owner=*/1,
                                 /*salt=*/static_cast<double>(u) * 5000.0)});
    }
    return made;
  };

  // ---- Phase A: replica tier disabled (PR-3 behavior) ----
  double repeat_seconds_off = 0.0;
  std::uint64_t repeat_forwards_off = 0;
  {
    FabricHarness::Options options = harness_options();
    options.router.replica.capacity_bytes = 0;
    FabricHarness harness(options);
    const auto reqs = make_requests(harness);
    std::size_t solved = 0;
    run_pass(harness, reqs, unique, solved);  // cold: solve + cache on owner
    const std::uint64_t before = harness.router(0).stats().forwarded;
    repeat_seconds_off = run_pass(harness, reqs, requests, solved);
    repeat_forwards_off = harness.router(0).stats().forwarded - before;
    if (solved != unique + requests) {
      std::cerr << "warning: phase A solved " << solved << "/"
                << (unique + requests) << "\n";
    }
  }

  // ---- Phase B: replica tier enabled ----
  double repeat_seconds_on = 0.0;
  std::uint64_t repeat_forwards_on = 0;
  std::uint64_t replica_hits = 0;
  {
    FabricHarness harness(harness_options());
    const auto reqs = make_requests(harness);
    std::size_t solved = 0;
    run_pass(harness, reqs, unique, solved);  // cold: forwards + replicates
    const std::uint64_t before = harness.router(0).stats().forwarded;
    repeat_seconds_on = run_pass(harness, reqs, requests, solved);
    const service::RouterStats stats = harness.router(0).stats();
    repeat_forwards_on = stats.forwarded - before;
    replica_hits = stats.replica_hits;
    if (solved != unique + requests) {
      std::cerr << "warning: phase B solved " << solved << "/"
                << (unique + requests) << "\n";
    }
  }

  // ---- Phase C: gossip prefetch (no request ever crossed the wire) ----
  std::uint64_t prefetched = 0;
  std::uint64_t prefetch_forwards = 0;
  std::uint64_t prefetch_replica_hits = 0;
  {
    FabricHarness harness(harness_options());
    const auto reqs = make_requests(harness);
    // The owner's keys run hot locally on rank 1...
    for (const service::SolveRequest& request : reqs) {
      for (int repeat = 0; repeat < 2; ++repeat) {
        harness.router(1).submit(service::SolveRequest{request}).get();
      }
    }
    // ...one digest round later rank 0 holds replicas it never asked
    // for, and its first requests are already local.
    harness.router(1).gossip_now();
    harness.router(0).wait_prefetches_idle();
    std::size_t solved = 0;
    run_pass(harness, reqs, unique, solved);
    const service::RouterStats stats = harness.router(0).stats();
    prefetched = stats.prefetched;
    prefetch_forwards = stats.forwarded;
    prefetch_replica_hits = stats.replica_hits;
  }

  const double rtts_off = static_cast<double>(repeat_forwards_off) /
                          static_cast<double>(requests);
  const double rtts_on = static_cast<double>(repeat_forwards_on) /
                         static_cast<double>(requests);
  const double rps_off = static_cast<double>(requests) / repeat_seconds_off;
  const double rps_on = static_cast<double>(requests) / repeat_seconds_on;

  std::cout << "fabric replication (world 2, loopback): " << requests
            << " repeat requests over " << unique
            << " remote-shard keys, solver " << solver << "\n"
            << "  replica off  " << rps_off << " req/s, "
            << rtts_off << " remote round trips per repeat hit\n"
            << "  replica on   " << rps_on << " req/s, "
            << rtts_on << " remote round trips per repeat hit ("
            << replica_hits << " replica hits)\n"
            << "  gossip       " << prefetched << " keys prefetched, first "
            << unique << " requests cost " << prefetch_forwards
            << " forwards (" << prefetch_replica_hits << " replica hits)\n";

  std::ofstream out(out_path);
  if (!out) {
    std::cerr << "cannot write " << out_path << "\n";
    return 1;
  }
  out << "{\"benchmark\":\"fabric_replication\",\"world\":2,\"solver\":\""
      << solver << "\",\"requests\":" << requests
      << ",\"unique_instances\":" << unique
      << ",\"repeat_rtts_per_hit_no_replica\":" << rtts_off
      << ",\"repeat_rtts_per_hit_with_replica\":" << rtts_on
      << ",\"repeat_rps_no_replica\":" << rps_off
      << ",\"repeat_rps_with_replica\":" << rps_on
      << ",\"replica_hits\":" << replica_hits
      << ",\"gossip_prefetched\":" << prefetched
      << ",\"post_prefetch_forwards\":" << prefetch_forwards
      << ",\"post_prefetch_replica_hits\":" << prefetch_replica_hits
      << "}\n";
  return 0;
}
