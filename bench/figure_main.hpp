// Shared command-line harness for the per-figure reproduction binaries.
//
// Flags:
//   --instances N   number of random instances (default: 100, as the paper)
//   --step S        sweep step (default: per figure)
//   --seed S        RNG seed (default: 42)
//   --threads T     worker threads (default: hardware)
//   --csv           emit CSV instead of the aligned table
//   --json          emit the campaign-engine JSON payload instead
//   --quick         8 instances, coarse step: smoke-test mode
#pragma once

#include <cstdlib>
#include <cstring>
#include <functional>
#include <iostream>
#include <string>

#include "exp/figures.hpp"
#include "exp/report.hpp"
#include "scenario/emit.hpp"

namespace prts::bench {

struct FigureCli {
  exp::ExperimentConfig config;
  double step = 0.0;  // 0: figure default
  bool csv = false;
  bool json = false;
};

inline FigureCli parse_figure_cli(int argc, char** argv,
                                  double default_step) {
  FigureCli cli;
  cli.step = default_step;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next_value = [&]() -> double {
      if (i + 1 >= argc) {
        std::cerr << "missing value for " << arg << "\n";
        std::exit(2);
      }
      return std::atof(argv[++i]);
    };
    if (arg == "--instances") {
      cli.config.instances = static_cast<std::size_t>(next_value());
    } else if (arg == "--step") {
      cli.step = next_value();
    } else if (arg == "--seed") {
      cli.config.seed = static_cast<std::uint64_t>(next_value());
    } else if (arg == "--threads") {
      cli.config.threads = static_cast<std::size_t>(next_value());
    } else if (arg == "--csv") {
      cli.csv = true;
    } else if (arg == "--json") {
      cli.json = true;
    } else if (arg == "--quick") {
      cli.config.instances = 8;
      cli.step = default_step * 5.0;
    } else {
      std::cerr << "unknown flag " << arg << "\n";
      std::exit(2);
    }
  }
  return cli;
}

/// Runs one figure binary: execute the sweep, print the requested metric.
inline int run_figure_main(
    int argc, char** argv, double default_step, exp::Metric metric,
    const std::function<exp::FigureData(const exp::ExperimentConfig&,
                                        double)>& runner) {
  const FigureCli cli = parse_figure_cli(argc, argv, default_step);
  const exp::FigureData figure = runner(cli.config, cli.step);
  if (cli.json) {
    scenario::write_json(std::cout, figure);
  } else if (cli.csv) {
    exp::print_csv(std::cout, figure);
  } else {
    exp::print_table(std::cout, figure, metric);
    std::cout << "\n" << exp::summarize(figure);
  }
  return 0;
}

}  // namespace prts::bench
