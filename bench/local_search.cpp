// Extension bench: hill-climbing refinement on top of the two-phase
// heuristics for heterogeneous instances (paper §9 asks for heuristics
// for harder problem mixes). Sweeps the period bound from binding to
// loose: when the bound binds, the heuristics' fixed partitions leave
// large reliability on the table and the climb recovers it; when bounds
// are loose, the heuristics already reach (near-)optimal single-interval
// mappings and the climb correctly finds nothing to fix.
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <iomanip>
#include <iostream>

#include "common/stats.hpp"
#include "core/heuristics.hpp"
#include "core/local_search.hpp"
#include "model/generator.hpp"

int main(int argc, char** argv) {
  using namespace prts;
  std::size_t instances = 100;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--instances") == 0 && i + 1 < argc) {
      instances = static_cast<std::size_t>(std::atoi(argv[++i]));
    } else if (std::strcmp(argv[i], "--quick") == 0) {
      instances = 15;
    }
  }
  const double latency_bound = 120.0;

  std::cout << "# Local-search refinement over best-of-heuristics "
               "(heterogeneous paper instances, L <= " << latency_bound
            << ")\n";
  std::cout << std::setw(8) << "P" << std::setw(10) << "solved"
            << std::setw(12) << "improved" << std::setw(22)
            << "mean fail reduction" << std::setw(14) << "mean sweeps"
            << "\n";
  for (const double period_bound : {8.0, 10.0, 14.0, 20.0, 50.0}) {
    Rng rng(606);
    std::size_t solved = 0;
    std::size_t improved_count = 0;
    RunningStats improvement_factor;  // failure(start)/failure(improved)
    RunningStats rounds;
    for (std::size_t inst = 0; inst < instances; ++inst) {
      const TaskChain chain = paper::chain(rng);
      const Platform platform = paper::het_platform(rng);
      HeuristicOptions heuristic_options;
      heuristic_options.period_bound = period_bound;
      heuristic_options.latency_bound = latency_bound;
      std::optional<HeuristicSolution> start;
      for (HeuristicKind kind :
           {HeuristicKind::kHeurL, HeuristicKind::kHeurP}) {
        auto candidate =
            run_heuristic(chain, platform, kind, heuristic_options);
        if (candidate &&
            (!start || candidate->metrics.reliability >
                           start->metrics.reliability)) {
          start = std::move(candidate);
        }
      }
      if (!start) continue;
      ++solved;
      LocalSearchOptions options;
      options.period_bound = period_bound;
      options.latency_bound = latency_bound;
      const auto refined =
          improve_mapping(chain, platform, start->mapping, options);
      if (!refined) continue;
      rounds.add(static_cast<double>(refined->rounds));
      if (refined->metrics.reliability.log() >
          start->metrics.reliability.log() + 1e-12) {
        ++improved_count;
        improvement_factor.add(start->metrics.failure /
                               refined->metrics.failure);
      }
    }
    std::cout << std::fixed << std::setprecision(0) << std::setw(8)
              << period_bound << std::defaultfloat << std::setw(10)
              << solved << std::setw(12) << improved_count;
    if (improvement_factor.count() > 0) {
      std::cout << std::setw(20) << std::scientific << std::setprecision(2)
                << improvement_factor.mean() << "x" << std::defaultfloat
                << std::setw(14) << std::fixed << std::setprecision(1)
                << rounds.mean() << std::defaultfloat;
    } else {
      std::cout << std::setw(21) << "-" << std::setw(14) << std::fixed
                << std::setprecision(1) << rounds.mean()
                << std::defaultfloat;
    }
    std::cout << "\n";
  }
  std::cout << "# Reading: under binding period bounds the fixed Heur-L/"
               "Heur-P partitions strand reliability that the climb's "
               "joint partition+allocation moves recover (orders of "
               "magnitude); with loose bounds the heuristics already sit "
               "at a local (often global) optimum and the climb verifies "
               "it cheaply.\n";
  return 0;
}
