// Ablation: the three exact tri-criteria solvers (partition enumeration,
// pseudo-polynomial DP, ILP branch-and-bound) produce identical optima —
// this bench compares their runtimes at paper scale and beyond, to justify
// the enumeration solver as the production path for the figure sweeps.
#include <benchmark/benchmark.h>

#include "core/exact.hpp"
#include "core/ilp.hpp"
#include "model/generator.hpp"

namespace {

using namespace prts;

TaskChain bench_chain(std::size_t n) {
  Rng rng(31337);
  ChainConfig config;
  config.task_count = n;
  return random_chain(rng, config);
}

void BM_ExactEnumeration(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const TaskChain chain = bench_chain(n);
  const Platform platform = paper::hom_platform();
  for (auto _ : state) {
    const HomogeneousExactSolver solver(chain, platform);
    benchmark::DoNotOptimize(solver.best_log_reliability(250.0, 750.0));
  }
  state.SetComplexityN(static_cast<std::int64_t>(n));
}
BENCHMARK(BM_ExactEnumeration)->DenseRange(9, 17, 2)->Complexity();

void BM_ExactEnumerationQueryOnly(benchmark::State& state) {
  const TaskChain chain = bench_chain(15);
  const Platform platform = paper::hom_platform();
  const HomogeneousExactSolver solver(chain, platform);
  double bound = 100.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(solver.best_log_reliability(bound, 750.0));
    bound += 1.0;
    if (bound > 400.0) bound = 100.0;
  }
}
BENCHMARK(BM_ExactEnumerationQueryOnly);

void BM_ExactPseudoPolyDp(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const TaskChain chain = bench_chain(n);
  const Platform platform = paper::hom_platform();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        exact_dp_log_reliability(chain, platform, 250.0, 750.0));
  }
}
BENCHMARK(BM_ExactPseudoPolyDp)->DenseRange(9, 17, 2);

void BM_IlpBranchAndBound(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const TaskChain chain = bench_chain(n);
  const Platform platform = paper::hom_platform();
  for (auto _ : state) {
    const IlpFormulation ilp(chain, platform, 250.0, 750.0);
    benchmark::DoNotOptimize(solve_ilp(ilp));
  }
}
BENCHMARK(BM_IlpBranchAndBound)->DenseRange(9, 17, 2);

}  // namespace

BENCHMARK_MAIN();
