// Ablation: the replication-level trade-off of Section 1 — raising the
// bound K improves reliability by orders of magnitude per extra replica,
// until the processor budget runs out; under a period bound the partition
// needs a minimum number of intervals, so K and the interval structure
// compete for the same p processors.
#include <cstdlib>
#include <cstring>
#include <iomanip>
#include <iostream>

#include "common/stats.hpp"
#include "core/period_dp.hpp"
#include "eval/evaluation.hpp"
#include "model/generator.hpp"

int main(int argc, char** argv) {
  using namespace prts;
  std::size_t instances = 100;
  double period_bound = 200.0;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--instances") == 0 && i + 1 < argc) {
      instances = static_cast<std::size_t>(std::atoi(argv[++i]));
    } else if (std::strcmp(argv[i], "--period") == 0 && i + 1 < argc) {
      period_bound = std::atof(argv[++i]);
    } else if (std::strcmp(argv[i], "--quick") == 0) {
      instances = 10;
    }
  }

  std::cout << "# Ablation: replication bound K vs reliability under a "
               "period bound (Algorithm 2 optimum, P <= " << period_bound
            << ", paper instances)\n";
  std::cout << std::setw(4) << "K" << std::setw(10) << "solved"
            << std::setw(16) << "avg failure" << std::setw(13)
            << "avg latency" << std::setw(12) << "avg m" << std::setw(18)
            << "avg replication" << "\n";
  for (unsigned k = 1; k <= 4; ++k) {
    const Platform platform = Platform::homogeneous(
        paper::kProcessorCount, paper::kHomSpeed, paper::kProcessorFailureRate,
        paper::kBandwidth, paper::kLinkFailureRate, k);
    Rng rng(555);  // same chains for every K
    RunningStats failure;
    RunningStats latency;
    RunningStats interval_count;
    RunningStats replication;
    std::size_t solved = 0;
    for (std::size_t inst = 0; inst < instances; ++inst) {
      const TaskChain chain = paper::chain(rng);
      const auto dp =
          optimize_reliability_period(chain, platform, period_bound);
      if (!dp) continue;
      ++solved;
      const MappingMetrics metrics = evaluate(chain, platform, dp->mapping);
      failure.add(metrics.failure);
      latency.add(metrics.worst_latency);
      interval_count.add(static_cast<double>(metrics.interval_count));
      replication.add(metrics.replication_level);
    }
    std::cout << std::setw(4) << k << std::setw(10) << solved
              << std::setw(16) << std::scientific << std::setprecision(3)
              << failure.mean() << std::defaultfloat << std::setw(13)
              << std::fixed << std::setprecision(1) << latency.mean()
              << std::setw(12) << std::setprecision(2)
              << interval_count.mean() << std::setw(18)
              << replication.mean() << std::defaultfloat << "\n";
  }
  std::cout << "# Reading: allowing a second replica buys an order of "
               "magnitude of failure probability, but the gain saturates "
               "immediately after: the period bound forces ~5 intervals, "
               "so the 10-processor budget already runs out near "
               "replication level 2 and raising K further cannot be "
               "exploited.\n";
  return 0;
}
