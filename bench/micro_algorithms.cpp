// Microbenchmarks of the optimization kernels: the Algorithm 1/2 dynamic
// programs (O(n^2 p K)), Algo-Alloc, the two interval heuristics, and the
// Eq. (3)-(9) evaluator.
#include <benchmark/benchmark.h>

#include "core/alloc.hpp"
#include "core/heuristics.hpp"
#include "core/period_dp.hpp"
#include "core/reliability_dp.hpp"
#include "eval/evaluation.hpp"
#include "model/generator.hpp"

namespace {

using namespace prts;

TaskChain bench_chain(std::size_t n) {
  Rng rng(99);
  ChainConfig config;
  config.task_count = n;
  return random_chain(rng, config);
}

Platform bench_platform(std::size_t p) {
  return Platform::homogeneous(p, 1.0, 1e-8, 1.0, 1e-5, 3);
}

void BM_Algorithm1_Tasks(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const TaskChain chain = bench_chain(n);
  const Platform platform = bench_platform(10);
  for (auto _ : state) {
    benchmark::DoNotOptimize(optimize_reliability(chain, platform));
  }
  state.SetComplexityN(static_cast<std::int64_t>(n));
}
BENCHMARK(BM_Algorithm1_Tasks)->RangeMultiplier(2)->Range(8, 128)
    ->Complexity(benchmark::oNSquared);

void BM_Algorithm1_Processors(benchmark::State& state) {
  const auto p = static_cast<std::size_t>(state.range(0));
  const TaskChain chain = bench_chain(15);
  const Platform platform = bench_platform(p);
  for (auto _ : state) {
    benchmark::DoNotOptimize(optimize_reliability(chain, platform));
  }
}
BENCHMARK(BM_Algorithm1_Processors)->RangeMultiplier(2)->Range(4, 64);

void BM_Algorithm2(benchmark::State& state) {
  const TaskChain chain = bench_chain(15);
  const Platform platform = bench_platform(10);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        optimize_reliability_period(chain, platform, 250.0));
  }
}
BENCHMARK(BM_Algorithm2);

void BM_PeriodMinimization(benchmark::State& state) {
  const TaskChain chain = bench_chain(15);
  const Platform platform = bench_platform(10);
  const auto target = LogReliability::from_log(
      optimize_reliability(chain, platform).reliability.log() * 2.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        optimize_period_reliability(chain, platform, target));
  }
}
BENCHMARK(BM_PeriodMinimization);

void BM_AlgoAllocCounts(benchmark::State& state) {
  const auto m = static_cast<std::size_t>(state.range(0));
  Rng rng(5);
  std::vector<double> failures;
  for (std::size_t j = 0; j < m; ++j) {
    failures.push_back(rng.uniform_real(1e-6, 0.2));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(algo_alloc_counts(failures, 3 * m, 3));
  }
}
BENCHMARK(BM_AlgoAllocCounts)->RangeMultiplier(4)->Range(4, 256);

void BM_AllocateProcessorsHet(benchmark::State& state) {
  Rng rng(7);
  const TaskChain chain = bench_chain(15);
  const Platform platform = random_het_platform(rng, HetPlatformConfig{});
  const IntervalPartition partition = heur_p_partition(chain, 5);
  AllocOptions options;
  options.period_bound = 60.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        allocate_processors(chain, platform, partition, options));
  }
}
BENCHMARK(BM_AllocateProcessorsHet);

void BM_HeurLPartition(benchmark::State& state) {
  const TaskChain chain = bench_chain(static_cast<std::size_t>(
      state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(heur_l_partition(chain, 8));
  }
}
BENCHMARK(BM_HeurLPartition)->RangeMultiplier(4)->Range(16, 1024);

void BM_HeurPPartition(benchmark::State& state) {
  const TaskChain chain = bench_chain(static_cast<std::size_t>(
      state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(heur_p_partition(chain, 8));
  }
}
BENCHMARK(BM_HeurPPartition)->RangeMultiplier(4)->Range(16, 256);

void BM_EvaluateMapping(benchmark::State& state) {
  Rng rng(11);
  const TaskChain chain = bench_chain(15);
  const Platform platform = bench_platform(10);
  const auto solution = optimize_reliability(chain, platform);
  for (auto _ : state) {
    benchmark::DoNotOptimize(evaluate(chain, platform, solution.mapping));
  }
}
BENCHMARK(BM_EvaluateMapping);

void BM_RunHeuristicHet(benchmark::State& state) {
  Rng rng(13);
  const TaskChain chain = bench_chain(15);
  const Platform platform = random_het_platform(rng, HetPlatformConfig{});
  HeuristicOptions options;
  options.period_bound = 50.0;
  options.latency_bound = 150.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        run_heuristic(chain, platform, HeuristicKind::kHeurP, options));
  }
}
BENCHMARK(BM_RunHeuristicHet);

}  // namespace

BENCHMARK_MAIN();
