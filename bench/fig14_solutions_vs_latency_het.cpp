// Figure 14: number of solutions vs latency bound (P = 50, hom + het).
// Reproduces the paper's series; see DESIGN.md section 5 for the mapping.
#include "figure_main.hpp"

int main(int argc, char** argv) {
  return prts::bench::run_figure_main(
      argc, argv, 2.0, prts::exp::Metric::kSolutions,
      [](const prts::exp::ExperimentConfig& config, double step) {
        return prts::exp::run_fig_14_15(config, step);
      });
}
