// Figure 12: number of solutions vs period bound (L = 150, hom + het).
// Reproduces the paper's series; see DESIGN.md section 5 for the mapping.
#include "figure_main.hpp"

int main(int argc, char** argv) {
  return prts::bench::run_figure_main(
      argc, argv, 2.0, prts::exp::Metric::kSolutions,
      [](const prts::exp::ExperimentConfig& config, double step) {
        return prts::exp::run_fig_12_13(config, step);
      });
}
